"""Forensics: follow Ariadne's thread back from a flagged byte.

The paper motivates DIFT for "real-time forensics analysis"; MITOS is
named for the thread that led Theseus out of the labyrinth.  This example
plays incident responder: an in-memory attack fires the confluence
detector, and we

1. ask the lineage graph *which sources* reach the flagged byte and
   *through which chain of events* (the thread, walked backwards),
2. compare what a DFP-only tracker could ever have reconstructed,
3. report tag lifetimes -- how long the attack's traces stay live.

Run:  python examples/forensics.py
"""

from repro.analysis.lifetime import LifetimeMonitor
from repro.analysis.lineage import LineageGraph
from repro.faros import FarosSystem, mitos_config
from repro.workloads.attack import InMemoryAttack
from repro.workloads.calibration import benchmark_params


def main() -> None:
    recording = InMemoryAttack(variant="reverse_https", seed=7).record()
    params = benchmark_params(tau=1.0)
    system = FarosSystem(mitos_config(params, all_flows=True))
    monitor = LifetimeMonitor(system.tracker)
    # FarosSystem.replay resets the tracker (fresh counter): re-hook
    system.pipeline.reset_on_begin = False
    system.reset()
    monitor.reattach()
    result = system.replay(recording)

    detector = system.detector
    assert detector is not None
    print(
        f"replayed {len(recording)} events; detector flagged "
        f"{detector.detected_bytes} bytes"
    )
    if not detector.alerts:
        print("no alerts -- nothing to investigate")
        return
    alert = detector.alerts[0]
    print(f"first alert: {alert.location} at tick {alert.tick}")
    print()

    lineage = LineageGraph.from_recording(recording)
    print("ground-truth sources reaching the flagged byte:")
    for hit in lineage.sources_of(alert.location):
        print(
            f"  {hit.tag.type}#{hit.tag.index}: inserted at tick "
            f"{hit.insert_tick}, {hit.hops} dataflow hops away"
        )
    netflow_hits = [
        hit
        for hit in lineage.sources_of(alert.location)
        if hit.tag.type == "netflow"
    ]
    if netflow_hits:
        tag = netflow_hits[0].tag
        path = lineage.explain(alert.location, tag)
        print()
        print(f"the thread: {tag.type}#{tag.index} -> flagged byte "
              f"({len(path)} versions)")
        for location, version in path[:6]:
            print(f"  {location} (v{version})")
        if len(path) > 6:
            print(f"  ... {len(path) - 6} more steps")
    print()

    dfp_only = LineageGraph.from_recording(recording, include_indirect=False)
    dfp_sources = {h.tag.type for h in dfp_only.sources_of(alert.location)}
    full_sources = {h.tag.type for h in lineage.sources_of(alert.location)}
    print(
        f"a DFP-only reconstruction sees source types {sorted(dfp_sources)}; "
        f"the full flow graph sees {sorted(full_sources)} -- the difference\n"
        "is the indirect-flow evidence MITOS preserves."
    )
    print()
    print(monitor.render(system.tracker.stats.ticks))


if __name__ == "__main__":
    main()
