"""Bring your own program: assemble, record, replay under any policy.

Shows the full substrate API end to end: write an assembly program with a
tainted branch (control dependency), record its execution against a
network device, save/load the recording, and replay it under stock FAROS
and MITOS.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.dift.tags import TagAllocator
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.isa.assembler import assemble
from repro.isa.devices import NetworkDevice
from repro.isa.machine import Machine
from repro.replay.record import Recording, record_machine
from repro.workloads.calibration import benchmark_params

# A password-check-like routine: download N secret bytes, then set a flag
# byte per position depending on whether it matches a hardcoded value --
# pure control dependency, the paper's `if (b == 1) a = 1` pattern.
SOURCE = """
        movi r0, 0x400      ; flag buffer
        movi r2, 16         ; bytes to check
        movi r8, 1
        movi r9, 0x41       ; the value we compare against ('A')
loop:   beq  r2, r7, done
        in   r4, 0          ; tainted secret byte from the network
        movi r5, 0          ; flag = 0
        bne  r4, r9, store  ; tainted comparison
        movi r5, 1          ; flag = 1  (control-dependent write)
store:  sb   r5, r0, 0
        addi r0, r0, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
"""


def main() -> None:
    program = assemble(SOURCE)
    allocator = TagAllocator()
    device = NetworkDevice(b"ABBA" * 4, allocator, origin=("198.51.100.7", 22))
    machine = Machine(program, devices={0: device})
    recording = record_machine(machine, meta={"scenario": "password-check"})
    print(
        f"recorded {len(recording)} flow events "
        f"({recording.kind_counts()})"
    )

    # recordings serialize to JSONL and reload bit-exactly
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.jsonl"
        recording.save(path)
        recording = Recording.load(path)
        print(f"round-tripped through {path.name}: {len(recording)} events")

    params = benchmark_params(
        crossover_copies=150.0, pollution_fraction=0.0015
    )
    rows = []
    for config in (stock_faros_config(params), mitos_config(params)):
        system = FarosSystem(config)
        metrics = system.replay(recording).metrics
        flag_bytes_tainted = sum(
            1
            for location in system.tracker.shadow.tainted_locations()
            if location[0] == "mem" and 0x400 <= location[1] < 0x410
        )
        rows.append(
            [
                config.label,
                flag_bytes_tainted,
                metrics.ifp_propagated,
                metrics.propagation_ops,
            ]
        )
    print()
    print(
        format_table(
            ["policy", "flag bytes tainted", "IFP propagated", "ops"],
            rows,
            title="Who sees that the flags leak the secret?",
        )
    )
    print()
    print(
        "The flag bytes carry information about the secret purely through\n"
        "the tainted branch; only a tracker that handles control\n"
        "dependencies (MITOS) ties them back to the network source."
    )


if __name__ == "__main__":
    main()
