"""MITOS in hardware: the Section VI SoC sketch, simulated.

Configures the MITOS SoC component through its model-specific registers
(trusted-loader path), replays the Fig. 1 lookup workload through the
commit-stage hook, and reports what the hardware would pay: decision
cycles, tag-cache hit rates, and sealed swap traffic under tag-memory
pressure.  Also demonstrates the security property: a tampering OS is
detected when a swapped tag page is touched.

Run:  python examples/hardware_soc.py
"""

from repro.analysis.reporting import format_mapping, format_table
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import TagAllocator, TagTypes
from repro.hardware import (
    CycleModel,
    MitosHardware,
    MitosMsrFile,
    MsrLockedError,
    SegmentedTagMemory,
    SwapError,
    TagCache,
)
from repro.isa.machine import Machine
from repro.isa.programs import lookup_table_translate
from repro.workloads.calibration import benchmark_params

INPUT, TABLE, OUTPUT = 0x100, 0x200, 0x400


def run_workload(hw: MitosHardware) -> None:
    allocator = TagAllocator()
    tag = allocator.fresh(TagTypes.NETFLOW, origin=("10.0.0.1", 443))
    for i in range(16):
        hw.process(flows.insert(mem(INPUT + i), tag, tick=i, context="net"))
    machine = Machine(
        lookup_table_translate(INPUT, TABLE, OUTPUT, 16),
        event_sink=hw.process,
    )
    machine.memory.write_bytes(INPUT, b"sixteen bytes!!!")
    machine.memory.write_bytes(TABLE, bytes((i + 1) % 256 for i in range(256)))
    machine.run()


def main() -> None:
    params = benchmark_params(
        crossover_copies=150.0, pollution_fraction=0.0015
    )

    # trusted loader: write MSRs, lock, hand off
    hw = MitosHardware.configure(
        params,
        cache=TagCache(sets=32, ways=4),
        tag_memory=SegmentedTagMemory(resident_pages=4),
        cycle_model=CycleModel(),
    )
    print(f"MSR file locked: {hw.msr.locked}")
    try:
        hw.msr.write(0x4D2, 0)  # the "OS" tries to zero tau
    except MsrLockedError as error:
        print(f"post-lock MSR write rejected: {error}")
    print()

    run_workload(hw)
    print(format_mapping("hardware cycle report", hw.report.as_dict()))
    print()
    print(
        format_table(
            ["metric", "value"],
            list(hw.cache.utilization().items()),
            title="tag cache",
        )
    )
    print()

    # the swap security story: seal a page, tamper as the OS, get caught
    memory = SegmentedTagMemory(resident_pages=1)
    from repro.dift.tags import Tag

    memory.page(1).put("secret", [Tag("netflow", 1)])
    memory.page(2)  # forces page 1 out, sealed
    memory.os_tamper(1)
    try:
        memory.page(1)
    except SwapError as error:
        print(f"tampered swap page detected: {error}")


if __name__ == "__main__":
    main()
