"""MITOS across subsystems: gossiped pollution, stale-estimate decisions.

Shards the network-benchmark trace across four subsystem nodes.  Each
node's MITOS engine reads the global pollution (Eq. 8's shared term) from
its gossiped *belief* rather than ground truth.  We sweep the gossip
interval and report how decision quality degrades with staleness -- the
paper's scalability argument, measured.

Run:  python examples/distributed_tracking.py
"""

from repro.analysis.reporting import format_table
from repro.distributed.cluster import Cluster
from repro.experiments.common import network_recording
from repro.workloads.calibration import benchmark_params


def main() -> None:
    recording = network_recording(seed=0, quick=True)
    params = benchmark_params(
        crossover_copies=150.0, pollution_fraction=0.0015
    )
    rows = []
    for interval in (25, 100, 500, 2500):
        cluster = Cluster(
            params, n_nodes=4, gossip_interval=interval, fanout=2, seed=0
        )
        result = cluster.run(recording)
        rows.append(
            [
                interval,
                result.gossip_messages,
                round(result.mean_estimate_error, 2),
                round(result.max_estimate_error, 2),
                f"{result.oracle_agreement:.4f}",
            ]
        )
    print(
        format_table(
            [
                "gossip every N events",
                "messages",
                "mean belief error",
                "max belief error",
                "oracle agreement",
            ],
            rows,
            title="4-node cluster, network benchmark sharded by destination",
        )
    )
    print()
    print(
        "MITOS decisions need only a pollution *estimate*: even with rare\n"
        "gossip the per-candidate decisions agree with an exact-pollution\n"
        "oracle almost always, because the marginal-cost rule is flat far\n"
        "from the decision boundary."
    )


if __name__ == "__main__":
    main()
