"""Tag balancing and alpha-fairness (the Fig. 8 property, hands on).

Sweeps the fairness degree alpha over the network benchmark and shows how
tag copy counts tighten as alpha grows, then cross-checks the online
greedy dynamics against the centralized KKT solution of the relaxed
convex problem (Section IV-B).

Run:  python examples/tag_balancing.py
"""

from repro.analysis.reporting import format_table
from repro.core.fairness import copy_count_mse, jain_index, shannon_entropy
from repro.core.solver import greedy_dynamics, solve_kkt
from repro.core.params import MitosParams
from repro.experiments.common import network_recording
from repro.faros import FarosSystem, mitos_config
from repro.workloads.calibration import benchmark_params


def fairness_sweep() -> None:
    recording = network_recording(seed=0, quick=True)
    rows = []
    for alpha in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0):
        params = benchmark_params(
            alpha=alpha, crossover_copies=150.0, pollution_fraction=0.0015
        )
        system = FarosSystem(mitos_config(params))
        system.replay(recording)
        copies = list(system.tracker.counter.snapshot().values())
        rows.append(
            [
                alpha,
                max(copies) if copies else 0,
                round(copy_count_mse(copies), 1),
                round(jain_index(copies), 3),
                round(shannon_entropy(copies), 2),
            ]
        )
    print(
        format_table(
            ["alpha", "max copies", "MSE", "Jain", "entropy (bits)"],
            rows,
            title="alpha vs tag balancing (network benchmark)",
        )
    )


def solver_check() -> None:
    params = MitosParams(R=1 << 20, M_prov=10, tau_scale=1e6)
    keys = [("netflow", i) for i in range(1, 5)] + [("file", 1), ("process", 1)]
    kkt = solve_kkt(keys, params)
    greedy, _, converged = greedy_dynamics(keys, params, max_steps=100_000)
    rows = [
        [f"{t}#{i}", round(kkt.n[(t, i)], 1), greedy[(t, i)]]
        for (t, i) in keys
    ]
    print()
    print(
        format_table(
            ["tag", "KKT optimum", "greedy fixed point"],
            rows,
            title=f"centralized vs distributed (converged={converged})",
        )
    )


def main() -> None:
    fairness_sweep()
    solver_check()
    print()
    print(
        "Higher alpha caps over-propagated tags harder (max-min fairness in\n"
        "the limit); the distributed greedy lands on the centralized KKT\n"
        "optimum without ever needing the global copy-count vector."
    )


if __name__ == "__main__":
    main()
