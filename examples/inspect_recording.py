"""Record, inspect, store and jointly replay whole-system traces.

Demonstrates the record/replay tooling around the tracker: record an
attack session and a benchmark, inspect their flow mix, interleave them
into the joint scenario the paper's PANDA setup could not run, compress
the result to disk, and verify the attack is still caught amid the noise.

Run:  python examples/inspect_recording.py
"""

import tempfile
from pathlib import Path

from repro.analysis.trace_stats import format_trace_summary, summarize_recording
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.replay.record import Recording
from repro.workloads.attack import InMemoryAttack
from repro.workloads.calibration import benchmark_params
from repro.workloads.composite import interleave
from repro.workloads.network import NetworkBenchmark


def main() -> None:
    attack = InMemoryAttack(variant="reverse_tcp_rc4_dns", seed=3).record()
    benchmark = NetworkBenchmark(
        seed=4, connections=3, bytes_per_connection=128, rounds=1,
        heavy_hitter=False,
    ).record()

    print("== attack session ==")
    print(format_trace_summary(summarize_recording(attack)))
    print()

    joint = interleave(
        [attack, benchmark], chunk_size=1024, location_offsets=[0, 0x10000]
    )
    print(
        f"== joint trace: {len(joint)} events from "
        f"{len(joint.meta['components'])} scenarios =="
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "joint.jsonl.gz"
        joint.save(path)
        size_kib = path.stat().st_size / 1024
        joint = Recording.load(path)
        print(f"stored compressed at {size_kib:.0f} KiB, reloaded bit-exactly")
    print()

    params = benchmark_params(tau=1.0)
    for config in (
        stock_faros_config(params),
        mitos_config(params, all_flows=True),
    ):
        system = FarosSystem(config)
        metrics = system.replay(joint).metrics
        print(
            f"{config.label:>9}: detected {metrics.detected_bytes:4d} bytes, "
            f"{metrics.propagation_ops} propagation ops, "
            f"{metrics.footprint_bytes} B shadow"
        )
    print()
    print(
        "The rc4+dns-encoded payload hides from the DFP-only tracker even\n"
        "without the extra load; MITOS keeps the fingerprint through the\n"
        "joint noise while doing a fraction of the propagation work."
    )


if __name__ == "__main__":
    main()
