"""Quickstart: the indirect-flow dilemma on the paper's Fig. 1 example.

Runs the classic lookup-table format conversion (``output[i] =
table[input[i]]``) with a tainted input string under three policies:

* block all indirect flows (classic DIFT / stock FAROS) -> undertainting,
* propagate all indirect flows -> overtainting pressure,
* MITOS (Algorithm 2) -> propagates while the marginal cost is negative.

Run:  python examples/quickstart.py
"""

from repro.core.params import MitosParams
from repro.core.policy import (
    MitosPolicy,
    PropagateAllPolicy,
    PropagateNonePolicy,
)
from repro.dift import DIFTTracker, TagAllocator, TagTypes, flows
from repro.dift.shadow import mem
from repro.isa.machine import Machine
from repro.isa.programs import lookup_table_translate

INPUT, TABLE, OUTPUT = 0x100, 0x200, 0x400
MESSAGE = b"This string is tainted"


def run_with(policy, label: str) -> None:
    params = MitosParams(R=1 << 16, M_prov=10, tau_scale=1.0)
    tracker = DIFTTracker(params, policy)

    # taint the input bytes as if they arrived from the network
    allocator = TagAllocator()
    tag = allocator.fresh(TagTypes.NETFLOW, origin=("10.245.44.43", 443))
    for i in range(len(MESSAGE)):
        tracker.process(flows.insert(mem(INPUT + i), tag, context="net.recv"))

    # run the Fig. 1 program, streaming its flow events into the tracker
    program = lookup_table_translate(INPUT, TABLE, OUTPUT, len(MESSAGE))
    machine = Machine(program, event_sink=tracker.process)
    machine.memory.write_bytes(INPUT, MESSAGE)
    machine.memory.write_bytes(TABLE, bytes((i + 1) % 256 for i in range(256)))
    machine.run()

    tainted = sum(
        1
        for i in range(len(MESSAGE))
        if tracker.shadow.is_tainted(mem(OUTPUT + i))
    )
    stats = tracker.stats
    print(
        f"{label:>16}: output bytes tainted {tainted:2d}/{len(MESSAGE)}  "
        f"(IFP seen {stats.ifp_total}, propagated {stats.ifp_propagated}, "
        f"ops {stats.propagation_ops})"
    )


def main() -> None:
    print("Fig. 1 address-dependency example:", MESSAGE.decode())
    print()
    run_with(PropagateNonePolicy(), "block all IFP")
    run_with(PropagateAllPolicy(), "propagate all")
    params = MitosParams(R=1 << 16, M_prov=10, tau_scale=1.0)
    run_with(MitosPolicy(params), "MITOS (Alg. 2)")
    print()
    print(
        "Blocking all indirect flows loses the information flow entirely\n"
        "(undertainting); MITOS propagates while the Eq. 8 marginal cost\n"
        "is negative, recovering the flow without unconditional tainting."
    )


if __name__ == "__main__":
    main()
