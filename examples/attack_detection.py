"""Detecting an in-memory-only attack: FAROS vs MITOS (the Table II story).

Records one Metasploit-style reflective-DLL-injection session per shell
variant and replays it under:

* stock FAROS (all direct flows, no indirect flows),
* MITOS handling all flows through Algorithm 2.

Prints per-variant detected bytes plus the three headline metrics.

Run:  python examples/attack_detection.py
"""

from repro.analysis.reporting import format_table
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.workloads.attack import ATTACK_VARIANTS, InMemoryAttack
from repro.workloads.calibration import benchmark_params


def main() -> None:
    params = benchmark_params(tau=1.0)
    rows = []
    totals = {"faros": [0, 0, 0], "mitos": [0, 0, 0]}
    for variant in ATTACK_VARIANTS:
        recording = InMemoryAttack(variant=variant, seed=0).record()
        cells = [variant]
        for label, config in (
            ("faros", stock_faros_config(params)),
            ("mitos", mitos_config(params, all_flows=True)),
        ):
            metrics = FarosSystem(config).replay(recording).metrics
            cells.append(metrics.detected_bytes)
            totals[label][0] += metrics.propagation_ops
            totals[label][1] += metrics.footprint_bytes
            totals[label][2] += metrics.detected_bytes
        rows.append(cells)
    print(
        format_table(
            ["shell variant", "FAROS detected", "MITOS detected"],
            rows,
            title="Detected bytes per Metasploit shell variant",
        )
    )
    print()
    n = len(ATTACK_VARIANTS)
    summary = [
        [
            label,
            totals[label][0] / n,
            totals[label][1] / n,
            totals[label][2] / n,
        ]
        for label in ("faros", "mitos")
    ]
    print(
        format_table(
            ["system", "avg ops (time proxy)", "avg space B", "avg detected"],
            summary,
            title="Averages over all variants (Table II shape)",
        )
    )
    faros_ops, mitos_ops = totals["faros"][0], totals["mitos"][0]
    faros_det, mitos_det = totals["faros"][2], totals["mitos"][2]
    print()
    print(
        f"MITOS does {faros_ops / mitos_ops:.1f}x less propagation work and "
        f"detects {mitos_det / faros_det:.1f}x more attack bytes --\n"
        "the table-decoded stagers (https / rc4+dns) are invisible to a\n"
        "DFP-only tracker because their decode loops move information\n"
        "exclusively through address dependencies."
    )


if __name__ == "__main__":
    main()
