"""Benches for the analysis layer: lineage graphs and tag lifetimes."""

import pytest

from conftest import publish

from repro.analysis.lifetime import LifetimeMonitor
from repro.analysis.lineage import LineageGraph
from repro.core.policy import PropagateAllPolicy
from repro.dift.shadow import mem
from repro.dift.tracker import DIFTTracker
from repro.experiments.common import experiment_params
from repro.workloads.attack import InMemoryAttack


@pytest.fixture(scope="module")
def attack_recording():
    return InMemoryAttack(variant="reverse_https", seed=0).record()


def test_bench_lineage_construction(benchmark, attack_recording):
    graph = benchmark.pedantic(
        LineageGraph.from_recording, args=(attack_recording,),
        rounds=3, iterations=1,
    )
    assert graph.node_count > 0


def test_bench_lineage_query(benchmark, attack_recording):
    graph = LineageGraph.from_recording(attack_recording)
    target = mem(0x4800)  # the victim region's first IAT slot
    hits = benchmark(graph.sources_of, target)
    assert any(hit.tag.type == "netflow" for hit in hits)


def test_bench_lifetime_monitoring(benchmark, attack_recording):
    params = experiment_params(tau=1.0)

    def run_monitored():
        tracker = DIFTTracker(params, PropagateAllPolicy())
        monitor = LifetimeMonitor(tracker)
        tracker.process_many(list(attack_recording))
        return monitor

    monitor = benchmark.pedantic(run_monitored, rounds=2, iterations=1)
    publish(
        "tag_lifetimes",
        monitor.render(monitor.tracker.stats.ticks),
    )
    assert monitor.births() > 0
