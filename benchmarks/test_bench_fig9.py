"""Bench for Fig. 9: the u_netflow tag-importance sweep."""

from conftest import publish, publish_result

from repro.dift.tags import TagTypes
from repro.experiments import fig9
from repro.experiments.common import experiment_params
from repro.faros import FarosSystem, mitos_config


def test_bench_fig9_replay(benchmark, full_network_recording):
    params = experiment_params(u={TagTypes.NETFLOW: 100.0})

    def replay_once():
        system = FarosSystem(mitos_config(params))
        return system.replay(full_network_recording)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.tracker_stats["inserts"] > 0


def test_fig9_artifact(benchmark):
    result = benchmark.pedantic(fig9.run, kwargs=dict(quick=False), rounds=1, iterations=1)
    publish("fig9", fig9.render(result))
    publish_result("fig9", result)
    assert result.netflow_monotone_nondecreasing()
    assert result.others_never_boosted()
    series = [result.runs[w].netflow_entries for w in sorted(result.runs)]
    assert series[-1] > series[0]
