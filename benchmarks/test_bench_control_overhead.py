"""Adaptive-control overhead: the disabled path must cost (almost) nothing.

``repro.control``'s inertness contract has two halves: byte-identical
outputs (pinned in ``tests/control/test_inert.py``) and a <5% wall-clock
envelope, gated here.  Disabled control builds no controller and no
plugin anywhere -- the replay hot path never even imports the package --
so the comparison is

* the current stack with ``control=None`` (the reference),
* the current stack with ``control=ControlOptions(enabled=False)``,
* the current stack with the controller enabled on a short cadence (for
  the published delta, not a gate -- stepping is real work).
"""

import time

import pytest

from conftest import publish

from repro.builders import build_replay_system
from repro.options import ControlOptions, ReplayOptions
from repro.replay.record import Recording
from repro.workloads.network import NetworkBenchmark

#: fractional overhead budget for the disabled path vs control=None
DISABLED_OVERHEAD_BUDGET = 0.05
#: absolute slack (seconds) so sub-ms timer jitter cannot fail the gate
ABSOLUTE_SLACK_SECONDS = 0.005


def bench_recording() -> Recording:
    return NetworkBenchmark(
        seed=0, connections=4, bytes_per_connection=128, rounds=2,
        config_files=2, bytes_per_file=64, heavy_hitter=False,
    ).record()


def _replay_seconds(recording: Recording, control) -> float:
    system, _ = build_replay_system(
        ReplayOptions(control=control), quick_calibration=True
    )
    started = time.perf_counter()
    system.replay(recording)
    return time.perf_counter() - started


def _best_of(fn, repeats: int = 5) -> float:
    return min(fn() for _ in range(repeats))


def test_bench_control_disabled_overhead():
    recording = bench_recording()
    disabled = ControlOptions(enabled=False)
    # warm up allocators / code paths once before timing
    _replay_seconds(recording, None)
    _replay_seconds(recording, disabled)

    # timer noise can exceed 5% on fast runs: allow a few attempts, each
    # a best-of-5, and require any one attempt to meet the budget
    attempts = []
    for _ in range(3):
        none_s = _best_of(lambda: _replay_seconds(recording, None))
        disabled_s = _best_of(
            lambda: _replay_seconds(recording, disabled)
        )
        attempts.append((none_s, disabled_s))
        budget = (
            none_s * (1 + DISABLED_OVERHEAD_BUDGET)
            + ABSOLUTE_SLACK_SECONDS
        )
        if disabled_s <= budget:
            break
    else:
        none_s, disabled_s = attempts[-1]
        pytest.fail(
            f"disabled-control overhead exceeds "
            f"{DISABLED_OVERHEAD_BUDGET:.0%}: control=None "
            f"{none_s * 1e3:.2f} ms vs disabled {disabled_s * 1e3:.2f} ms "
            f"(attempts: {attempts})"
        )

    enabled = ControlOptions(
        enabled=True, every=256, target_pollution=1e-6
    )
    enabled_s = _best_of(lambda: _replay_seconds(recording, enabled))
    events = len(recording)
    publish(
        "control_overhead",
        "\n".join(
            [
                "adaptive-control overhead (best-of-5, same recording)",
                f"  events:           {events}",
                f"  control=None:     {none_s * 1e3:8.2f} ms "
                f"({events / none_s:,.0f} ev/s)",
                f"  control disabled: {disabled_s * 1e3:8.2f} ms "
                f"({events / disabled_s:,.0f} ev/s)",
                f"  control enabled:  {enabled_s * 1e3:8.2f} ms "
                f"({events / enabled_s:,.0f} ev/s)",
                f"  disabled delta:   {(disabled_s / none_s - 1) * 100:+.1f}%",
                f"  enabled delta:    {(enabled_s / none_s - 1) * 100:+.1f}%",
            ]
        ),
    )


def test_bench_replay_control_enabled(benchmark):
    """Throughput with the controller stepping on a short cadence."""
    recording = bench_recording()
    system, _ = build_replay_system(
        ReplayOptions(
            control=ControlOptions(
                enabled=True, every=64, target_pollution=1e-6
            )
        ),
        quick_calibration=True,
    )
    result = benchmark(system.replay, recording)
    assert result.metrics.propagation_ops > 0
    assert result.robustness["control.param_updates"] > 0
