"""Vector-engine benchmarks plus the byte-identity guards for PR 4.

The columnar batch engine (:mod:`repro.vector`) is only admissible under
the same contract as every prior replay optimization: it may change the
wall clock and *nothing else*.  This module pins that contract on the
full network recording -- with and without seeded fault injection, and
on the JSONL decision-trace bytes -- and then measures all three replay
stacks (uncached reference, scalar, vector), rewriting the published
artifacts: ``results/replay_hotpath.txt``, ``results/replay_throughput.txt``
and ``BENCH_replay.json`` at the repo root.
"""

import json

from conftest import RESULTS_DIR

from repro.analysis.benchreport import (
    BENCH_JSON_NAME,
    measure_engines,
    write_bench_artifacts,
)
from repro.dift.snapshot import snapshot_tracker
from repro.experiments.common import experiment_params
from repro.faros import FarosSystem, mitos_config
from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.resilience import Resilience
from repro.obs.bundle import Observability


def _state_of(system):
    return (
        system.tracker.stats.to_payload(),
        json.dumps(snapshot_tracker(system.tracker), sort_keys=True),
        dict(system.pipeline.stage_counts),
    )


def _replay(recording, engine, resilience=None, trace_out=None):
    params = experiment_params()
    obs = Observability.create(trace_out=trace_out) if trace_out else None
    system = FarosSystem(
        mitos_config(params, engine=engine),
        observability=obs,
        resilience=resilience,
    )
    system.replay(recording)
    if obs is not None:
        obs.close()
    return system


def test_vector_byte_identity_full(full_network_recording):
    """Full network replay: stats, snapshot and stage counts must agree
    byte-for-byte between the scalar and vector engines."""
    scalar = _replay(full_network_recording, "scalar")
    vector = _replay(full_network_recording, "vector")
    assert _state_of(scalar) == _state_of(vector)


def test_vector_byte_identity_with_faults(full_network_recording):
    """Same guard over a seeded fault-perturbed stream: the injector
    rewrites the recording before either engine sees it, so both replay
    the identical perturbed event sequence."""

    def faulty():
        return Resilience(
            injector=FaultInjector(FaultConfig.uniform(0.15, seed=11))
        )

    scalar = _replay(full_network_recording, "scalar", resilience=faulty())
    vector = _replay(full_network_recording, "vector", resilience=faulty())
    assert _state_of(scalar) == _state_of(vector)


def test_vector_decision_trace_bytes(full_network_recording, tmp_path):
    """With a decision observer attached the vector engine falls back to
    the scalar policy path per event -- the JSONL trace must be
    byte-identical."""
    out_scalar = tmp_path / "trace_scalar.jsonl"
    out_vector = tmp_path / "trace_vector.jsonl"
    scalar = _replay(
        full_network_recording, "scalar", trace_out=out_scalar
    )
    vector = _replay(
        full_network_recording, "vector", trace_out=out_vector
    )
    assert _state_of(scalar) == _state_of(vector)
    assert out_scalar.stat().st_size > 0
    assert out_scalar.read_bytes() == out_vector.read_bytes()


def test_bench_vector_throughput(benchmark, full_network_recording):
    """Measure all three stacks and rewrite the published artifacts.

    The vector engine must beat scalar outright (the checked-in numbers
    record the actual multiple, targeted at >= 2x on an idle host; the
    assertion floor is kept at 1x so a loaded CI runner cannot flake the
    suite while still catching real regressions).
    """
    params = experiment_params()

    def vector_replay():
        return FarosSystem(
            mitos_config(params, engine="vector")
        ).replay(full_network_recording)

    result = benchmark.pedantic(vector_replay, rounds=3, iterations=1)
    assert result.metrics.wall_seconds > 0

    report = measure_engines(
        full_network_recording, params, rounds=3, include_reference=True
    )
    written = write_bench_artifacts(
        report, RESULTS_DIR, RESULTS_DIR.parent / BENCH_JSON_NAME
    )
    speedup = report.speedup("scalar", "vector")
    print(
        f"\nvector vs scalar: {speedup:.2f}x "
        f"({report.engines['vector'].events_per_second:,.0f} ev/s vs "
        f"{report.engines['scalar'].events_per_second:,.0f} ev/s)"
    )
    for path in written:
        print(f"[written to {path}]")
    assert speedup > 1.0
