"""Serve-path observability overhead: disabled must cost (almost) nothing.

The replay stack's obs contract -- disabled means ``None`` attribute
checks only -- now extends to the serving hot path (parse, enqueue,
shard worker, decide, response write).  This bench drives the same
explicit-mode decision load through

* a *seed replica* server -- the pre-instrumentation ``_dispatch`` /
  ``_shard_worker`` / ``_process`` bodies, reproduced verbatim on a
  ``MitosServer`` subclass,
* the current server with observability disabled (``observability=None``),
* the current server with the full bundle + canary enabled,

and asserts the disabled path stays within 5% of the seed replica
(plus absolute slack: loopback-socket runs carry real scheduler jitter).
"""

import asyncio
import time
from typing import Dict, List

import pytest

from conftest import publish

from repro.experiments.common import experiment_params, network_recording
from repro.options import ServeOptions
from repro.serve.loadgen import collect_offline_decisions, run_load
from repro.serve.protocol import (
    ApplyRequest,
    ControlRequest,
    DecideRequest,
    ProtocolError,
    encode_message,
    error_response,
    format_location,
)
from repro.serve.server import (
    MitosServer,
    ServerThread,
    TransientFault,
    _request_id_of,
    parse_request_cached,
)

#: fractional overhead budget for the disabled path vs the seed replica
DISABLED_OVERHEAD_BUDGET = 0.05
#: absolute slack (seconds): loopback sockets jitter more than timers
ABSOLUTE_SLACK_SECONDS = 0.010

#: repeat the quick recording's decisions to get a measurable run
LOAD_REPEATS = 8


class SeedServer(MitosServer):
    """The pre-observability serve hot path, byte-for-byte behavior."""

    def _dispatch(self, line, writer):
        self.requests_total += 1
        if self._m_requests is not None:
            self._m_requests.inc()
        try:
            request = parse_request_cached(line)
        except ProtocolError as err:
            self._send_error(writer, _request_id_of(line), err)
            return self._safe_drain(writer)
        if self._draining:
            self._send_error(
                writer,
                request.id,
                ProtocolError("shutting-down", "server is draining"),
            )
            return self._safe_drain(writer)
        if isinstance(request, ControlRequest):
            return self._handle_control(request, writer)
        if len(self._queues) == 1:
            shard_index = 0
        else:
            shard_index = self._ring.shard_for(
                format_location(request.destination)
            )
        queue = self._queues[shard_index]
        try:
            queue.put_nowait((request, writer))
        except asyncio.QueueFull:
            self.overloaded_total += 1
            if self._m_overloaded is not None:
                self._m_overloaded.inc()
            self._send_error(
                writer,
                request.id,
                ProtocolError(
                    "overloaded",
                    f"shard {shard_index} queue is full "
                    f"({self.options.queue_depth} deep); retry later",
                ),
            )
            return self._safe_drain(writer)
        return None

    async def _shard_worker(self, shard, queue):
        batch_max = self.options.batch_max
        while True:
            item = await queue.get()
            batch = [item]
            while len(batch) < batch_max:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            frames: Dict[asyncio.StreamWriter, List[bytes]] = {}
            for request, writer in batch:
                response = self._process(shard, request)
                frames.setdefault(writer, []).append(
                    encode_message(response)
                )
                self.responses_total += 1
                queue.task_done()
            for writer, chunks in frames.items():
                try:
                    writer.write(b"".join(chunks))
                except Exception:
                    continue
                await self._safe_drain(writer)

    def _process(self, shard, request):
        tracer = self._tracer
        started = time.perf_counter_ns() if tracer is not None else 0
        error = None
        for attempt in range(self.options.max_retries + 1):
            if attempt > 0:
                self.retries_total += 1
                if self._m_retries is not None:
                    self._m_retries.inc()
            try:
                if isinstance(request, DecideRequest):
                    response = shard.decide(request)
                    if self._m_decisions is not None:
                        self._m_decisions.inc()
                else:
                    assert isinstance(request, ApplyRequest)
                    response = shard.apply(request)
                if tracer is not None:
                    tracer.end("serve.decide", started)
                return response
            except ProtocolError as err:
                self.errors_total += 1
                if self._m_errors is not None:
                    self._m_errors.inc()
                return error_response(request.id, err.code, err.message)
            except TransientFault as err:
                error = err
                continue
            except Exception as err:  # pragma: no cover - defensive
                error = err
                break
        self.errors_total += 1
        if self._m_errors is not None:
            self._m_errors.inc()
        return error_response(
            request.id, "internal", f"shard {shard.index} failed: {error!r}"
        )


def bench_decisions():
    recording = network_recording(seed=0, quick=True)
    offline = collect_offline_decisions(
        recording, experiment_params(quick=True)
    )
    return offline * LOAD_REPEATS


def _bench_options(**overrides) -> ServeOptions:
    defaults = dict(port=0, shards=2, quick_calibration=True)
    defaults.update(overrides)
    return ServeOptions(**defaults)


def _load_seconds(thread: ServerThread, decisions) -> float:
    result = run_load(thread.host, thread.port, decisions, window=128)
    assert result.matched, result.mismatches[:3]
    return result.elapsed_seconds


def _seed_thread() -> ServerThread:
    thread = ServerThread(_bench_options())
    thread.server = SeedServer(_bench_options())
    return thread


def _best_of(fn, repeats: int = 5) -> float:
    return min(fn() for _ in range(repeats))


def test_bench_serve_disabled_overhead_vs_seed():
    decisions = bench_decisions()

    attempts = []
    enabled_s = None
    for _ in range(3):
        with _seed_thread() as seed:
            _load_seconds(seed, decisions)  # warm up
            seed_s = _best_of(lambda: _load_seconds(seed, decisions))
        with ServerThread(_bench_options()) as current:
            _load_seconds(current, decisions)
            disabled_s = _best_of(lambda: _load_seconds(current, decisions))
        attempts.append((seed_s, disabled_s))
        budget = (
            seed_s * (1 + DISABLED_OVERHEAD_BUDGET) + ABSOLUTE_SLACK_SECONDS
        )
        if disabled_s <= budget:
            break
    else:
        seed_s, disabled_s = attempts[-1]
        pytest.fail(
            f"serve disabled-path overhead exceeds "
            f"{DISABLED_OVERHEAD_BUDGET:.0%}: seed {seed_s * 1e3:.2f} ms vs "
            f"disabled {disabled_s * 1e3:.2f} ms (attempts: {attempts})"
        )

    enabled_options = _bench_options(
        observe=True, canary_fraction=1.0, canary_tau=0.05
    )
    with ServerThread(
        enabled_options, enabled_options.observability()
    ) as enabled:
        _load_seconds(enabled, decisions)
        enabled_s = _best_of(lambda: _load_seconds(enabled, decisions))

    requests = len(decisions)
    publish(
        "serve_obs_overhead",
        "\n".join(
            [
                "serve observability overhead (best-of-5, same load)",
                f"  requests:        {requests}",
                f"  seed replica:    {seed_s * 1e3:8.2f} ms "
                f"({requests / seed_s:,.0f} req/s)",
                f"  obs disabled:    {disabled_s * 1e3:8.2f} ms "
                f"({requests / disabled_s:,.0f} req/s)",
                f"  obs + canary:    {enabled_s * 1e3:8.2f} ms "
                f"({requests / enabled_s:,.0f} req/s)",
                f"  disabled delta:  {(disabled_s / seed_s - 1) * 100:+.1f}%",
                f"  enabled delta:   {(enabled_s / seed_s - 1) * 100:+.1f}%",
            ]
        ),
    )


def test_bench_serve_disabled_path(benchmark):
    """Throughput of the un-instrumented server (pytest-benchmark)."""
    decisions = bench_decisions()
    with ServerThread(_bench_options()) as thread:
        result = benchmark(
            run_load, thread.host, thread.port, decisions, window=128
        )
    assert result.matched


def test_bench_serve_observed_path(benchmark):
    """Throughput with hot-path histograms + decision tail + canary on."""
    decisions = bench_decisions()
    options = _bench_options(
        observe=True, canary_fraction=1.0, canary_tau=0.05
    )
    obs = options.observability()
    with ServerThread(options, obs) as thread:
        result = benchmark(
            run_load, thread.host, thread.port, decisions, window=128
        )
        assert result.matched
        histograms = obs.metrics.as_dict()["histograms"]
        assert histograms["serve.decide_us"]["count"] > 0
        assert histograms["serve.batch_size"]["count"] > 0
