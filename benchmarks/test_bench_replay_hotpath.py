"""Hot-path replay benchmarks plus the byte-identity guard for PR 3.

The PR 3 optimizations (running aggregates, memoized Eq. 8 marginals,
slotted/interned structures) are only admissible because they change the
wall clock and *nothing else*.  This module benches the optimized replay
against a reference stack that deliberately disables every shortcut --
uncached marginals and from-scratch pollution scans -- and asserts that
tracker stats, the full tracker snapshot, and the JSONL decision trace
are byte-identical between the two.  It also publishes the measured
process-pool sweep behaviour of :mod:`repro.parallel` so single-core CI
hosts report honest numbers instead of a fabricated speedup.
"""

import json
import time

from conftest import publish

from repro.analysis.benchreport import (
    EngineMeasurement,
    ReplayBenchReport,
    measure_engine,
    reference_replay,
    render_hotpath_table,
)
from repro.analysis.reporting import format_table
from repro.dift.snapshot import snapshot_tracker
from repro.experiments import fig8
from repro.experiments.common import experiment_params, run_sweep
from repro.faros import FarosSystem, mitos_config
from repro.obs.bundle import Observability
from repro.parallel import Job, run_jobs

# the reference stack (uncached marginals, scan-based pollution) moved to
# repro.analysis.benchreport so the CLI bench and CI share it
_reference_replay = reference_replay


def test_replay_byte_identity_vs_reference(full_network_recording, tmp_path):
    """The load-bearing guard: caches may only change the wall clock."""
    params = experiment_params()
    out_opt = tmp_path / "trace_opt.jsonl"
    out_ref = tmp_path / "trace_ref.jsonl"

    obs = Observability.create(trace_out=out_opt)
    system = FarosSystem(mitos_config(params), observability=obs)
    system.replay(full_network_recording)
    obs.close()

    reference, _ = _reference_replay(
        full_network_recording, params, trace_out=out_ref
    )

    assert system.tracker.stats.to_payload() == reference.stats.to_payload()
    assert json.dumps(
        snapshot_tracker(system.tracker), sort_keys=True
    ) == json.dumps(snapshot_tracker(reference), sort_keys=True)
    assert out_opt.stat().st_size > 0
    assert out_opt.read_bytes() == out_ref.read_bytes()


def test_bench_replay_hotpath(benchmark, full_network_recording):
    """Scalar replay throughput, with the uncached reference and the
    columnar vector engine measured alongside it so
    ``results/replay_hotpath.txt`` records what each layer of
    optimization buys on this host."""
    params = experiment_params()

    def optimized():
        return FarosSystem(mitos_config(params)).replay(full_network_recording)

    result = benchmark.pedantic(optimized, rounds=3, iterations=1)
    opt_seconds = result.metrics.wall_seconds
    _, ref_seconds = _reference_replay(full_network_recording, params)
    vector = measure_engine(
        full_network_recording, params, "vector", rounds=3
    )

    events = len(full_network_recording)
    report = ReplayBenchReport(benchmark="network-replay", events=events)
    report.engines["reference"] = EngineMeasurement(
        seconds=ref_seconds,
        events_per_second=events / ref_seconds if ref_seconds else 0.0,
        rounds=1,
    )
    report.engines["scalar"] = EngineMeasurement(
        seconds=opt_seconds,
        events_per_second=events / opt_seconds if opt_seconds else 0.0,
        rounds=3,
    )
    report.engines["vector"] = vector
    publish("replay_hotpath", render_hotpath_table(report))
    assert opt_seconds > 0 and ref_seconds > 0 and vector.seconds > 0


def test_bench_parallel_sweep(full_network_recording):
    """Measure -- honestly -- what ``--jobs 4`` buys on this host.

    Result identity is asserted unconditionally (that is the contract);
    the wall-clock ratio is only *published*, because containerized CI
    hosts are frequently pinned to one effective core, where a spawn
    pool can only lose.  ``sum(range(n))`` is used as the pooled payload
    (a single CPU-bound C call, picklable from builtins) so the number
    reflects scheduling capacity rather than pickle volume.
    """
    points = (0.5, 2.0)
    sequential = run_sweep(fig8._alpha_job, points, 1, 0, True)
    pooled = run_sweep(fig8._alpha_job, points, 4, 0, True)
    assert pooled == sequential  # identical results, point order preserved

    spin = 30_000_000
    jobs = [Job(sum, (range(spin),)) for _ in range(4)]
    started = time.perf_counter()
    seq_answers = run_jobs(jobs, workers=1)
    seq_seconds = time.perf_counter() - started
    started = time.perf_counter()
    pool_answers = run_jobs(jobs, workers=4)
    pool_seconds = time.perf_counter() - started
    assert pool_answers == seq_answers

    speedup = seq_seconds / pool_seconds if pool_seconds else 0.0
    rows = [
        ["cpu-bound jobs", len(jobs)],
        ["sequential seconds", seq_seconds],
        ["4-worker seconds", pool_seconds],
        ["speedup", speedup],
        ["host verdict", "multi-core" if speedup > 1.5 else "single-core"],
    ]
    publish(
        "sweep_parallel",
        format_table(
            ["metric", "value"],
            rows,
            title="== Parallel sweep: --jobs 4 vs --jobs 1 ==",
        ),
    )
    assert speedup > 0.0
