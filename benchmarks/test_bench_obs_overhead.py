"""Observability overhead: the disabled path must cost (almost) nothing.

The obs layer's contract is that an un-instrumented replay pays only
``None`` attribute checks on the hot path.  This bench replays the same
recording through

* a *seed replica* pipeline -- the pre-observability ``FarosPipeline``
  ``on_event`` body, reproduced verbatim, driven by the plain replayer
  loop shape,
* the current stack with observability disabled (``observability=None``),
* the current stack with the full bundle enabled (tracer + metrics +
  in-memory decision trace + sampling),

and asserts the disabled path stays within 5% of the seed replica.
"""

import time

import pytest

from conftest import publish

from repro.dift.flows import FlowEvent
from repro.dift.tracker import DIFTTracker
from repro.faros import FarosSystem, mitos_config
from repro.obs import Observability
from repro.replay.record import Recording
from repro.replay.replayer import Plugin, Replayer
from repro.workloads.calibration import benchmark_params
from repro.workloads.network import NetworkBenchmark

#: fractional overhead budget for the disabled path vs the seed replica
DISABLED_OVERHEAD_BUDGET = 0.05
#: absolute slack (seconds) so sub-ms timer jitter cannot fail the gate
ABSOLUTE_SLACK_SECONDS = 0.005


class SeedPipeline(Plugin):
    """The seed's FarosPipeline.on_event, byte-for-byte behavior."""

    name = "seed-pipeline"

    def __init__(self, tracker: DIFTTracker):
        self.tracker = tracker
        self.stage_counts = {
            "is_dfp": 0,
            "is_ifp": 0,
            "insert": 0,
            "clear": 0,
        }

    def on_begin(self, recording: Recording) -> None:
        self.tracker.reset()
        for key in self.stage_counts:
            self.stage_counts[key] = 0

    def on_event(self, event: FlowEvent) -> None:
        if event.kind.is_direct:
            self.stage_counts["is_dfp"] += 1
        elif event.kind.is_indirect:
            self.stage_counts["is_ifp"] += 1
        elif event.kind.value == "insert":
            self.stage_counts["insert"] += 1
        else:
            self.stage_counts["clear"] += 1
        self.tracker.process(event)


def bench_recording() -> Recording:
    return NetworkBenchmark(
        seed=0, connections=4, bytes_per_connection=128, rounds=2,
        config_files=2, bytes_per_file=64, heavy_hitter=False,
    ).record()


def _seed_replay_seconds(recording: Recording) -> float:
    # mirror FarosSystem's default wiring (policy + confluence detector)
    from repro.dift.detector import ConfluenceDetector

    config = mitos_config(benchmark_params())
    tracker = DIFTTracker(
        config.params,
        config.build_policy(),
        detector=ConfluenceDetector(config.detector_types),
    )
    replayer = Replayer([SeedPipeline(tracker)])
    started = time.perf_counter()
    replayer.replay(recording)
    return time.perf_counter() - started


def _system_replay_seconds(recording: Recording, obs) -> float:
    system = FarosSystem(mitos_config(benchmark_params()), observability=obs)
    started = time.perf_counter()
    system.replay(recording)
    return time.perf_counter() - started


def _best_of(fn, repeats: int = 5) -> float:
    return min(fn() for _ in range(repeats))


def test_bench_obs_disabled_overhead_vs_seed():
    recording = bench_recording()
    # warm up allocators / code paths once before timing
    _seed_replay_seconds(recording)
    _system_replay_seconds(recording, None)

    # timer noise can exceed 5% on fast runs: allow a few attempts, each a
    # best-of-5, and require any one attempt to meet the budget
    attempts = []
    for _ in range(3):
        seed_s = _best_of(lambda: _seed_replay_seconds(recording))
        disabled_s = _best_of(lambda: _system_replay_seconds(recording, None))
        attempts.append((seed_s, disabled_s))
        budget = seed_s * (1 + DISABLED_OVERHEAD_BUDGET) + ABSOLUTE_SLACK_SECONDS
        if disabled_s <= budget:
            break
    else:
        seed_s, disabled_s = attempts[-1]
        pytest.fail(
            f"disabled-path overhead exceeds {DISABLED_OVERHEAD_BUDGET:.0%}: "
            f"seed {seed_s * 1e3:.2f} ms vs disabled {disabled_s * 1e3:.2f} ms "
            f"(attempts: {attempts})"
        )

    enabled_obs = lambda: Observability.create(sample_every=100)  # noqa: E731
    enabled_s = _best_of(lambda: _system_replay_seconds(recording, enabled_obs()))
    events = len(recording)
    publish(
        "obs_overhead",
        "\n".join(
            [
                "observability overhead (best-of-5, same recording)",
                f"  events:          {events}",
                f"  seed replica:    {seed_s * 1e3:8.2f} ms "
                f"({events / seed_s:,.0f} ev/s)",
                f"  obs disabled:    {disabled_s * 1e3:8.2f} ms "
                f"({events / disabled_s:,.0f} ev/s)",
                f"  obs enabled:     {enabled_s * 1e3:8.2f} ms "
                f"({events / enabled_s:,.0f} ev/s)",
                f"  disabled delta:  {(disabled_s / seed_s - 1) * 100:+.1f}%",
                f"  enabled delta:   {(enabled_s / seed_s - 1) * 100:+.1f}%",
            ]
        ),
    )


def test_bench_replay_disabled_path(benchmark):
    """Throughput of the un-instrumented stack (pytest-benchmark timing)."""
    recording = bench_recording()
    system = FarosSystem(mitos_config(benchmark_params()))
    result = benchmark(system.replay, recording)
    assert result.metrics.propagation_ops > 0


def test_bench_replay_enabled_path(benchmark):
    """Throughput with tracer + metrics + decisions + sampling all on."""
    recording = bench_recording()
    obs = Observability.create(sample_every=100)
    system = FarosSystem(mitos_config(benchmark_params()), observability=obs)
    result = benchmark(system.replay, recording)
    assert result.metrics.propagation_ops > 0
    assert obs.tracer.get("tracker.process").count > 0
