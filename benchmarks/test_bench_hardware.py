"""Benches for the hardware MITOS model (Section VI sketch).

Measures the modeled SoC's end-to-end event cost and the cycle profile of
the commit-stage decision path under warm vs. thrashing tag caches.
"""


from conftest import publish

from repro.analysis.reporting import format_mapping
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.experiments.common import experiment_params
from repro.hardware import MitosHardware, SegmentedTagMemory, TagCache


def make_hardware(**kwargs) -> MitosHardware:
    return MitosHardware.configure(experiment_params(), **kwargs)


def test_bench_hardware_event_processing(benchmark):
    tag = Tag("netflow", 1)
    events = [flows.insert(reg("r1"), tag, tick=0)]
    events += [
        flows.address_dep(reg("r1"), mem(i % 64), tick=1 + i) for i in range(256)
    ]

    def run_events():
        hw = make_hardware()
        hw.process_many(events)
        return hw

    hw = benchmark(run_events)
    assert hw.report.decisions > 0


def test_bench_hardware_cycle_profile(benchmark):
    tag = Tag("netflow", 1)

    def profile():
        warm = make_hardware(cache=TagCache(sets=64, ways=4))
        for tick in range(512):
            warm.process(flows.insert(mem(tick % 32), tag, tick=tick))
        thrash = make_hardware(
            cache=TagCache(sets=2, ways=1),
            tag_memory=SegmentedTagMemory(resident_pages=1),
        )
        for tick in range(512):
            thrash.process(flows.insert(mem(tick * 64), tag, tick=tick))
        return warm, thrash

    warm, thrash = benchmark.pedantic(profile, rounds=2, iterations=1)
    publish(
        "hardware_cycles",
        format_mapping("warm cache", warm.report.as_dict())
        + "\n\n"
        + format_mapping("thrashing cache + 1-page segment", thrash.report.as_dict()),
    )
    assert warm.report.total_cycles < thrash.report.total_cycles
    assert thrash.report.swaps > warm.report.swaps
