"""Bench for Fig. 3: cost-function series generation.

Regenerates both panels at full resolution and benchmarks the series
computation (the per-decision cost arithmetic underlying everything).
"""

from conftest import publish, publish_result

from repro.experiments import fig3


def test_bench_fig3(benchmark):
    result = benchmark(fig3.run, quick=False)
    publish("fig3", fig3.render(result))
    publish_result("fig3", result)
    for alpha in fig3.FIG3A_ALPHAS:
        assert result.under_is_decreasing(alpha)
    for beta in fig3.FIG3B_BETAS:
        assert result.over_is_increasing(beta)
