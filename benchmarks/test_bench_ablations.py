"""Bench for the ablations: scheduling, solver gap, gradient rule, staleness."""

from conftest import publish, publish_result

from repro.experiments import ablations
from repro.experiments.common import experiment_params
from repro.core.solver import solve_kkt


def test_bench_kkt_solver(benchmark):
    """Centralized KKT solve on a 100-tag instance."""
    params = experiment_params()
    keys = [("netflow", i) for i in range(1, 51)] + [
        ("file", i) for i in range(1, 51)
    ]
    result = benchmark(solve_kkt, keys, params)
    assert len(result.n) == 100


def test_ablations_artifact(benchmark):
    result = benchmark.pedantic(ablations.run, kwargs=dict(quick=False), rounds=1, iterations=1)
    publish("ablations", ablations.render(result))
    publish_result("ablations", result)
    assert result.greedy_gap.relative_gap < 0.05
    assert (
        result.gradient_rule.published_total_copies
        < result.gradient_rule.exact_total_copies
    )
    agreements = [row.oracle_agreement for row in result.staleness]
    assert all(0.0 <= a <= 1.0 for a in agreements)
