"""Bench for the omitted cross-workload sensitivity result.

"We also ran CPU and file-system benchmarks, and we noticed similar
behaviors.  We skip the results for those benchmarks due to space
limitations."  -- Section V-B.  Regenerated here in full.
"""

from conftest import publish, publish_result

from repro.experiments import workload_sensitivity


def test_sensitivity_artifact(benchmark):
    result = benchmark.pedantic(
        workload_sensitivity.run, kwargs=dict(quick=False), rounds=1, iterations=1
    )
    publish("sensitivity", workload_sensitivity.render(result))
    publish_result("sensitivity", result)
    assert result.all_workloads_behave_similarly()
    # the network workload must actually exercise both regimes at full size
    network = result.sweeps["network"]
    assert network.rates[1.0] < network.rates[0.01]
