"""Microbenchmarks backing the paper's complexity claims.

Section IV-B property 2 claims O(1) decision time ("every time MITOS needs
to make an IFP decision it only needs to sum two real numbers") and
property 3 claims scalability ("its complexity doesn't change on the
number of tags in the system").  These benches measure exactly that:

* the single-tag Algorithm 1 decision,
* Algorithm 2 over a fixed candidate set while the *system-wide* tag
  population varies (must be flat),
* shadow-memory add throughput and end-to-end replay throughput.
"""

import pytest

from conftest import publish

from repro.analysis.benchreport import (
    EngineMeasurement,
    ReplayBenchReport,
    measure_engine,
    render_throughput_table,
)
from repro.core.decision import TagCandidate, decide_multi, decide_single
from repro.dift.shadow import ShadowMemory, mem
from repro.dift.tags import Tag
from repro.experiments.common import experiment_params
from repro.faros import FarosSystem, mitos_config


def test_bench_algorithm1_decision(benchmark):
    params = experiment_params()
    candidate = TagCandidate(key="t", tag_type="netflow", copies=100)
    decision = benchmark(decide_single, candidate, 5000.0, params)
    assert decision.marginal is not None


@pytest.mark.parametrize("candidates", [1, 4, 10])
def test_bench_algorithm2_by_candidates(benchmark, candidates):
    """Cost scales with the *candidate list* (source operand tags) only."""
    params = experiment_params()
    cands = [
        TagCandidate(key=i, tag_type="netflow", copies=10 + i)
        for i in range(candidates)
    ]
    outcome = benchmark(decide_multi, cands, 10, 5000.0, params)
    assert len(outcome.decisions) == candidates


@pytest.mark.parametrize("live_tags", [100, 10_000, 1_000_000])
def test_bench_algorithm2_flat_in_system_size(benchmark, live_tags):
    """The O(1) claim: decision cost is independent of the total number of
    tags in the system (only the pollution scalar changes)."""
    params = experiment_params()
    cands = [
        TagCandidate(key=i, tag_type="netflow", copies=50) for i in range(4)
    ]
    pollution = float(live_tags)  # the only system-size-dependent input
    outcome = benchmark(decide_multi, cands, 4, pollution, params)
    assert len(outcome.decisions) == 4


def test_bench_shadow_memory_adds(benchmark):
    tags = [Tag("netflow", i + 1) for i in range(8)]

    def add_many():
        shadow = ShadowMemory(m_prov=10)
        for address in range(1000):
            shadow.add_tag(mem(address), tags[address % len(tags)])
        return shadow

    shadow = benchmark(add_many)
    assert shadow.total_entries() == 1000


def test_bench_replay_throughput(benchmark, full_network_recording):
    params = experiment_params()

    def replay_once():
        return FarosSystem(mitos_config(params)).replay(full_network_recording)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    events = len(full_network_recording)
    seconds = result.metrics.wall_seconds

    # publish through the shared report so this artifact has the same
    # shape whether it was last written here, by test_bench_vector, or
    # by `mitos-repro bench`
    report = ReplayBenchReport(benchmark="network-replay", events=events)
    report.engines["scalar"] = EngineMeasurement(
        seconds=seconds,
        events_per_second=events / seconds if seconds else 0.0,
        rounds=3,
    )
    report.engines["vector"] = measure_engine(
        full_network_recording, params, "vector", rounds=3
    )
    publish("replay_throughput", render_throughput_table(report))
    assert seconds >= 0
