"""Bench for the joint scenario the paper's PANDA setup could not run.

Section VI: record-size limits "prevented us from running complex
evaluation scenarios, e.g., run multiple attacks of benchmark scenarios
jointly".  We interleave two attacks and the network benchmark into one
trace, benchmark the joint replay, and verify detection survives the
noise under MITOS while stock FAROS stays blind to the encoded shells.
"""

import pytest

from conftest import publish

from repro.analysis.reporting import format_table
from repro.experiments.common import experiment_params
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.workloads.attack import InMemoryAttack
from repro.workloads.composite import interleave
from repro.workloads.network import NetworkBenchmark


@pytest.fixture(scope="module")
def joint_recording():
    first = InMemoryAttack(variant="reverse_https", seed=0).record()
    second = InMemoryAttack(variant="reverse_tcp_rc4_dns", seed=1).record()
    noise = NetworkBenchmark(seed=2, rounds=2).record()
    return interleave(
        [first, second, noise],
        chunk_size=1024,
        location_offsets=[0, 0x10000, 0x20000],
    )


def test_bench_joint_replay(benchmark, joint_recording):
    params = experiment_params(tau=1.0)

    def replay_once():
        return FarosSystem(mitos_config(params, all_flows=True)).replay(
            joint_recording
        )

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.tracker_stats["inserts"] > 0


def test_joint_artifact(benchmark, joint_recording):
    params = experiment_params(tau=1.0)

    def run_both():
        faros = FarosSystem(stock_faros_config(params)).replay(joint_recording)
        mitos = FarosSystem(mitos_config(params, all_flows=True)).replay(
            joint_recording
        )
        return faros, mitos

    faros, mitos = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [
            label,
            res.metrics.propagation_ops,
            res.metrics.detected_bytes,
        ]
        for label, res in (("faros", faros), ("mitos-all", mitos))
    ]
    publish(
        "joint_scenario",
        format_table(
            ["system", "ops", "detected bytes"],
            rows,
            title=(
                "== Joint scenario (2 attacks + network benchmark, "
                f"{len(joint_recording)} events) =="
            ),
        ),
    )
    # both shells are table/rc4+table encoded: stock FAROS is blind
    assert faros.metrics.detected_bytes == 0
    assert mitos.metrics.detected_bytes > 0
    assert mitos.metrics.propagation_ops < faros.metrics.propagation_ops
