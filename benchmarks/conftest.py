"""Shared benchmark fixtures and result publication.

Every experiment bench regenerates one paper artifact at full size,
benchmarks its dominant operation, and publishes the reproduced
rows/series to ``results/<artifact>.txt`` (and stdout), so
``pytest benchmarks/ --benchmark-only`` leaves the full evaluation on
disk alongside the timing table.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def publish(name: str, text: str) -> None:
    """Write an artifact's rendered output to results/ and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def publish_result(name: str, result: object) -> None:
    """Also publish the raw result object as JSON for downstream tooling."""
    from repro.analysis.export import to_json

    RESULTS_DIR.mkdir(exist_ok=True)
    to_json(result, RESULTS_DIR / f"{name}.json")


@pytest.fixture(scope="session")
def full_network_recording():
    """The full-size network-benchmark recording (recorded once)."""
    from repro.experiments.common import network_recording

    return network_recording(seed=0, quick=False)
