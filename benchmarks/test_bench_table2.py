"""Bench for Table II: FAROS vs MITOS on the in-memory attack.

Benchmarks one full attack replay under each system, then regenerates the
averaged six-shell table and checks the paper's headline: simultaneous
improvement in time, space, and detected bytes.
"""

import pytest

from conftest import publish, publish_result

from repro.experiments import table2
from repro.experiments.common import experiment_params
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.workloads.attack import InMemoryAttack


@pytest.fixture(scope="module")
def attack_recording():
    return InMemoryAttack(variant="reverse_https", seed=0).record()


def test_bench_table2_faros_replay(benchmark, attack_recording):
    params = experiment_params(tau=1.0)

    def replay_once():
        return FarosSystem(stock_faros_config(params)).replay(attack_recording)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.tracker_stats["inserts"] > 0


def test_bench_table2_mitos_replay(benchmark, attack_recording):
    params = experiment_params(tau=1.0)

    def replay_once():
        return FarosSystem(mitos_config(params, all_flows=True)).replay(
            attack_recording
        )

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.tracker_stats["inserts"] > 0


def test_table2_artifact(benchmark):
    result = benchmark.pedantic(table2.run, kwargs=dict(quick=False), rounds=1, iterations=1)
    publish("table2", table2.render(result))
    publish_result("table2", result)
    assert result.simultaneous_improvement()
    assert result.detection_improvement > 1.5
    assert result.time_improvement > 1.0
    assert result.space_improvement > 1.0
