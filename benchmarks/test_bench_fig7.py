"""Bench for Fig. 7: the tau sweep over the network benchmark.

Benchmarks a single full replay under MITOS at tau = 1 (the per-event
tracking cost), then regenerates the full three-tau figure and checks the
paper's shape: higher tau blocks more indirect flows.
"""

from conftest import publish, publish_result

from repro.experiments import fig7
from repro.experiments.common import experiment_params
from repro.faros import FarosSystem, mitos_config


def test_bench_fig7_replay(benchmark, full_network_recording):
    params = experiment_params(tau=1.0)

    def replay_once():
        system = FarosSystem(mitos_config(params, log_timeline=True))
        return system.replay(full_network_recording)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.tracker_stats["inserts"] > 0


def test_fig7_artifact(benchmark):
    result = benchmark.pedantic(fig7.run, kwargs=dict(quick=False), rounds=1, iterations=1)
    publish("fig7", fig7.render(result))
    publish_result("fig7", result)
    assert result.rate_increases_as_tau_drops()
    assert result.runs[1.0].blocked > 0
    assert (
        result.runs[0.01].propagation_rate > result.runs[1.0].propagation_rate
    )
