"""Decision-core bench: the fused columnar plane's single-core floor.

This measures the serving decision core with the sockets, asyncio, and
frame parsing stripped away: pre-parsed binary rows straight into
``DecisionShard.decide_rows`` (the fused cross-request kernel) and into
``_decide_rows_scalar`` (the sequential reference), over the full
network recording's explicit-mode decisions.  Two guards:

* **byte identity** -- the fused plane's response bytes and checkpoint
  document must equal the sequential reference across batch-boundary
  permutations (the miniature randomized version lives in
  ``tests/serve/test_batch_plane.py``; this one runs the full workload);
* **the floor** -- the fused plane must clear 101k decisions/s on one
  core (the tracked local number is ~180-205k; the floor leaves room
  for shared CI runners).

Publishes the fused-vs-scalar table to ``results/decision_plane.txt``.
"""

import json
import time

import pytest

from conftest import publish

from repro.experiments.common import experiment_params
from repro.faros.config import FarosConfig
from repro.serve.loadgen import collect_offline_decisions
from repro.serve.protocol import parse_location
from repro.serve.shard import DecisionShard

#: decisions/s the fused plane must clear on one CI core
DECISION_CORE_FLOOR = 101_000.0
#: drain sizes measured (256 is the serving default's deep-pipeline case)
BUNDLES = (64, 256, 1024)
#: best-of rounds per configuration (noisy-host hygiene)
ROUNDS = 5


class _Conn:
    __slots__ = ("out",)

    def __init__(self):
        self.out = bytearray()


@pytest.fixture(scope="module")
def workload(full_network_recording):
    params = experiment_params(quick=False)
    decisions = collect_offline_decisions(full_network_recording, params)
    type_index = {}
    rows = []
    for rid, decision in enumerate(decisions):
        request = decision.request
        cands = tuple(
            (
                type_index.setdefault(c["type"], len(type_index)),
                c["type"],
                c["index"],
                c["copies"],
            )
            for c in request["candidates"]
        )
        rows.append(
            (
                None, rid, parse_location(request["dest"]),
                1 if request["kind"] == "control_dep" else 0,
                request["tick"], request.get("context", ""),
                request["free_slots"], request["pollution"], cands,
            )
        )
    return params, rows


def make_shard(params, fused):
    config = FarosConfig(params=params, policy="mitos", label="bench")
    shard = DecisionShard(
        0, params=params, policy_factory=config.build_policy
    )
    if fused:
        shard.columnar_min_cands = 0
    return shard


def drive(shard, rows, bundle, fused):
    """Interleave rows over 7 connections in ``bundle``-sized drains."""
    conns = [_Conn() for _ in range(7)]
    fn = shard.decide_rows if fused else shard._decide_rows_scalar
    for start in range(0, len(rows), bundle):
        fn(
            [
                (conns[row[1] % 7],) + row[1:]
                for row in rows[start:start + bundle]
            ]
        )
    return b"".join(bytes(conn.out) for conn in conns)


def checkpoint_text(shard):
    return json.dumps(
        shard.checkpoint_payload(), sort_keys=True, default=str
    )


def test_fused_plane_is_byte_identical(workload):
    params, rows = workload
    reference = make_shard(params, fused=False)
    want = drive(reference, rows, 64, fused=False)
    want_ckpt = checkpoint_text(reference)
    for bundle in (1, 64, 256):
        shard = make_shard(params, fused=True)
        assert drive(shard, rows, bundle, fused=True) == want, (
            f"fused response bytes diverged at bundle {bundle}"
        )
        assert checkpoint_text(shard) == want_ckpt, (
            f"fused checkpoint state diverged at bundle {bundle}"
        )


def test_decision_core_floor(workload):
    params, rows = workload
    table = {}
    for fused in (True, False):
        for bundle in BUNDLES:
            best = 0.0
            for _ in range(ROUNDS):
                shard = make_shard(params, fused=fused)
                started = time.perf_counter()
                drive(shard, rows, bundle, fused=fused)
                elapsed = time.perf_counter() - started
                best = max(best, len(rows) / elapsed)
            table[(fused, bundle)] = best
    lines = [
        "decision core, one core "
        f"({len(rows)} explicit rows, best of {ROUNDS}):",
        f"{'drain':>8} {'fused/s':>12} {'scalar/s':>12} {'ratio':>7}",
    ]
    for bundle in BUNDLES:
        fused_dps = table[(True, bundle)]
        scalar_dps = table[(False, bundle)]
        lines.append(
            f"{bundle:>8} {fused_dps:>12.0f} {scalar_dps:>12.0f} "
            f"{fused_dps / scalar_dps:>6.2f}x"
        )
    publish("decision_plane", "\n".join(lines))
    fused_best = max(table[(True, bundle)] for bundle in BUNDLES)
    assert fused_best > DECISION_CORE_FLOOR, (
        f"fused decision core {fused_best:.0f}/s is under the "
        f"{DECISION_CORE_FLOOR:.0f}/s floor"
    )
