"""Bench for Fig. 8: the alpha/fairness sweep.

Benchmarks one replay at high alpha (the heavily-blocking regime), then
regenerates the six-alpha figure and checks tag balancing improves.
"""

from conftest import publish, publish_result

from repro.experiments import fig8
from repro.experiments.common import experiment_params
from repro.faros import FarosSystem, mitos_config


def test_bench_fig8_replay(benchmark, full_network_recording):
    params = experiment_params(alpha=4.0)

    def replay_once():
        system = FarosSystem(mitos_config(params))
        return system.replay(full_network_recording)

    result = benchmark.pedantic(replay_once, rounds=3, iterations=1)
    assert result.tracker_stats["inserts"] > 0


def test_fig8_artifact(benchmark):
    result = benchmark.pedantic(fig8.run, kwargs=dict(quick=False), rounds=1, iterations=1)
    publish("fig8", fig8.render(result))
    publish_result("fig8", result)
    assert result.broadly_improves_with_alpha()
    assert result.balancing_improvement() >= 2.0  # paper: "up to 2x"
