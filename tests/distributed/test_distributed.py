"""Tests for repro.distributed: nodes, gossip, cluster."""

import pytest

from repro.core.params import MitosParams
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.distributed.cluster import Cluster, run_sharded
from repro.distributed.gossip import PollutionGossip
from repro.distributed.node import SubsystemNode
from repro.replay.record import Recording


def params(**kw) -> MitosParams:
    defaults = dict(R=1 << 16, M_prov=4, tau_scale=1.0)
    defaults.update(kw)
    return MitosParams(**defaults)


def make_nodes(n: int):
    return [SubsystemNode(i, params()) for i in range(n)]


NET = Tag("netflow", 1)


class TestSubsystemNode:
    def test_local_pollution_tracks_tracker(self):
        node = SubsystemNode(0, params())
        node.process(flows.insert(mem(1), NET, tick=0))
        assert node.local_pollution() == 1.0
        assert node.events_processed == 1

    def test_belief_includes_peers(self):
        node = SubsystemNode(0, params())
        node.process(flows.insert(mem(1), NET, tick=0))
        node.receive_gossip(1, 10.0)
        node.receive_gossip(2, 5.0)
        assert node.believed_pollution() == 16.0

    def test_self_gossip_ignored(self):
        node = SubsystemNode(0, params())
        node.receive_gossip(0, 100.0)
        assert node.believed_pollution() == 0.0

    def test_estimate_error(self):
        node = SubsystemNode(0, params())
        node.receive_gossip(1, 10.0)
        assert node.estimate_error(12.0) == 2.0

    def test_policy_uses_belief(self):
        # huge believed pollution blocks propagation of a common tag
        node = SubsystemNode(0, params(tau_scale=1e3))
        node.receive_gossip(1, 1e6)
        for i in range(10):
            node.process(flows.insert(mem(i), NET, tick=i))
        node.process(flows.insert(reg("r1"), NET, tick=20))
        node.process(flows.address_dep(reg("r1"), mem(99), tick=21))
        assert not node.tracker.shadow.is_tainted(mem(99))


class TestGossip:
    def test_round_spreads_values(self):
        nodes = make_nodes(4)
        nodes[0].process(flows.insert(mem(0), NET, tick=0))
        gossip = PollutionGossip(nodes, fanout=3, seed=1)
        gossip.round()
        # with fanout 3 of 3 possible peers, everyone heard node 0
        for node in nodes[1:]:
            assert node.peer_pollution.get(0) == 1.0

    def test_broadcast_exact(self):
        nodes = make_nodes(3)
        for i, node in enumerate(nodes):
            for j in range(i + 1):
                node.process(flows.insert(mem(j), NET, tick=j))
        gossip = PollutionGossip(nodes, seed=0)
        gossip.broadcast()
        truth = gossip.true_global_pollution()
        for node in nodes:
            assert node.believed_pollution() == truth

    def test_errors_shrink_after_broadcast(self):
        nodes = make_nodes(3)
        nodes[0].process(flows.insert(mem(0), NET, tick=0))
        gossip = PollutionGossip(nodes, seed=0)
        before = gossip.max_error()
        gossip.broadcast()
        after = gossip.max_error()
        assert after <= before

    def test_message_counting(self):
        nodes = make_nodes(4)
        gossip = PollutionGossip(nodes, fanout=2, seed=0)
        gossip.round()
        assert gossip.state.messages_sent == 8
        assert gossip.state.rounds == 1

    def test_single_node_cluster(self):
        gossip = PollutionGossip(make_nodes(1), fanout=2, seed=0)
        gossip.round()  # no peers: no messages, no crash
        assert gossip.state.messages_sent == 0

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            PollutionGossip(make_nodes(2), fanout=0)


class TestCluster:
    def recording(self, n: int = 40) -> Recording:
        events = []
        for i in range(n):
            events.append(flows.insert(mem(i), Tag("netflow", 1 + i % 3), tick=2 * i))
            events.append(flows.address_dep(mem(i), mem(100 + i), tick=2 * i + 1))
        return Recording(events=events)

    def test_routing_is_deterministic_and_total(self):
        cluster = Cluster(params(), n_nodes=3, seed=0)
        recording = self.recording()
        first = [cluster.route(e).node_id for e in recording]
        second = [cluster.route(e).node_id for e in recording]
        assert first == second

    def test_run_processes_every_event(self):
        result = run_sharded(self.recording(), params(), n_nodes=3, gossip_interval=10)
        assert sum(result.per_node_events.values()) == result.events

    def test_oracle_agreement_bounds(self):
        result = run_sharded(self.recording(), params(), n_nodes=3, gossip_interval=10)
        assert 0.0 <= result.oracle_agreement <= 1.0

    def test_frequent_gossip_not_worse(self):
        recording = self.recording(80)
        frequent = run_sharded(recording, params(), n_nodes=4, gossip_interval=5)
        rare = run_sharded(recording, params(), n_nodes=4, gossip_interval=1000)
        assert frequent.mean_estimate_error <= rare.mean_estimate_error + 1e-9
        assert frequent.gossip_messages >= rare.gossip_messages

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Cluster(params(), n_nodes=0)
        with pytest.raises(ValueError):
            Cluster(params(), gossip_interval=0)

    def test_single_node_matches_oracle(self):
        result = run_sharded(
            self.recording(), params(), n_nodes=1, gossip_interval=10
        )
        assert result.oracle_agreement == 1.0


class TestHeterogeneousCluster:
    """Per-subsystem security needs: each node gets its own MITOS inputs."""

    def recording(self, n: int = 60) -> Recording:
        events = []
        tag = Tag("netflow", 1)
        for i in range(n):
            events.append(flows.insert(mem(i), tag, tick=3 * i))
            events.append(flows.insert(mem(1000 + i), tag, tick=3 * i + 1))
            events.append(
                flows.address_dep(mem(i), mem(2000 + i), tick=3 * i + 2)
            )
        return Recording(events=events)

    def test_node_params_validated(self):
        with pytest.raises(ValueError, match="node_params"):
            Cluster(params(), n_nodes=3, node_params=[params()])

    def test_heterogeneous_nodes_keep_own_params(self):
        strict = params(tau=10.0, tau_scale=1e6)
        lax = params(tau=0.0)
        cluster = Cluster(
            params(), n_nodes=2, node_params=[strict, lax], seed=0
        )
        assert cluster.nodes[0].params.tau == 10.0
        assert cluster.nodes[1].params.tau == 0.0

    def test_strict_node_blocks_lax_node_propagates(self):
        strict = params(tau=10.0, tau_scale=1e9)
        lax = params(tau=0.0)
        cluster = Cluster(
            params(), n_nodes=2, node_params=[strict, lax],
            gossip_interval=5, seed=0,
        )
        result = cluster.run(self.recording())
        # nodes disagree on policy but each agrees with its own oracle
        assert result.oracle_agreement == 1.0
        strict_stats = cluster.nodes[0].tracker.stats
        lax_stats = cluster.nodes[1].tracker.stats
        if strict_stats.ifp_candidates and lax_stats.ifp_candidates:
            assert (
                strict_stats.ifp_propagation_rate
                <= lax_stats.ifp_propagation_rate
            )
