"""Tests for repro.distributed: nodes, gossip, cluster."""

import pytest

from repro.core.params import MitosParams
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.distributed.cluster import Cluster, run_sharded
from repro.distributed.gossip import PollutionGossip
from repro.distributed.node import SubsystemNode
from repro.replay.record import Recording


def params(**kw) -> MitosParams:
    defaults = dict(R=1 << 16, M_prov=4, tau_scale=1.0)
    defaults.update(kw)
    return MitosParams(**defaults)


def make_nodes(n: int):
    return [SubsystemNode(i, params()) for i in range(n)]


NET = Tag("netflow", 1)


class TestSubsystemNode:
    def test_local_pollution_tracks_tracker(self):
        node = SubsystemNode(0, params())
        node.process(flows.insert(mem(1), NET, tick=0))
        assert node.local_pollution() == 1.0
        assert node.events_processed == 1

    def test_belief_includes_peers(self):
        node = SubsystemNode(0, params())
        node.process(flows.insert(mem(1), NET, tick=0))
        node.receive_gossip(1, 10.0)
        node.receive_gossip(2, 5.0)
        assert node.believed_pollution() == 16.0

    def test_self_gossip_ignored(self):
        node = SubsystemNode(0, params())
        node.receive_gossip(0, 100.0)
        assert node.believed_pollution() == 0.0

    def test_estimate_error(self):
        node = SubsystemNode(0, params())
        node.receive_gossip(1, 10.0)
        assert node.estimate_error(12.0) == 2.0

    def test_policy_uses_belief(self):
        # huge believed pollution blocks propagation of a common tag
        node = SubsystemNode(0, params(tau_scale=1e3))
        node.receive_gossip(1, 1e6)
        for i in range(10):
            node.process(flows.insert(mem(i), NET, tick=i))
        node.process(flows.insert(reg("r1"), NET, tick=20))
        node.process(flows.address_dep(reg("r1"), mem(99), tick=21))
        assert not node.tracker.shadow.is_tainted(mem(99))


class TestGossip:
    def test_round_spreads_values(self):
        nodes = make_nodes(4)
        nodes[0].process(flows.insert(mem(0), NET, tick=0))
        gossip = PollutionGossip(nodes, fanout=3, seed=1)
        gossip.round()
        # with fanout 3 of 3 possible peers, everyone heard node 0
        for node in nodes[1:]:
            assert node.peer_pollution.get(0) == 1.0

    def test_broadcast_exact(self):
        nodes = make_nodes(3)
        for i, node in enumerate(nodes):
            for j in range(i + 1):
                node.process(flows.insert(mem(j), NET, tick=j))
        gossip = PollutionGossip(nodes, seed=0)
        gossip.broadcast()
        truth = gossip.true_global_pollution()
        for node in nodes:
            assert node.believed_pollution() == truth

    def test_errors_shrink_after_broadcast(self):
        nodes = make_nodes(3)
        nodes[0].process(flows.insert(mem(0), NET, tick=0))
        gossip = PollutionGossip(nodes, seed=0)
        before = gossip.max_error()
        gossip.broadcast()
        after = gossip.max_error()
        assert after <= before

    def test_message_counting(self):
        nodes = make_nodes(4)
        gossip = PollutionGossip(nodes, fanout=2, seed=0)
        gossip.round()
        assert gossip.state.messages_sent == 8
        assert gossip.state.rounds == 1

    def test_single_node_cluster(self):
        gossip = PollutionGossip(make_nodes(1), fanout=2, seed=0)
        gossip.round()  # no peers: no messages, no crash
        assert gossip.state.messages_sent == 0

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            PollutionGossip(make_nodes(2), fanout=0)


class TestCluster:
    def recording(self, n: int = 40) -> Recording:
        events = []
        for i in range(n):
            events.append(flows.insert(mem(i), Tag("netflow", 1 + i % 3), tick=2 * i))
            events.append(flows.address_dep(mem(i), mem(100 + i), tick=2 * i + 1))
        return Recording(events=events)

    def test_routing_is_deterministic_and_total(self):
        cluster = Cluster(params(), n_nodes=3, seed=0)
        recording = self.recording()
        first = [cluster.route(e).node_id for e in recording]
        second = [cluster.route(e).node_id for e in recording]
        assert first == second

    def test_run_processes_every_event(self):
        result = run_sharded(self.recording(), params(), n_nodes=3, gossip_interval=10)
        assert sum(result.per_node_events.values()) == result.events

    def test_oracle_agreement_bounds(self):
        result = run_sharded(self.recording(), params(), n_nodes=3, gossip_interval=10)
        assert 0.0 <= result.oracle_agreement <= 1.0

    def test_frequent_gossip_not_worse(self):
        recording = self.recording(80)
        frequent = run_sharded(recording, params(), n_nodes=4, gossip_interval=5)
        rare = run_sharded(recording, params(), n_nodes=4, gossip_interval=1000)
        assert frequent.mean_estimate_error <= rare.mean_estimate_error + 1e-9
        assert frequent.gossip_messages >= rare.gossip_messages

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Cluster(params(), n_nodes=0)
        with pytest.raises(ValueError):
            Cluster(params(), gossip_interval=0)

    def test_single_node_matches_oracle(self):
        result = run_sharded(
            self.recording(), params(), n_nodes=1, gossip_interval=10
        )
        assert result.oracle_agreement == 1.0


class TestHeterogeneousCluster:
    """Per-subsystem security needs: each node gets its own MITOS inputs."""

    def recording(self, n: int = 60) -> Recording:
        events = []
        tag = Tag("netflow", 1)
        for i in range(n):
            events.append(flows.insert(mem(i), tag, tick=3 * i))
            events.append(flows.insert(mem(1000 + i), tag, tick=3 * i + 1))
            events.append(
                flows.address_dep(mem(i), mem(2000 + i), tick=3 * i + 2)
            )
        return Recording(events=events)

    def test_node_params_validated(self):
        with pytest.raises(ValueError, match="node_params"):
            Cluster(params(), n_nodes=3, node_params=[params()])

    def test_heterogeneous_nodes_keep_own_params(self):
        strict = params(tau=10.0, tau_scale=1e6)
        lax = params(tau=0.0)
        cluster = Cluster(
            params(), n_nodes=2, node_params=[strict, lax], seed=0
        )
        assert cluster.nodes[0].params.tau == 10.0
        assert cluster.nodes[1].params.tau == 0.0

    def test_strict_node_blocks_lax_node_propagates(self):
        strict = params(tau=10.0, tau_scale=1e9)
        lax = params(tau=0.0)
        cluster = Cluster(
            params(), n_nodes=2, node_params=[strict, lax],
            gossip_interval=5, seed=0,
        )
        result = cluster.run(self.recording())
        # nodes disagree on policy but each agrees with its own oracle
        assert result.oracle_agreement == 1.0
        strict_stats = cluster.nodes[0].tracker.stats
        lax_stats = cluster.nodes[1].tracker.stats
        if strict_stats.ifp_candidates and lax_stats.ifp_candidates:
            assert (
                strict_stats.ifp_propagation_rate
                <= lax_stats.ifp_propagation_rate
            )


class TestGossipRobustness:
    """Message-loss and retry knobs on PollutionGossip."""

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            PollutionGossip(make_nodes(2), loss_rate=1.5)
        with pytest.raises(ValueError):
            PollutionGossip(make_nodes(2), loss_rate=-0.1)
        with pytest.raises(ValueError):
            PollutionGossip(make_nodes(2), max_retries=-1)

    def test_total_loss_delivers_nothing(self):
        nodes = make_nodes(4)
        nodes[0].process(flows.insert(mem(0), NET, tick=0))
        gossip = PollutionGossip(nodes, fanout=3, seed=1, loss_rate=1.0)
        gossip.round()
        for node in nodes:
            assert not node.peer_pollution
        assert gossip.state.messages_lost == gossip.state.messages_sent == 12

    def test_retries_count_as_sent_messages(self):
        nodes = make_nodes(4)
        gossip = PollutionGossip(
            nodes, fanout=2, seed=0, loss_rate=1.0, max_retries=2
        )
        gossip.round()
        # 8 sends, each attempted 1 + 2 times, all lost
        assert gossip.state.messages_sent == 24
        assert gossip.state.messages_lost == 24
        assert gossip.state.messages_retried == 16

    def test_retries_recover_lost_messages(self):
        nodes = make_nodes(4)
        nodes[0].process(flows.insert(mem(0), NET, tick=0))
        lossy = PollutionGossip(nodes, fanout=3, seed=7, loss_rate=0.5)
        for _ in range(5):
            lossy.round()
        heard_without = sum(
            1 for n in nodes[1:] if 0 in n.peer_pollution
        )

        fresh = make_nodes(4)
        fresh[0].process(flows.insert(mem(0), NET, tick=0))
        retrying = PollutionGossip(
            fresh, fanout=3, seed=7, loss_rate=0.5, max_retries=3
        )
        for _ in range(5):
            retrying.round()
        heard_with = sum(
            1 for n in fresh[1:] if 0 in n.peer_pollution
        )
        assert retrying.state.messages_retried > 0
        assert heard_with >= heard_without

    def test_lossless_config_byte_identical_to_default(self):
        """loss_rate=0 must not perturb the seeded peer-selection stream."""
        plain_nodes = make_nodes(4)
        knob_nodes = make_nodes(4)
        for nodes in (plain_nodes, knob_nodes):
            nodes[0].process(flows.insert(mem(0), NET, tick=0))
        plain = PollutionGossip(plain_nodes, fanout=2, seed=3)
        knobbed = PollutionGossip(
            knob_nodes, fanout=2, seed=3, loss_rate=0.0, max_retries=5
        )
        for _ in range(3):
            plain.round()
            knobbed.round()
        assert knobbed.state.messages_sent == plain.state.messages_sent
        assert knobbed.state.messages_lost == 0
        for a, b in zip(plain_nodes, knob_nodes):
            assert a.peer_pollution == b.peer_pollution

    def test_injector_drives_losses_deterministically(self):
        from repro.faults import FaultConfig, FaultInjector

        def run(seed):
            nodes = make_nodes(4)
            nodes[0].process(flows.insert(mem(0), NET, tick=0))
            injector = FaultInjector(
                FaultConfig(seed=seed, message_loss_rate=0.5)
            )
            gossip = PollutionGossip(nodes, fanout=2, seed=0, injector=injector)
            for _ in range(4):
                gossip.round()
            return gossip.state.messages_lost, injector.stats.messages_lost

        lost_a, stat_a = run(seed=5)
        lost_b, stat_b = run(seed=5)
        assert lost_a == lost_b > 0
        assert stat_a == lost_a  # injector stats agree with gossip stats


class TestNodeRestart:
    def test_restart_loses_state_and_counts(self):
        node = SubsystemNode(0, params())
        node.process(flows.insert(mem(0), NET, tick=0))
        node.receive_gossip(1, 5.0)
        assert node.believed_pollution() == 6.0
        node.restart()
        assert node.restarts == 1
        assert node.local_pollution() == 0.0
        assert node.peer_pollution == {}
        assert node.believed_pollution() == 0.0
        # the node keeps working after the restart
        node.process(flows.insert(mem(1), NET, tick=1))
        assert node.local_pollution() == 1.0

    def test_restart_rebinds_policy_to_belief(self):
        """tracker.reset() rebinds MitosPolicy to the tracker's own counter;
        restart() must restore the node-level belief as pollution source."""
        node = SubsystemNode(0, params())
        node.restart()
        node.receive_gossip(1, 7.0)
        assert node.policy.engine._pollution_source() == node.believed_pollution()

    def test_cluster_crash_injection_restarts_nodes(self):
        from repro.faults import FaultConfig, FaultInjector

        events = []
        for i in range(60):
            events.append(
                flows.insert(mem(i), Tag("netflow", 1 + i % 3), tick=2 * i)
            )
            events.append(flows.address_dep(mem(i), mem(100 + i), tick=2 * i + 1))
        recording = Recording(events=events)
        injector = FaultInjector(FaultConfig(seed=2, node_crash_rate=0.1))
        result = run_sharded(
            recording, params(), n_nodes=3, gossip_interval=10,
            seed=0, injector=injector,
        )
        assert result.node_restarts > 0
        assert result.node_restarts == injector.stats.node_crashes
        # every event still gets processed despite the crashes
        assert sum(result.per_node_events.values()) == result.events


class TestLossDegradation:
    """Oracle agreement must degrade gracefully, not catastrophically,
    as gossip loss starves nodes of the global pollution signal."""

    N_NODES = 2

    @staticmethod
    def node_of(addr: int) -> int:
        import zlib

        return zlib.crc32(repr(("mem", addr)).encode()) % 2

    @classmethod
    def addrs_for(cls, node: int, count: int):
        out, addr = [], 0
        while len(out) < count:
            if cls.node_of(addr) == node:
                out.append(addr)
            addr += 1
        return out

    @classmethod
    def recording(cls) -> Recording:
        """Node 0 holds near-boundary tags and makes IFP decisions; node 1
        holds the bulk of the (growing) pollution.  Node 0's decisions are
        only as good as its gossip-fed belief about node 1."""
        events = []
        tick = 0
        probe = iter(cls.addrs_for(0, 2000))
        ramp = iter(cls.addrs_for(1, 4000))
        tag_src = {}
        for t in range(10):  # probe tags with copies 1, 4, ..., 28
            tag = Tag("netflow", 1 + t)
            src = next(probe)
            tag_src[t] = src
            events.append(flows.insert(mem(src), tag, tick=tick))
            tick += 1
            for _ in range(3 * t):
                events.append(flows.copy(mem(src), mem(next(probe)), tick=tick))
                tick += 1
        for step in range(60):  # pollution ramp on node 1, probes on node 0
            for _ in range(40):
                events.append(
                    flows.insert(mem(next(ramp)), Tag("file", 1 + step), tick=tick)
                )
                tick += 1
            for t in range(10):
                events.append(
                    flows.address_dep(mem(tag_src[t]), mem(next(probe)), tick=tick)
                )
                tick += 1
        return Recording(events=events)

    def test_agreement_degrades_monotonically_with_loss(self):
        from repro.workloads.calibration import benchmark_params

        mitos_params = benchmark_params(
            crossover_copies=12.0, pollution_fraction=0.002
        )
        recording = self.recording()
        agreements = []
        losses = []
        for loss_rate in (0.0, 0.3, 0.6, 0.9):
            result = run_sharded(
                recording, mitos_params, n_nodes=self.N_NODES,
                gossip_interval=20, seed=1, loss_rate=loss_rate,
            )
            agreements.append(result.oracle_agreement)
            losses.append(result.messages_lost)
        # losing messages costs agreement: heavier loss is never better
        for earlier, later in zip(agreements, agreements[1:]):
            assert later <= earlier + 1e-9
        # ...but the fall is graceful, not a cliff
        assert agreements[-1] >= 0.9
        assert agreements[0] > agreements[-1]
        # and the loss counter tracks the knob
        assert losses[0] == 0
        assert all(a < b for a, b in zip(losses, losses[1:]))
