"""MarginalCache: bit-equality with the uncached Eq. 8 reference.

The memo tables must be *exactly* transparent: every cached submarginal,
every decision, and every reported marginal must be bit-equal to the
uncached :mod:`repro.core.costs` path, across the alpha edge cases
(``alpha == 1`` log-limit, ``copies == 0`` -> ``-inf``) and degenerate
betas.  Anything weaker would let ``use_cache`` change experiment output.
"""

import math
import random

import pytest

from repro.core.costs import over_marginal, under_marginal
from repro.core.decision import (
    MarginalCache,
    MitosEngine,
    TagCandidate,
    decide_multi,
    decide_single,
)
from repro.core.params import MitosParams

ALPHAS = (0.5, 1.0, 2.0)
BETAS = (1.0, 2.0, 6.0)

#: non-trivial per-type weights so u_of / o_of lookups are exercised
WEIGHTS = dict(u={"netflow": 4.0}, o={"netflow": 2.5})


def make_params(alpha: float, beta: float, **kw) -> MitosParams:
    defaults = dict(
        alpha=alpha, beta=beta, R=1 << 20, M_prov=10, tau_scale=1.0, **WEIGHTS
    )
    defaults.update(kw)
    return MitosParams(**defaults)


def param_grid():
    return [make_params(alpha, beta) for alpha in ALPHAS for beta in BETAS]


class TestSubmarginalEquality:
    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("beta", BETAS)
    def test_under_bit_equal_including_zero_copies(self, alpha, beta):
        params = make_params(alpha, beta)
        cache = MarginalCache(params)
        for tag_type in ("netflow", "file", "process"):
            for copies in (0, 1, 2, 3, 7, 100, 12345):
                expected = under_marginal(copies, tag_type, params)
                got = cache.under(copies, tag_type)
                if math.isinf(expected):
                    assert copies == 0
                    assert got == -math.inf
                else:
                    assert got == expected  # bit-equal, not approx
                # second hit serves the memo, still identical
                assert cache.under(copies, tag_type) == got

    @pytest.mark.parametrize("alpha", ALPHAS)
    @pytest.mark.parametrize("beta", BETAS)
    def test_over_bit_equal(self, alpha, beta):
        params = make_params(alpha, beta)
        cache = MarginalCache(params)
        for pollution in (0.0, 1.0, 2.5, 1e3, 1e6, 123456.789):
            expected = over_marginal(pollution, params)
            assert cache.over(pollution) == expected
            assert cache.over(pollution) == expected

    def test_alpha_one_is_the_log_limit(self):
        # alpha == 1: under cost is the -log limit; the marginal is still
        # -u_T * n**-1, which the cache must reproduce exactly
        params = make_params(1.0, 2.0)
        cache = MarginalCache(params)
        for copies in (1, 10, 1000):
            assert cache.under(copies, "file") == -1.0 / copies


class TestDecisionEquality:
    @pytest.mark.parametrize("params", param_grid(), ids=str)
    def test_decide_single_identical(self, params):
        cache = MarginalCache(params)
        rng = random.Random(7)
        for _ in range(200):
            candidate = TagCandidate(
                key=("netflow", rng.randrange(5)),
                tag_type=rng.choice(["netflow", "file"]),
                copies=rng.randrange(0, 50),
            )
            pollution = rng.choice([0.0, 1.0, 513.0, 9999.5])
            cached = decide_single(candidate, pollution, params, cache=cache)
            plain = decide_single(candidate, pollution, params)
            assert cached == plain

    @pytest.mark.parametrize("params", param_grid(), ids=str)
    def test_decide_multi_identical_including_order(self, params):
        cache = MarginalCache(params)
        rng = random.Random(11)
        for _ in range(100):
            candidates = [
                TagCandidate(
                    key=("t", i),
                    tag_type=rng.choice(["netflow", "file", "process"]),
                    copies=rng.randrange(0, 30),
                )
                for i in range(rng.randrange(0, 8))
            ]
            free_slots = rng.randrange(0, 6)
            pollution = rng.choice([0.0, 10.0, 4096.0])
            cached = decide_multi(
                candidates, free_slots, pollution, params, cache=cache
            )
            plain = decide_multi(candidates, free_slots, pollution, params)
            # same decisions, same candidate order, same reported marginals
            assert cached.decisions == plain.decisions
            assert cached.propagated == plain.propagated

    def test_float_tie_ordering_preserved(self):
        # two candidates with equal copies and types produce equal marginal
        # keys; the ranking must stay the stable-sort order either way
        params = make_params(1.5, 2.0)
        cache = MarginalCache(params)
        candidates = [
            TagCandidate(key=("file", i), tag_type="file", copies=5)
            for i in range(6)
        ]
        cached = decide_multi(candidates, 3, 100.0, params, cache=cache)
        plain = decide_multi(candidates, 3, 100.0, params)
        assert [d.candidate.key for d in cached.decisions] == [
            d.candidate.key for d in plain.decisions
        ]


class TestCacheLifecycle:
    def test_cache_ignored_when_bound_to_other_params(self):
        params_a = make_params(1.5, 2.0)
        params_b = make_params(2.0, 2.0)
        cache = MarginalCache(params_a)
        candidate = TagCandidate(key=("file", 1), tag_type="file", copies=3)
        # a cache bound to different params must not be consulted
        decision = decide_single(candidate, 10.0, params_b, cache=cache)
        assert decision == decide_single(candidate, 10.0, params_b)
        assert not cache._under  # nothing was cached against params_b

    def test_engine_rebinds_cache_on_params_swap(self):
        engine = MitosEngine(make_params(1.5, 2.0))
        first = engine.marginal_cache
        assert first is not None and first.params is engine.params
        first.under(3, "file")
        engine.params = make_params(2.0, 2.0)
        second = engine.marginal_cache
        assert second is not first
        assert second.params is engine.params
        assert not second._under  # stale entries cannot leak

    def test_engine_without_cache_has_none(self):
        engine = MitosEngine(make_params(1.5, 2.0), use_cache=False)
        assert engine.marginal_cache is None

    def test_overflow_clears_not_grows(self):
        params = make_params(1.5, 2.0)
        cache = MarginalCache(params, max_entries=4)
        for copies in range(10):
            cache.under(copies, "file")
            assert len(cache._under) <= 4
        for i in range(10):
            cache.over(float(i))
            assert len(cache._over) <= 4
        # values stay correct across clears
        assert cache.under(3, "file") == under_marginal(3, "file", params)

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            MarginalCache(make_params(1.5, 2.0), max_entries=0)
