"""Tests for repro.core.decision (Algorithms 1 and 2)."""

import math

import pytest

from repro.core.decision import (
    MitosEngine,
    TagCandidate,
    decide_multi,
    decide_single,
)
from repro.core.params import MitosParams


def params(**kwargs) -> MitosParams:
    defaults = dict(R=10_000, M_prov=10, tau_scale=1.0)
    defaults.update(kwargs)
    return MitosParams(**defaults)


def cand(name: str, copies: int, tag_type: str = "netflow") -> TagCandidate:
    return TagCandidate(key=name, tag_type=tag_type, copies=copies)


class TestAlgorithm1:
    def test_propagates_when_undertainting_dominates(self):
        # few copies, negligible pollution -> negative marginal -> propagate
        decision = decide_single(cand("a", 1), pollution=0.0, params=params())
        assert decision.propagate
        assert decision.marginal <= 0

    def test_blocks_when_overtainting_dominates(self):
        p = params(tau=1.0, tau_scale=1e9)
        decision = decide_single(cand("a", 1000), pollution=50_000.0, params=p)
        assert not decision.propagate
        assert decision.marginal > 0

    def test_tau_zero_always_propagates(self):
        p = params(tau=0.0)
        for copies in (1, 10, 10_000):
            decision = decide_single(cand("a", copies), 10**9, p)
            assert decision.propagate

    def test_zero_copies_always_propagates(self):
        # first copy has -inf undertainting marginal
        p = params(tau=1.0, tau_scale=1e12)
        decision = decide_single(cand("a", 0), pollution=10**6, params=p)
        assert decision.propagate
        assert decision.marginal == -math.inf

    def test_submarginal_breakdown_sums_to_marginal(self):
        decision = decide_single(cand("a", 5), pollution=100.0, params=params())
        assert decision.marginal == pytest.approx(
            decision.under_marginal + decision.over_marginal
        )

    def test_boundary_zero_marginal_propagates(self):
        # Lemma 2: propagate iff marginal <= 0 (inclusive)
        p = params(alpha=1.0, beta=2.0, tau=1.0, tau_scale=1.0)
        # under = -1/n; over = 2*P/N_R; choose P so they cancel at n=2
        pollution = p.N_R / 4.0  # over = 2*(P/N_R) = 0.5 = 1/2 = -under(n=2)
        decision = decide_single(cand("a", 2), pollution, p)
        assert decision.marginal == pytest.approx(0.0, abs=1e-12)
        assert decision.propagate


class TestAlgorithm2:
    def test_never_exceeds_free_slots(self):
        candidates = [cand(str(i), 1) for i in range(10)]
        outcome = decide_multi(candidates, free_slots=3, pollution=0.0, params=params())
        assert outcome.propagated_count == 3

    def test_zero_free_slots_propagates_nothing(self):
        outcome = decide_multi([cand("a", 1)], 0, 0.0, params())
        assert outcome.propagated_count == 0
        assert len(outcome.blocked) == 1

    def test_empty_candidates(self):
        outcome = decide_multi([], 5, 0.0, params())
        assert outcome.propagated_count == 0
        assert outcome.decisions == []

    def test_prefers_lowest_marginal_cost(self):
        # rarer tags have lower (more negative) marginal -> chosen first
        candidates = [cand("common", 1000), cand("rare", 1), cand("mid", 30)]
        outcome = decide_multi(candidates, 1, 0.0, params())
        assert [c.key for c in outcome.propagated] == ["rare"]

    def test_decisions_sorted_by_marginal(self):
        candidates = [cand("a", 100), cand("b", 1), cand("c", 10)]
        outcome = decide_multi(candidates, 3, 0.0, params())
        marginals = [d.marginal for d in outcome.decisions]
        # ties aside, the visit order is ascending *initial* marginal; with
        # zero pollution growth dominated by copies this stays sorted
        assert [d.candidate.key for d in outcome.decisions] == ["b", "c", "a"]
        assert marginals == sorted(marginals)

    def test_pollution_recalculated_between_propagations(self):
        # Make the pollution penalty grow so fast that after the first
        # propagation the second candidate's marginal flips positive.
        p = params(alpha=2.0, beta=2.0, tau=1.0, tau_scale=1.0, R=10)
        # N_R = 100. under(n=2) = -1/4. over(P) = 2*P/100 = P/50.
        # At P=12: over=0.24 < 0.25 -> first propagates; P becomes 13:
        # over=0.26 > 0.25 -> second (equal copies) blocks.
        candidates = [cand("x", 2), cand("y", 2)]
        outcome = decide_multi(candidates, 2, pollution=12.0, params=p)
        assert outcome.propagated_count == 1
        blocked = outcome.blocked[0]
        assert blocked.copies == 2

    def test_stops_at_first_positive_marginal_even_with_slots(self):
        p = params(tau=1.0, tau_scale=1e9)
        candidates = [cand("a", 10_000), cand("b", 10_000)]
        outcome = decide_multi(candidates, 5, pollution=10_000.0, params=p)
        assert outcome.propagated_count == 0

    def test_negative_free_slots_rejected(self):
        with pytest.raises(ValueError):
            decide_multi([cand("a", 1)], -1, 0.0, params())

    def test_pollution_growth_uses_o_weight(self):
        # o weight of the propagated type controls the pollution bump
        p = params(
            alpha=2.0, beta=2.0, tau=1.0, tau_scale=1.0, R=10,
            o={"heavy": 30.0},
        )
        # N_R=100; under(n=2)=-0.25; start P=11 -> over=0.22: heavy tag
        # propagates; P jumps to 41 -> over=0.82: next blocks decisively.
        candidates = [cand("h1", 2, "heavy"), cand("h2", 2, "heavy")]
        outcome = decide_multi(candidates, 2, pollution=11.0, params=p)
        assert outcome.propagated_count == 1


class TestMitosEngine:
    def test_engine_uses_pollution_source(self):
        pollution = {"value": 0.0}
        p = params(tau=1.0, tau_scale=1e9)
        engine = MitosEngine(p, pollution_source=lambda: pollution["value"])
        assert engine.decide(cand("a", 1)).propagate
        pollution["value"] = 10_000.0
        assert not engine.decide(cand("a", 1000)).propagate

    def test_engine_stats_track_decisions(self):
        engine = MitosEngine(params())
        engine.choose([cand("a", 1), cand("b", 1)], free_slots=1)
        assert engine.stats.considered == 2
        assert engine.stats.propagated == 1
        assert engine.stats.blocked == 1
        assert engine.stats.propagation_rate == pytest.approx(0.5)

    def test_propagation_rate_empty(self):
        engine = MitosEngine(params())
        assert engine.stats.propagation_rate == 0.0

    def test_decision_log_capacity(self):
        engine = MitosEngine(params(), log_decisions=True, log_capacity=3)
        for i in range(10):
            engine.decide(cand(str(i), 1))
        assert len(engine.decision_log) == 3

    def test_log_disabled_by_default(self):
        engine = MitosEngine(params())
        engine.decide(cand("a", 1))
        assert engine.decision_log == []


class TestTagCandidate:
    def test_negative_copies_rejected(self):
        with pytest.raises(ValueError):
            TagCandidate(key="a", tag_type="netflow", copies=-1)
