"""Tests for repro.core.params."""

import pytest

from repro.core.params import (
    DEFAULT_WEIGHT,
    PAPER_ALPHA,
    PAPER_BETA,
    PAPER_TAU,
    MitosParams,
    paper_defaults,
)


class TestConstruction:
    def test_defaults_match_paper(self):
        params = MitosParams()
        assert params.alpha == PAPER_ALPHA == 1.5
        assert params.beta == PAPER_BETA == 2.0
        assert params.tau == PAPER_TAU == 1.0
        assert params.M_prov == 10

    def test_n_r_is_r_times_m_prov(self):
        params = MitosParams(R=4_000, M_prov=10)
        assert params.N_R == 40_000

    def test_effective_tau_applies_scale(self):
        params = MitosParams(tau=0.5, tau_scale=100.0)
        assert params.effective_tau == 50.0

    def test_paper_defaults_factory(self):
        params = paper_defaults(R=1234, M_prov=7)
        assert params.R == 1234
        assert params.M_prov == 7
        assert params.alpha == 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"beta": 0.5},
            {"tau": -0.1},
            {"tau_scale": 0.0},
            {"R": 0},
            {"M_prov": 0},
            {"u": {"netflow": -1.0}},
            {"o": {"file": -2.0}},
        ],
    )
    def test_invalid_inputs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MitosParams(**kwargs)


class TestWeights:
    def test_missing_type_uses_default_weight(self):
        params = MitosParams(u={"netflow": 3.0})
        assert params.u_of("netflow") == 3.0
        assert params.u_of("file") == DEFAULT_WEIGHT
        assert params.o_of("anything") == DEFAULT_WEIGHT

    def test_zero_weight_is_allowed(self):
        params = MitosParams(u={"noise": 0.0})
        assert params.u_of("noise") == 0.0


class TestWithUpdates:
    def test_with_updates_returns_new_instance(self):
        base = MitosParams()
        swept = base.with_updates(tau=0.01)
        assert swept.tau == 0.01
        assert base.tau == 1.0
        assert swept.alpha == base.alpha

    def test_with_updates_validates(self):
        with pytest.raises(ValueError):
            MitosParams().with_updates(alpha=-2.0)

    def test_frozen(self):
        params = MitosParams()
        with pytest.raises(AttributeError):
            params.alpha = 3.0  # type: ignore[misc]
