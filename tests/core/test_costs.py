"""Tests for repro.core.costs (Eq. 2-5 and Eq. 8)."""

import math

import pytest

from repro.core.costs import (
    cost_series,
    finite_difference,
    gradient,
    marginal_cost,
    over_cost,
    over_cost_from_pollution,
    over_cost_series,
    over_marginal,
    pollution,
    total_cost,
    under_cost,
    under_cost_term,
    under_marginal,
)
from repro.core.params import MitosParams


def params(**kwargs) -> MitosParams:
    defaults = dict(R=1_000, M_prov=10)
    defaults.update(kwargs)
    return MitosParams(**defaults)


class TestUnderCostTerm:
    def test_alpha_2_closed_form(self):
        # n^(1-2)/(2-1) = 1/n
        assert under_cost_term(4.0, alpha=2.0) == pytest.approx(0.25)

    def test_alpha_half_closed_form(self):
        # n^0.5 / (-0.5) = -2 sqrt(n)
        assert under_cost_term(9.0, alpha=0.5) == pytest.approx(-6.0)

    def test_alpha_1_is_log_limit(self):
        assert under_cost_term(math.e, alpha=1.0) == pytest.approx(-1.0)

    def test_alpha_near_1_approaches_log_up_to_constant(self):
        # the alpha->1 limit equals -log(n) + 1/(alpha-1); differences of
        # the term at two points must converge to the log difference
        for alpha in (1.0001, 0.9999):
            diff = under_cost_term(8.0, alpha) - under_cost_term(2.0, alpha)
            assert diff == pytest.approx(-math.log(4.0), rel=1e-3)

    def test_zero_copies_alpha_above_1_is_infinite(self):
        assert under_cost_term(0.0, alpha=1.5) == math.inf

    def test_zero_copies_alpha_below_1_is_zero(self):
        assert under_cost_term(0.0, alpha=0.5) == 0.0

    def test_monotonically_decreasing_in_copies(self):
        for alpha in (0.5, 1.0, 1.5, 2.0, 4.0):
            values = [under_cost_term(n, alpha) for n in (1, 2, 5, 10, 100)]
            assert values == sorted(values, reverse=True)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            under_cost_term(1.0, alpha=0.0)
        with pytest.raises(ValueError):
            under_cost_term(-1.0, alpha=2.0)


class TestVectorCosts:
    def test_under_cost_sums_weighted_terms(self):
        p = params(alpha=2.0, u={"netflow": 2.0})
        n = {("netflow", 1): 4.0, ("file", 1): 2.0}
        expected = 2.0 * 0.25 + 1.0 * 0.5
        assert under_cost(n, p) == pytest.approx(expected)

    def test_pollution_weighted(self):
        p = params(o={"netflow": 3.0})
        n = {("netflow", 1): 2.0, ("file", 1): 5.0}
        assert pollution(n, p) == pytest.approx(3.0 * 2.0 + 5.0)

    def test_over_cost_matches_pollution_form(self):
        p = params(beta=2.0)
        n = {("netflow", 1): 10.0}
        assert over_cost(n, p) == pytest.approx(
            over_cost_from_pollution(10.0, p)
        )
        assert over_cost(n, p) == pytest.approx((10.0 / p.N_R) ** 2)

    def test_total_cost_combines_with_effective_tau(self):
        p = params(tau=2.0, tau_scale=10.0)
        n = {("netflow", 1): 5.0}
        assert total_cost(n, p) == pytest.approx(
            under_cost(n, p) + 20.0 * over_cost(n, p)
        )

    def test_tau_zero_disables_overtainting(self):
        p = params(tau=0.0)
        n = {("netflow", 1): 5.0}
        assert total_cost(n, p) == pytest.approx(under_cost(n, p))

    def test_negative_pollution_rejected(self):
        with pytest.raises(ValueError):
            over_cost_from_pollution(-1.0, params())


class TestMarginals:
    def test_under_marginal_sign_and_magnitude(self):
        p = params(alpha=2.0, u={"netflow": 3.0})
        assert under_marginal(2.0, "netflow", p) == pytest.approx(-3.0 / 4.0)

    def test_under_marginal_zero_copies_is_minus_inf(self):
        assert under_marginal(0.0, "netflow", params()) == -math.inf

    def test_over_marginal_published_form(self):
        p = params(beta=2.0, tau=1.0, tau_scale=1.0)
        # tau_eff * beta * (P/N_R)^(beta-1) = 1 * 2 * (100/10000)
        assert over_marginal(100.0, p) == pytest.approx(0.02)

    def test_over_marginal_exact_includes_o_over_nr(self):
        p = params(beta=2.0, tau=1.0, tau_scale=1.0, o={"file": 5.0})
        published = over_marginal(100.0, p, tag_type="file")
        exact = over_marginal(100.0, p, tag_type="file", exact=True)
        assert exact == pytest.approx(published * 5.0 / p.N_R)

    def test_marginal_is_sum_of_submarginals(self):
        p = params()
        expected = under_marginal(3.0, "netflow", p) + over_marginal(
            50.0, p, tag_type="netflow"
        )
        assert marginal_cost(3.0, 50.0, "netflow", p) == pytest.approx(expected)


class TestGradientConsistency:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 1.5, 2.0, 3.0])
    @pytest.mark.parametrize("beta", [2.0, 3.0])
    def test_exact_gradient_matches_finite_difference(self, alpha, beta):
        p = params(alpha=alpha, beta=beta, u={"netflow": 2.0}, o={"file": 1.5})
        n = {("netflow", 1): 7.0, ("file", 1): 3.0, ("file", 2): 12.0}
        grad = gradient(n, p, exact=True)
        for key in n:
            fd = finite_difference(n, key, p, step=1e-4)
            assert grad[key] == pytest.approx(fd, rel=1e-4, abs=1e-9)

    def test_published_gradient_differs_from_exact(self):
        p = params()
        n = {("netflow", 1): 7.0}
        published = gradient(n, p, exact=False)[("netflow", 1)]
        exact = gradient(n, p, exact=True)[("netflow", 1)]
        assert published != pytest.approx(exact)


class TestSeries:
    def test_cost_series_shapes(self):
        grid = [1.0, 2.0, 4.0, 8.0]
        series = cost_series(grid, alpha=1.5)
        assert len(series) == len(grid)
        assert series == sorted(series, reverse=True)

    def test_over_cost_series_convex_increasing(self):
        fractions = [0.0, 0.25, 0.5, 0.75, 1.0]
        series = over_cost_series(fractions, beta=2.0)
        assert series == sorted(series)
        # convexity: midpoint below chord
        assert series[2] <= (series[0] + series[4]) / 2

    def test_over_cost_series_rejects_negative(self):
        with pytest.raises(ValueError):
            over_cost_series([-0.1], beta=2.0)
