"""Tests for repro.core.policy."""

import pytest

from repro.core.decision import TagCandidate
from repro.core.params import MitosParams
from repro.core.policy import (
    MitosPolicy,
    PropagateAllPolicy,
    PropagateNonePolicy,
    RandomPolicy,
    ThresholdPolicy,
)


def cands(*copies: int) -> list:
    return [
        TagCandidate(key=f"t{i}", tag_type="netflow", copies=c)
        for i, c in enumerate(copies)
    ]


class TestPropagateAll:
    def test_takes_everything_within_space(self):
        policy = PropagateAllPolicy()
        candidates = cands(1, 5, 9)
        assert policy.select(candidates, 10) == candidates

    def test_bounded_by_free_slots(self):
        policy = PropagateAllPolicy()
        assert len(policy.select(cands(1, 2, 3, 4), 2)) == 2


class TestPropagateNone:
    def test_always_empty(self):
        policy = PropagateNonePolicy()
        assert policy.select(cands(1, 2, 3), 10) == []

    def test_details_are_none(self):
        selected, details = PropagateNonePolicy().select_with_details(cands(1), 5)
        assert selected == []
        assert details is None


class TestThreshold:
    def test_only_below_threshold(self):
        policy = ThresholdPolicy(max_copies=5)
        selected = policy.select(cands(1, 5, 10), 10)
        assert [c.copies for c in selected] == [1]

    def test_rarest_first_when_space_limited(self):
        policy = ThresholdPolicy(max_copies=100)
        selected = policy.select(cands(30, 2, 7), 2)
        assert [c.copies for c in selected] == [2, 7]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(max_copies=-1)


class TestRandom:
    def test_deterministic_given_seed(self):
        a = RandomPolicy(0.5, seed=42)
        b = RandomPolicy(0.5, seed=42)
        candidates = cands(*range(50))
        assert a.select(candidates, 50) == b.select(candidates, 50)

    def test_reset_rewinds_rng(self):
        policy = RandomPolicy(0.5, seed=7)
        candidates = cands(*range(30))
        first = policy.select(candidates, 30)
        policy.reset()
        assert policy.select(candidates, 30) == first

    def test_probability_extremes(self):
        candidates = cands(1, 2, 3)
        assert RandomPolicy(0.0).select(candidates, 3) == []
        assert RandomPolicy(1.0).select(candidates, 3) == candidates

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomPolicy(1.5)


class TestMitosPolicy:
    def params(self) -> MitosParams:
        return MitosParams(R=10_000, M_prov=10, tau_scale=1.0)

    def test_select_returns_propagated_subset(self):
        policy = MitosPolicy(self.params(), pollution_source=lambda: 0.0)
        candidates = cands(1, 1, 1)
        selected = policy.select(candidates, 2)
        assert len(selected) == 2
        assert all(c in candidates for c in selected)

    def test_details_expose_marginals(self):
        policy = MitosPolicy(self.params(), pollution_source=lambda: 0.0)
        selected, details = policy.select_with_details(cands(1, 100), 2)
        assert details is not None
        assert len(details.decisions) == 2
        assert details.propagated == selected

    def test_reset_clears_stats(self):
        policy = MitosPolicy(self.params(), pollution_source=lambda: 0.0)
        policy.select(cands(1), 1)
        assert policy.engine.stats.considered == 1
        policy.reset()
        assert policy.engine.stats.considered == 0

    def test_late_bound_pollution_source(self):
        p = self.params().with_updates(tau_scale=1e9)
        policy = MitosPolicy(p)
        policy.bind_pollution_source(lambda: 1e6)
        # huge pollution: everything with existing copies blocks
        assert policy.select(cands(1000), 1) == []

    def test_policy_names_unique(self):
        names = {
            MitosPolicy(self.params()).name,
            PropagateAllPolicy().name,
            PropagateNonePolicy().name,
            ThresholdPolicy(1).name,
            RandomPolicy().name,
        }
        assert len(names) == 5
