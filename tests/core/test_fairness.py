"""Tests for repro.core.fairness."""

import math

import pytest

from repro.core.fairness import (
    balancing_improvement,
    copy_count_mse,
    jain_index,
    max_min_ratio,
    normalized_entropy,
    shannon_entropy,
)


class TestMse:
    def test_balanced_is_zero(self):
        assert copy_count_mse([5, 5, 5, 5]) == 0.0

    def test_known_value(self):
        # mean 2, deviations (-1, 1) -> mse 1
        assert copy_count_mse([1, 3]) == pytest.approx(1.0)

    def test_empty(self):
        assert copy_count_mse([]) == 0.0

    def test_scales_quadratically(self):
        assert copy_count_mse([2, 6]) == pytest.approx(4 * copy_count_mse([1, 3]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            copy_count_mse([1, -2])


class TestJain:
    def test_balanced_is_one(self):
        assert jain_index([7, 7, 7]) == pytest.approx(1.0)

    def test_one_hot_is_one_over_k(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_bounds(self):
        values = [1, 5, 9, 2, 7]
        j = jain_index(values)
        assert 1 / len(values) <= j <= 1.0

    def test_all_zero(self):
        assert jain_index([0, 0]) == 1.0

    def test_empty(self):
        assert jain_index([]) == 1.0


class TestEntropy:
    def test_uniform_maximizes(self):
        assert shannon_entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_one_hot_is_zero(self):
        assert shannon_entropy([5, 0, 0]) == 0.0

    def test_fair_coin_beats_biased_coin(self):
        # the paper's information-theoretic motivation
        assert shannon_entropy([50, 50]) > shannon_entropy([90, 10])

    def test_normalized_in_unit_interval(self):
        assert 0 <= normalized_entropy([3, 9, 1]) <= 1

    def test_normalized_uniform_is_one(self):
        assert normalized_entropy([4, 4, 4]) == pytest.approx(1.0)

    def test_normalized_degenerate(self):
        assert normalized_entropy([7]) == 1.0
        assert normalized_entropy([]) == 1.0


class TestMaxMin:
    def test_balanced(self):
        assert max_min_ratio([3, 3]) == 1.0

    def test_known_value(self):
        assert max_min_ratio([2, 8]) == 4.0

    def test_zero_min_is_inf(self):
        assert max_min_ratio([0, 5]) == math.inf

    def test_all_zero(self):
        assert max_min_ratio([0, 0]) == 1.0


class TestBalancingImprovement:
    def test_improvement_ratio(self):
        base = [1, 9]  # mse 16
        better = [3, 7]  # mse 4
        assert balancing_improvement(base, better) == pytest.approx(4.0)

    def test_perfect_improvement_is_inf(self):
        assert balancing_improvement([1, 9], [5, 5]) == math.inf

    def test_no_change(self):
        assert balancing_improvement([5, 5], [6, 6]) == 1.0
