"""Tests for repro.core.solver: KKT vs SLSQP vs brute force vs greedy."""

import numpy as np
import pytest

from repro.core.costs import total_cost
from repro.core.params import MitosParams
from repro.core.solver import (
    greedy_dynamics,
    solve_integer_bruteforce,
    solve_kkt,
    solve_scipy,
)


def params(**kwargs) -> MitosParams:
    defaults = dict(R=1 << 20, M_prov=10)
    defaults.update(kwargs)
    return MitosParams(**defaults)


KEYS = [("netflow", 1), ("netflow", 2), ("file", 1)]


class TestKktSolver:
    def test_empty_instance(self):
        result = solve_kkt([], params())
        assert result.n == {}
        assert result.cost == 0.0

    def test_symmetric_instance_is_balanced(self):
        result = solve_kkt(KEYS, params())
        values = list(result.n.values())
        assert max(values) - min(values) < 1e-3 * max(values)

    def test_heavier_u_gets_more_copies(self):
        p = params(u={"netflow": 8.0})
        result = solve_kkt(KEYS, p)
        assert result.n[("netflow", 1)] > result.n[("file", 1)]

    def test_heavier_o_gets_fewer_copies(self):
        p = params(o={"netflow": 8.0})
        result = solve_kkt(KEYS, p)
        assert result.n[("netflow", 1)] < result.n[("file", 1)]

    def test_respects_per_tag_cap(self):
        p = params(R=50, M_prov=100, tau=1e-9)
        result = solve_kkt(KEYS, p)
        assert all(v <= 50 + 1e-9 for v in result.n.values())

    def test_respects_total_space(self):
        p = params(R=1000, M_prov=1, tau=1e-12, tau_scale=1.0)
        # with negligible overtainting each tag wants R copies; Eq. 6 binds
        result = solve_kkt(KEYS, p)
        assert sum(result.n.values()) <= p.N_R * (1 + 1e-6)

    def test_matches_scipy(self):
        p = params(u={"netflow": 2.0}, o={"file": 1.5})
        kkt = solve_kkt(KEYS, p)
        slsqp = solve_scipy(KEYS, p, x0=[kkt.n[k] * 0.5 for k in KEYS])
        assert slsqp.converged
        assert kkt.cost == pytest.approx(slsqp.cost, rel=1e-4)
        for key in KEYS:
            assert kkt.n[key] == pytest.approx(slsqp.n[key], rel=1e-2)

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 1.5, 3.0])
    def test_alpha_sweep_agrees_with_scipy_cost(self, alpha):
        p = params(alpha=alpha)
        kkt = solve_kkt(KEYS, p)
        slsqp = solve_scipy(KEYS, p, x0=[max(1.0, kkt.n[k]) for k in KEYS])
        assert kkt.cost == pytest.approx(slsqp.cost, rel=1e-3)


class TestBruteForce:
    def small_params(self) -> MitosParams:
        return params(R=30, M_prov=2, tau_scale=1.0, tau=1.0)

    def test_relaxed_optimum_near_integer_optimum(self):
        p = self.small_params()
        keys = [("netflow", 1), ("file", 1)]
        brute = solve_integer_bruteforce(keys, p, max_copies=30)
        relaxed = solve_kkt(keys, p)
        # rounding the relaxed solution must be near-optimal
        rounded = {k: round(v) for k, v in relaxed.n.items()}
        rounded_cost = total_cost({k: float(v) for k, v in rounded.items()}, p)
        assert rounded_cost <= brute.cost * 1.05 + 1e-9

    def test_brute_force_respects_space(self):
        p = params(R=4, M_prov=1, tau_scale=1.0)
        keys = [("a", 1), ("b", 1)]
        result = solve_integer_bruteforce(keys, p, max_copies=4)
        assert sum(result.n.values()) <= p.N_R

    def test_refuses_huge_instances(self):
        with pytest.raises(ValueError):
            solve_integer_bruteforce(
                [("t", i) for i in range(1, 9)], params(), max_copies=30
            )

    def test_infeasible_instance(self):
        p = params(R=1, M_prov=1, tau_scale=1.0)  # N_R = 1 < 2 tags
        with pytest.raises(ValueError):
            solve_integer_bruteforce([("a", 1), ("b", 1)], p, max_copies=1)


class TestGreedyDynamics:
    def test_converges_to_relaxed_optimum(self):
        p = params()
        final, _, converged = greedy_dynamics(KEYS, p, max_steps=50_000)
        assert converged
        relaxed = solve_kkt(KEYS, p)
        for key in KEYS:
            assert final[key] == pytest.approx(relaxed.n[key], abs=2.0)

    def test_greedy_cost_close_to_optimal(self):
        p = params(u={"netflow": 3.0})
        final, _, converged = greedy_dynamics(KEYS, p, max_steps=50_000)
        assert converged
        greedy_cost = total_cost({k: float(v) for k, v in final.items()}, p)
        optimal = solve_kkt(KEYS, p).cost
        assert greedy_cost <= optimal * 1.01 + 1e-9

    def test_snapshots_recorded(self):
        _, snapshots, _ = greedy_dynamics(
            KEYS, params(), max_steps=500, record_every=100
        )
        assert len(snapshots) == 5

    def test_max_steps_bound(self):
        final, _, converged = greedy_dynamics(KEYS, params(), max_steps=10)
        assert not converged
        assert sum(final.values()) == len(KEYS) + 10

    def test_published_rule_more_conservative_than_exact(self):
        # the published Eq. 8 (no /N_R damping) saturates far earlier
        p = params(tau_scale=1e6)
        exact_final, _, _ = greedy_dynamics(KEYS, p, max_steps=20_000, exact=True)
        published_final, _, _ = greedy_dynamics(
            KEYS, p, max_steps=20_000, exact=False
        )
        assert sum(published_final.values()) < sum(exact_final.values())


class TestSolverResult:
    def test_as_array_preserves_order(self):
        result = solve_kkt(KEYS, params())
        arr = result.as_array(KEYS)
        assert isinstance(arr, np.ndarray)
        assert list(arr) == [result.n[k] for k in KEYS]
