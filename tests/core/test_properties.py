"""Property-based tests (hypothesis) for the MITOS cost model and algorithms."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import (
    finite_difference,
    gradient,
    marginal_cost,
    over_cost_from_pollution,
    total_cost,
    under_cost_term,
)
from repro.core.decision import TagCandidate, decide_multi
from repro.core.params import MitosParams

alphas = st.sampled_from([0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0])
betas = st.sampled_from([2.0, 2.5, 3.0, 4.0])
copies = st.integers(min_value=1, max_value=10_000)


def make_params(alpha: float = 1.5, beta: float = 2.0, **kw) -> MitosParams:
    defaults = dict(alpha=alpha, beta=beta, R=1 << 20, M_prov=10, tau_scale=1.0)
    defaults.update(kw)
    return MitosParams(**defaults)


class TestUnderCostProperties:
    @given(alpha=alphas, a=copies, b=copies)
    def test_monotonically_decreasing(self, alpha, a, b):
        low, high = sorted((a, b))
        if low == high:
            return
        assert under_cost_term(high, alpha) <= under_cost_term(low, alpha)

    @given(alpha=alphas, n=copies)
    def test_convexity_on_integer_grid(self, alpha, n):
        # discrete convexity: f(n+1) - f(n) >= f(n) - f(n-1) would be for
        # convex f; under_cost_term is convex decreasing, so second
        # difference must be non-negative
        f = lambda x: under_cost_term(x, alpha)
        second_difference = f(n + 2) - 2 * f(n + 1) + f(n)
        assert second_difference >= -1e-12


class TestOverCostProperties:
    @given(beta=betas, a=st.floats(0, 1e6), b=st.floats(0, 1e6))
    def test_monotonically_increasing(self, beta, a, b):
        params = make_params(beta=beta)
        low, high = sorted((a, b))
        assert over_cost_from_pollution(low, params) <= over_cost_from_pollution(
            high, params
        )

    @given(beta=betas, p=st.floats(0, 1e6))
    def test_midpoint_convexity(self, beta, p):
        params = make_params(beta=beta)
        mid = over_cost_from_pollution(p / 2, params)
        chord = (
            over_cost_from_pollution(0.0, params)
            + over_cost_from_pollution(p, params)
        ) / 2
        assert mid <= chord + 1e-12


class TestMarginalProperties:
    @given(
        alpha=alphas,
        beta=betas,
        n1=st.integers(2, 500),
        n2=st.integers(2, 500),
        n3=st.integers(2, 500),
    )
    @settings(max_examples=50)
    def test_exact_gradient_matches_finite_difference(self, alpha, beta, n1, n2, n3):
        params = make_params(alpha=alpha, beta=beta)
        n = {("netflow", 1): float(n1), ("file", 1): float(n2), ("proc", 1): float(n3)}
        grad = gradient(n, params, exact=True)
        for key in n:
            fd = finite_difference(n, key, params, step=1e-4)
            assert math.isclose(grad[key], fd, rel_tol=1e-3, abs_tol=1e-8)

    @given(n=copies, p=st.floats(0, 1e7))
    def test_marginal_increasing_in_pollution(self, n, p):
        params = make_params()
        low = marginal_cost(n, p, "netflow", params)
        high = marginal_cost(n, p + 1000.0, "netflow", params)
        assert low <= high

    @given(a=copies, b=copies, p=st.floats(0, 1e7))
    def test_marginal_increasing_in_copies(self, a, b, p):
        params = make_params()
        low_copies, high_copies = sorted((a, b))
        assert marginal_cost(low_copies, p, "t", params) <= marginal_cost(
            high_copies, p, "t", params
        )


class TestAlgorithm2Properties:
    @given(
        copy_counts=st.lists(st.integers(0, 5_000), min_size=0, max_size=20),
        free_slots=st.integers(0, 15),
        pollution=st.floats(0, 1e7),
        alpha=alphas,
        beta=betas,
        tau=st.floats(0, 10),
    )
    @settings(max_examples=200)
    def test_invariants(self, copy_counts, free_slots, pollution, alpha, beta, tau):
        params = make_params(alpha=alpha, beta=beta, tau=tau)
        candidates = [
            TagCandidate(key=i, tag_type="netflow", copies=c)
            for i, c in enumerate(copy_counts)
        ]
        outcome = decide_multi(candidates, free_slots, pollution, params)
        # never exceeds the available space
        assert outcome.propagated_count <= free_slots
        # every candidate gets exactly one decision
        assert len(outcome.decisions) == len(candidates)
        # propagated + blocked partition the candidates
        keys = sorted(d.candidate.key for d in outcome.decisions)
        assert keys == sorted(c.key for c in candidates)
        # all propagated decisions carried non-positive marginals
        for decision in outcome.decisions:
            if decision.propagate:
                assert decision.marginal <= 0

    @given(
        copy_counts=st.lists(st.integers(1, 5_000), min_size=2, max_size=10),
        pollution=st.floats(0, 1e6),
    )
    @settings(max_examples=100)
    def test_propagated_set_is_min_marginal_prefix(self, copy_counts, pollution):
        """With one slot, the chosen tag has the (joint-)lowest copy count."""
        params = make_params()
        candidates = [
            TagCandidate(key=i, tag_type="netflow", copies=c)
            for i, c in enumerate(copy_counts)
        ]
        outcome = decide_multi(candidates, 1, pollution, params)
        if outcome.propagated_count == 1:
            chosen = outcome.propagated[0]
            assert chosen.copies == min(copy_counts)


class TestTotalCostProperties:
    @given(
        n1=st.integers(1, 1000),
        n2=st.integers(1, 1000),
        tau=st.floats(0.0, 100.0),
    )
    def test_cost_finite_and_real(self, n1, n2, tau):
        params = make_params(tau=tau)
        n = {("a", 1): float(n1), ("b", 1): float(n2)}
        cost = total_cost(n, params)
        assert math.isfinite(cost)
