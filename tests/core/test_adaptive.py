"""Tests for adaptive (confluence-driven) tag-type weights."""

import pytest

from repro.core.adaptive import AdaptiveMitosPolicy, AdaptiveWeights
from repro.core.decision import TagCandidate
from repro.core.params import MitosParams


def params(**kw) -> MitosParams:
    defaults = dict(R=1 << 16, M_prov=10, tau_scale=1.0)
    defaults.update(kw)
    return MitosParams(**defaults)


class TestAdaptiveWeights:
    def test_default_multiplier_is_one(self):
        assert AdaptiveWeights().multiplier("netflow") == 1.0

    def test_boost_compounds(self):
        weights = AdaptiveWeights()
        weights.boost("netflow", 2.0)
        weights.boost("netflow", 3.0)
        assert weights.multiplier("netflow") == 6.0

    def test_boost_clamped(self):
        weights = AdaptiveWeights(max_multiplier=10.0)
        weights.boost("netflow", 1e9)
        assert weights.multiplier("netflow") == 10.0

    def test_tick_decays_toward_one(self):
        weights = AdaptiveWeights(decay=0.5)
        weights.boost("netflow", 9.0)
        weights.tick()
        assert weights.multiplier("netflow") == pytest.approx(5.0)
        weights.tick()
        assert weights.multiplier("netflow") == pytest.approx(3.0)

    def test_fully_decayed_entries_removed(self):
        weights = AdaptiveWeights(decay=0.01)
        weights.boost("netflow", 1.001)
        for _ in range(10):
            weights.tick()
        assert weights.active_types() == {}

    def test_apply_merges_with_static_u(self):
        weights = AdaptiveWeights()
        weights.boost("netflow", 4.0)
        base = params(u={"netflow": 2.0, "file": 3.0})
        effective = weights.apply(base)
        assert effective.u_of("netflow") == 8.0
        assert effective.u_of("file") == 3.0

    def test_apply_without_boosts_returns_same_object(self):
        base = params()
        assert AdaptiveWeights().apply(base) is base

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdaptiveWeights(decay=0.0)
        with pytest.raises(ValueError):
            AdaptiveWeights(max_multiplier=0.5)
        with pytest.raises(ValueError):
            AdaptiveWeights().boost("t", 0.0)

    def test_reset(self):
        weights = AdaptiveWeights()
        weights.boost("netflow", 5.0)
        weights.reset()
        assert weights.multiplier("netflow") == 1.0


class TestAdaptiveMitosPolicy:
    def setup_policy(self, pollution: float):
        p = params()
        policy = AdaptiveMitosPolicy(p, pollution_source=lambda: pollution)
        return policy

    def test_boost_flips_a_blocked_decision(self):
        # choose a pollution making a 100-copy tag marginally blocked
        p = params()
        from repro.core.costs import marginal_cost

        pollution = 1.05 * 100 ** -1.5 * p.N_R / (p.effective_tau * p.beta)
        policy = AdaptiveMitosPolicy(p, pollution_source=lambda: pollution)
        candidate = TagCandidate(key="x", tag_type="netflow", copies=100)
        assert marginal_cost(100, pollution, "netflow", p) > 0
        assert policy.select([candidate], 1) == []
        policy.weights.boost("netflow", 10.0)
        assert policy.select([candidate], 1) == [candidate]

    def test_decay_restores_blocking(self):
        p = params()
        pollution = 1.05 * 100 ** -1.5 * p.N_R / (p.effective_tau * p.beta)
        policy = AdaptiveMitosPolicy(
            p,
            weights=AdaptiveWeights(decay=0.1),
            pollution_source=lambda: pollution,
        )
        candidate = TagCandidate(key="x", tag_type="netflow", copies=100)
        policy.weights.boost("netflow", 1.5)
        assert policy.select([candidate], 1) == [candidate]
        for _ in range(20):
            policy.weights.tick()
        assert policy.select([candidate], 1) == []

    def test_stats_observed(self):
        policy = self.setup_policy(pollution=0.0)
        policy.select([TagCandidate(key="x", tag_type="netflow", copies=1)], 1)
        assert policy.engine.stats.considered == 1

    def test_reset_clears_weights(self):
        policy = self.setup_policy(pollution=0.0)
        policy.weights.boost("netflow", 5.0)
        policy.reset()
        assert policy.weights.active_types() == {}

    def test_details_returned(self):
        policy = self.setup_policy(pollution=0.0)
        selected, details = policy.select_with_details(
            [TagCandidate(key="x", tag_type="netflow", copies=1)], 1
        )
        assert details is not None
        assert details.propagated == selected


class TestConfluenceResponder:
    def test_alert_boosts_involved_types(self):
        from repro.core.adaptive import AdaptiveWeights
        from repro.dift import flows
        from repro.dift.confluence import ConfluenceResponder
        from repro.dift.detector import ConfluenceDetector
        from repro.dift.shadow import mem
        from repro.dift.tags import Tag, TagTypes
        from repro.dift.tracker import DIFTTracker
        from repro.core.policy import PropagateAllPolicy

        tracker = DIFTTracker(
            params(), PropagateAllPolicy(), detector=ConfluenceDetector()
        )
        weights = AdaptiveWeights()
        responder = ConfluenceResponder(tracker, weights, boost_factor=7.0)
        tracker.process(flows.insert(mem(0), Tag(TagTypes.NETFLOW, 1), tick=0))
        assert responder.poll() == 0
        tracker.process(
            flows.insert(mem(0), Tag(TagTypes.EXPORT_TABLE, 1), tick=1)
        )
        assert responder.poll() == 1
        assert weights.multiplier(TagTypes.NETFLOW) == 7.0
        assert weights.multiplier(TagTypes.EXPORT_TABLE) == 7.0
        # idempotent: no new alerts, no new boosts
        assert responder.poll() == 0
        assert responder.boosts_applied == 2

    def test_requires_detector(self):
        from repro.core.policy import PropagateAllPolicy
        from repro.dift.confluence import ConfluenceResponder
        from repro.dift.tracker import DIFTTracker

        tracker = DIFTTracker(params(), PropagateAllPolicy())
        with pytest.raises(ValueError, match="detector"):
            ConfluenceResponder(tracker, AdaptiveWeights())

    def test_plugin_polls_during_replay(self):
        from repro.core.policy import PropagateAllPolicy
        from repro.dift import flows
        from repro.dift.confluence import (
            ConfluenceResponder,
            ConfluenceResponsePlugin,
        )
        from repro.dift.detector import ConfluenceDetector
        from repro.dift.shadow import mem
        from repro.dift.tags import Tag, TagTypes
        from repro.dift.tracker import DIFTTracker
        from repro.replay.record import Recording
        from repro.replay.replayer import Replayer, TrackerPlugin

        tracker = DIFTTracker(
            params(), PropagateAllPolicy(), detector=ConfluenceDetector()
        )
        weights = AdaptiveWeights()
        responder = ConfluenceResponder(tracker, weights)
        recording = Recording(
            events=[
                flows.insert(mem(0), Tag(TagTypes.NETFLOW, 1), tick=0),
                flows.insert(mem(0), Tag(TagTypes.EXPORT_TABLE, 1), tick=1),
            ]
        )
        replayer = Replayer(
            [TrackerPlugin(tracker, reset_on_begin=False),
             ConfluenceResponsePlugin(responder)]
        )
        replayer.replay(recording)
        assert weights.multiplier(TagTypes.NETFLOW) > 1.0
