"""Vectorized Eq. 8 kernel: exactness and agreement with the scalar path."""

import math
import random

import numpy as np
import pytest

from repro.core import costs
from repro.core.decision import MarginalCache, TagCandidate, decide_multi
from repro.core.params import MitosParams
from repro.vector.kernel import (
    DEFAULT_MAX_COPIES,
    decide_multi_batch,
    marginal_batch,
    over_marginals,
    rank_candidates,
    seed_marginal_cache,
    under_marginals,
    under_table,
    under_table_stack,
    verify_batch_agreement,
)

PARAMS = MitosParams(u={"netflow": 2.0, "file": 0.5}, o={"netflow": 1.5})


class TestUnderTable:
    def test_bit_equal_to_scalar(self):
        table = under_table("netflow", 64, PARAMS)
        for copies in range(65):
            expected = costs.under_marginal(copies, "netflow", PARAMS)
            assert table[copies] == expected or (
                math.isinf(table[copies]) and math.isinf(expected)
            )

    def test_zero_copies_is_minus_inf(self):
        assert under_table("netflow", 4, PARAMS)[0] == -math.inf

    def test_alpha_one_log_limit(self):
        params = MitosParams(alpha=1.0)
        table = under_table("netflow", 16, params)
        for copies in range(1, 17):
            assert table[copies] == costs.under_marginal(
                copies, "netflow", params
            )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            under_table("netflow", -1, PARAMS)

    def test_stack_gather(self):
        types = ["netflow", "file", "export_table"]
        stack = under_table_stack(types, 32, PARAMS)
        assert stack.shape == (3, 33)
        copies = np.array([0, 1, 7, 32])
        codes = np.array([0, 1, 2, 1])
        gathered = under_marginals(copies, codes, stack)
        for value, (code, count) in zip(gathered, zip(codes, copies)):
            expected = costs.under_marginal(
                int(count), types[int(code)], PARAMS
            )
            assert value == expected or (
                math.isinf(value) and math.isinf(expected)
            )

    def test_empty_stack(self):
        assert under_table_stack([], 8, PARAMS).shape == (0, 9)


class TestOverMarginals:
    @pytest.mark.parametrize("beta", [1.0, 2.0, 3.0, 4.0])
    def test_integer_beta_bit_equal(self, beta):
        params = MitosParams(beta=beta)
        pollution = np.array([0.0, 1.0, 17.5, 4096.0, 1e6])
        batch = over_marginals(pollution, params)
        for value, p in zip(batch, pollution):
            assert value == costs.over_marginal(float(p), params)

    def test_general_beta_within_ulp(self):
        params = MitosParams(beta=2.5)
        pollution = np.linspace(0.0, 1e5, 257)
        batch = over_marginals(pollution, params)
        for value, p in zip(batch, pollution):
            scalar = costs.over_marginal(float(p), params)
            assert value == pytest.approx(scalar, rel=1e-15)

    def test_negative_pollution_rejected(self):
        with pytest.raises(ValueError):
            over_marginals(np.array([-1.0]), PARAMS)


class TestDecideMultiBatch:
    def _random_candidates(self, rng, n):
        types = ["netflow", "file", "export_table"]
        return [
            TagCandidate(
                key=("t", i),
                tag_type=rng.choice(types),
                copies=rng.randrange(0, 40),
            )
            for i in range(n)
        ]

    def test_bit_identical_to_scalar(self):
        rng = random.Random(7)
        sets = [
            self._random_candidates(rng, rng.randrange(0, 12))
            for _ in range(50)
        ]
        flags = verify_batch_agreement(sets, 4, 123.0, PARAMS)
        assert all(flags)

    def test_tie_order_matches_sorted(self):
        # identical candidates -> identical keys; stable argsort must
        # preserve the original order exactly like sorted()
        candidates = [
            TagCandidate(key=i, tag_type="netflow", copies=5)
            for i in range(6)
        ]
        scalar = decide_multi(candidates, 3, 10.0, PARAMS)
        batch = decide_multi_batch(candidates, 3, 10.0, PARAMS)
        assert [d.candidate.key for d in scalar.decisions] == [
            d.candidate.key for d in batch.decisions
        ]

    def test_respects_free_slots(self):
        candidates = [
            TagCandidate(key=i, tag_type="netflow", copies=0)
            for i in range(8)
        ]
        batch = decide_multi_batch(candidates, 3, 0.0, PARAMS)
        assert batch.propagated_count == 3

    def test_empty_candidates(self):
        outcome = decide_multi_batch([], 4, 0.0, PARAMS)
        assert outcome.decisions == [] and outcome.free_slots == 4

    def test_negative_free_slots_rejected(self):
        with pytest.raises(ValueError):
            decide_multi_batch(
                [TagCandidate(key=1, tag_type="netflow", copies=1)],
                -1,
                0.0,
                PARAMS,
            )

    def test_shared_table_stack(self):
        types = ["file", "netflow"]
        stack = under_table_stack(types, 64, PARAMS)
        candidates = [
            TagCandidate(key=i, tag_type=types[i % 2], copies=i)
            for i in range(10)
        ]
        with_stack = decide_multi_batch(
            candidates, 4, 50.0, PARAMS, table_stack=stack, tag_types=types
        )
        scalar = decide_multi(candidates, 4, 50.0, PARAMS)
        assert [d.marginal for d in with_stack.decisions] == [
            d.marginal for d in scalar.decisions
        ]


class TestRankAndMarginalBatch:
    def test_rank_matches_scalar_sort(self):
        rng = random.Random(3)
        types = ["netflow", "file"]
        stack = under_table_stack(types, 32, PARAMS)
        candidates = [
            TagCandidate(
                key=i, tag_type=types[rng.randrange(2)], copies=rng.randrange(33)
            )
            for i in range(20)
        ]
        over_base = costs.over_marginal(42.0, PARAMS)
        copies = np.array([c.copies for c in candidates])
        codes = np.array([types.index(c.tag_type) for c in candidates])
        order = rank_candidates(copies, codes, stack, over_base)
        expected = sorted(
            range(len(candidates)),
            key=lambda i: costs.under_marginal(
                candidates[i].copies, candidates[i].tag_type, PARAMS
            )
            + over_base,
        )
        assert list(order) == expected

    def test_marginal_batch_matches_scalar(self):
        types = ["netflow"]
        stack = under_table_stack(types, 16, PARAMS)
        copies = np.array([1, 2, 3, 16])
        codes = np.zeros(4, dtype=np.int64)
        batch = marginal_batch(copies, codes, stack, 33.0, PARAMS)
        for value, count in zip(batch, copies):
            assert value == costs.marginal_cost(
                int(count), 33.0, "netflow", PARAMS
            )


class TestSeedMarginalCache:
    def test_seeded_values_bit_equal_to_lazy(self):
        seeded_cache = MarginalCache(PARAMS)
        count = seed_marginal_cache(
            seeded_cache, ["netflow", "file"], max_copies=32
        )
        assert count == 2 * 33
        lazy_cache = MarginalCache(PARAMS)
        for tag_type in ("netflow", "file"):
            for copies in range(33):
                assert seeded_cache.under(copies, tag_type) == lazy_cache.under(
                    copies, tag_type
                ) or (
                    math.isinf(seeded_cache.under(copies, tag_type))
                    and math.isinf(lazy_cache.under(copies, tag_type))
                )

    def test_respects_budget_never_overflows(self):
        cache = MarginalCache(PARAMS, max_entries=10)
        count = seed_marginal_cache(
            cache, ["netflow", "file"], max_copies=DEFAULT_MAX_COPIES
        )
        assert count <= 10
        assert len(cache._under) <= 10

    def test_existing_entries_kept(self):
        cache = MarginalCache(PARAMS)
        before = cache.under(5, "netflow")
        seed_marginal_cache(cache, ["netflow"], max_copies=8)
        assert cache.under(5, "netflow") == before
