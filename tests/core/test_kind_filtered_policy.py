"""Tests for KindFilteredPolicy (Minos-style per-dependency-class choices)."""

import pytest

from repro.core.decision import TagCandidate
from repro.core.params import MitosParams
from repro.core.policy import (
    KindFilteredPolicy,
    MitosPolicy,
    PropagateAllPolicy,
)
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag, TagTypes
from repro.dift.tracker import DIFTTracker


def params(**kw) -> MitosParams:
    defaults = dict(R=1 << 16, M_prov=4, tau_scale=1.0)
    defaults.update(kw)
    return MitosParams(**defaults)


NET = Tag(TagTypes.NETFLOW, 1)


class TestPolicyWrapper:
    def test_handles_only_allowed_kinds(self):
        policy = KindFilteredPolicy(
            PropagateAllPolicy(), allowed_kinds={"address_dep"}
        )
        assert policy.handles("address_dep")
        assert not policy.handles("control_dep")

    def test_name_reflects_composition(self):
        policy = KindFilteredPolicy(
            PropagateAllPolicy(), allowed_kinds={"address_dep", "control_dep"}
        )
        assert "propagate-all" in policy.name
        assert "address_dep" in policy.name

    def test_selection_delegates_to_inner(self):
        inner = PropagateAllPolicy()
        policy = KindFilteredPolicy(inner)
        candidates = [TagCandidate(key="a", tag_type="netflow", copies=1)]
        assert policy.select(candidates, 1) == candidates

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError):
            KindFilteredPolicy(PropagateAllPolicy(), allowed_kinds=set())

    def test_reset_propagates(self):
        inner = MitosPolicy(params(), pollution_source=lambda: 0.0)
        policy = KindFilteredPolicy(inner)
        inner.select([TagCandidate(key="a", tag_type="netflow", copies=1)], 1)
        policy.reset()
        assert inner.engine.stats.considered == 0

    def test_default_policies_handle_everything(self):
        assert PropagateAllPolicy().handles("address_dep")
        assert PropagateAllPolicy().handles("control_dep")


class TestTrackerIntegration:
    def make_tracker(self, allowed):
        policy = KindFilteredPolicy(
            PropagateAllPolicy(), allowed_kinds=allowed
        )
        return DIFTTracker(params(), policy)

    def test_address_only_baseline(self):
        tracker = self.make_tracker({"address_dep"})
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.address_dep(reg("r1"), mem(5), tick=1))
        tracker.process(flows.control_dep((reg("r1"),), mem(6), tick=2))
        assert tracker.shadow.is_tainted(mem(5))
        assert not tracker.shadow.is_tainted(mem(6))
        assert tracker.stats.ifp_blocked == 1
        assert tracker.stats.ifp_propagated == 1

    def test_control_only_baseline(self):
        tracker = self.make_tracker({"control_dep"})
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.address_dep(reg("r1"), mem(5), tick=1))
        tracker.process(flows.control_dep((reg("r1"),), mem(6), tick=2))
        assert not tracker.shadow.is_tainted(mem(5))
        assert tracker.shadow.is_tainted(mem(6))

    def test_observer_sees_hardwired_blocks(self):
        seen = []
        policy = KindFilteredPolicy(
            PropagateAllPolicy(), allowed_kinds={"address_dep"}
        )
        tracker = DIFTTracker(
            params(), policy,
            ifp_observer=lambda e, c, d, s, p: seen.append((e.kind.value, len(s))),
        )
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.control_dep((reg("r1"),), mem(6), tick=1))
        assert seen == [("control_dep", 0)]

    def test_address_only_detects_table_decode_attack(self):
        """Minos-style address-dep handling suffices for the https shell
        (its decode is pure address dependencies) -- but full MITOS does
        the same with far less overtainting risk elsewhere."""
        from repro.faros import FarosSystem, stock_faros_config
        from repro.workloads.attack import InMemoryAttack
        from repro.workloads.calibration import benchmark_params

        recording = InMemoryAttack(
            variant="reverse_https", seed=0, payload_bytes=96, imports=12,
            noise_bytes=192, noise_rounds=4,
        ).record()
        config = stock_faros_config(
            benchmark_params(crossover_copies=400.0, pollution_fraction=0.003)
        )
        system = FarosSystem(config)
        # swap in the address-only wrapper
        system.tracker.policy = KindFilteredPolicy(
            PropagateAllPolicy(), allowed_kinds={"address_dep"}
        )
        system.replay(recording)
        assert system.detector is not None
        assert system.detector.detected_bytes > 0
