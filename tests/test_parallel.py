"""repro.parallel: ordering, determinism, and graceful fallback.

The contract under test is the one every experiment relies on:
``run_jobs(jobs, workers=N)`` returns exactly what ``workers=1`` returns,
in the same order, for any N -- the pool only changes the wall clock.
"""

import math

import pytest

from repro.experiments import fig8
from repro.experiments.common import run_sweep
from repro.parallel import Job, run_jobs


def add(a, b=0):
    return a + b


class TestSequentialPath:
    def test_results_in_submission_order(self):
        jobs = [Job(add, (i,), (("b", 10),)) for i in range(7)]
        assert run_jobs(jobs, workers=1) == [10 + i for i in range(7)]

    def test_closures_allowed_when_sequential(self):
        # workers <= 1 never pickles, so non-module-level callables work
        jobs = [Job((lambda x: x * x), (i,)) for i in range(4)]
        assert run_jobs(jobs, workers=1) == [0, 1, 4, 9]

    def test_empty_and_single_job(self):
        assert run_jobs([], workers=8) == []
        assert run_jobs([Job(add, (3, 4))], workers=8) == [7]

    def test_job_error_propagates(self):
        with pytest.raises(ValueError):
            run_jobs([Job(math.sqrt, (-1.0,))], workers=1)


class TestPoolPath:
    def test_pool_results_match_sequential(self):
        jobs = [Job(math.factorial, (n,)) for n in (3, 5, 8, 10, 1, 0)]
        sequential = run_jobs(jobs, workers=1)
        pooled = run_jobs(jobs, workers=4)
        assert pooled == sequential
        assert pooled == [6, 120, 40320, 3628800, 1, 1]

    def test_more_workers_than_jobs(self):
        jobs = [Job(math.factorial, (n,)) for n in (2, 3)]
        assert run_jobs(jobs, workers=16) == [2, 6]

    def test_unpicklable_jobs_fall_back_to_sequential(self):
        # lambdas cannot be pickled for a spawn pool; the fallback must
        # still produce the right answers in the right order
        jobs = [Job((lambda x: x + 100), (i,)) for i in range(5)]
        assert run_jobs(jobs, workers=4) == [100 + i for i in range(5)]


class TestExperimentSweepDeterminism:
    def test_run_sweep_matches_sequential_through_a_real_pool(self):
        # two quick fig8 points through an actual process pool must equal
        # the in-process run exactly (dataclass equality covers every
        # field, including the float metrics)
        points = (0.5, 2.0)
        sequential = run_sweep(fig8._alpha_job, points, 1, 0, True)
        pooled = run_sweep(fig8._alpha_job, points, 2, 0, True)
        assert pooled == sequential
        assert [r.alpha for r in pooled] == list(points)
