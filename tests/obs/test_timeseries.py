"""Tests for the pollution time-series sampler."""

import pytest

from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler
from repro.replay.record import Recording
from repro.replay.replayer import Replayer, TrackerPlugin
from repro.workloads.calibration import benchmark_params

NET = Tag("netflow", 1)


def make_tracker():
    return DIFTTracker(benchmark_params(), PropagateAllPolicy())


def recording(n_events=10, tick_step=1):
    events = [
        flows.insert(mem(i), NET, tick=i * tick_step) for i in range(n_events)
    ]
    return Recording(events=events)


class TestSampler:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(make_tracker(), every=0)

    def test_samples_every_n_ticks(self):
        tracker = make_tracker()
        sampler = TimeSeriesSampler(tracker, every=3)
        replayer = Replayer([TrackerPlugin(tracker), sampler])
        replayer.replay(recording(n_events=10))
        # boundaries at ticks 0, 3, 6, 9 (9 is also the final tick)
        assert [s.tick for s in sampler.samples] == [0, 3, 6, 9]

    def test_final_sample_always_taken(self):
        tracker = make_tracker()
        sampler = TimeSeriesSampler(tracker, every=100)
        replayer = Replayer([TrackerPlugin(tracker), sampler])
        replayer.replay(recording(n_events=7))
        assert [s.tick for s in sampler.samples] == [0, 6]

    def test_sample_values_track_state(self):
        tracker = make_tracker()
        sampler = TimeSeriesSampler(tracker, every=1)
        replayer = Replayer([TrackerPlugin(tracker), sampler])
        replayer.replay(recording(n_events=4))
        entries = [s.total_entries for s in sampler.samples]
        assert entries == [1, 2, 3, 4]
        assert sampler.samples[-1].pollution == tracker.pollution()
        assert sampler.samples[-1].live_tags == 1
        assert sampler.samples[-1].tainted_locations == 4

    def test_reset_on_begin(self):
        tracker = make_tracker()
        sampler = TimeSeriesSampler(tracker, every=2)
        replayer = Replayer([TrackerPlugin(tracker), sampler])
        replayer.replay(recording(n_events=6))
        first = len(sampler.samples)
        replayer.replay(recording(n_events=6))
        assert len(sampler.samples) == first

    def test_series_columns(self):
        tracker = make_tracker()
        sampler = TimeSeriesSampler(tracker, every=2)
        Replayer([TrackerPlugin(tracker), sampler]).replay(recording(6))
        series = sampler.series()
        assert set(series) == {
            "tick",
            "pollution",
            "live_tags",
            "tainted_locations",
            "total_entries",
            "footprint_bytes",
        }
        assert len(series["tick"]) == len(sampler)

    def test_gauges_updated(self):
        registry = MetricsRegistry()
        tracker = make_tracker()
        sampler = TimeSeriesSampler(tracker, every=1, metrics=registry)
        Replayer([TrackerPlugin(tracker), sampler]).replay(recording(3))
        gauges = registry.as_dict()["gauges"]
        assert gauges["pollution"] == tracker.pollution()
        assert gauges["live_tags"] == 1

    def test_empty_recording_no_samples(self):
        tracker = make_tracker()
        sampler = TimeSeriesSampler(tracker, every=5)
        Replayer([TrackerPlugin(tracker), sampler]).replay(Recording())
        assert sampler.samples == []
