"""Tests for span tracing aggregation."""

import time

from repro.obs.tracing import (
    NULL_TRACER,
    PIPELINE_SPANS,
    NullSpanTracer,
    SpanStats,
    SpanTracer,
)


class TestSpanStats:
    def test_record_accumulates(self):
        stats = SpanStats("s")
        stats.record(100)
        stats.record(300)
        assert stats.count == 2
        assert stats.total_ns == 400
        assert stats.min_ns == 100 and stats.max_ns == 300
        assert stats.mean_ns == 200

    def test_as_dict_units(self):
        stats = SpanStats("s")
        stats.record(2_000_000)  # 2 ms
        payload = stats.as_dict()
        assert payload["total_ms"] == 2.0
        assert payload["mean_us"] == 2000.0


class TestSpanTracer:
    def test_end_records_elapsed(self):
        tracer = SpanTracer()
        t0 = time.perf_counter_ns()
        tracer.end("work", t0)
        stats = tracer.get("work")
        assert stats.count == 1
        assert stats.total_ns >= 0

    def test_span_context_manager(self):
        tracer = SpanTracer()
        with tracer.span("cm"):
            pass
        assert tracer.get("cm").count == 1

    def test_span_closes_on_exception(self):
        tracer = SpanTracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError()
        except RuntimeError:
            pass
        assert tracer.get("boom").count == 1

    def test_breakdown_exclusive_times(self):
        tracer = SpanTracer()
        tracer.record_ns("replay.loop", 10_000_000)
        tracer.record_ns("pipeline.on_event", 6_000_000)
        tracer.record_ns("tracker.process", 4_000_000)
        rows = {name: (total, excl) for name, total, excl in tracer.breakdown()}
        assert rows["replay.loop"] == (10.0, 4.0)
        assert rows["pipeline.on_event"] == (6.0, 2.0)
        # innermost recorded stage keeps its full total
        assert rows["tracker.process"] == (4.0, 4.0)

    def test_breakdown_includes_non_pipeline_spans(self):
        tracer = SpanTracer()
        tracer.record_ns("custom", 1_000_000)
        rows = dict(
            (name, (total, excl)) for name, total, excl in tracer.breakdown()
        )
        assert rows["custom"] == (1.0, 1.0)

    def test_canonical_span_names(self):
        assert "tracker.process" in PIPELINE_SPANS
        assert "policy.select" in PIPELINE_SPANS

    def test_reset(self):
        tracer = SpanTracer()
        tracer.record_ns("a", 1)
        tracer.reset()
        assert tracer.span_names() == []


class TestNullTracer:
    def test_noop(self):
        tracer = NullSpanTracer()
        tracer.end("a", 0)
        tracer.record_ns("b", 5)
        with tracer.span("c"):
            pass
        assert tracer.as_dict() == {}
        assert not tracer.enabled
        assert not NULL_TRACER.enabled
