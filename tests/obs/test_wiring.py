"""Integration tests: the Observability bundle threaded through FarosSystem."""

import json

from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag, TagTypes
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.obs import Observability, compose_observers, read_decision_trace
from repro.replay.record import Recording
from repro.workloads.calibration import benchmark_params

NET = Tag(TagTypes.NETFLOW, 1)
EXPORT = Tag(TagTypes.EXPORT_TABLE, 1)


def small_recording() -> Recording:
    events = [
        flows.insert(mem(0), NET, tick=0),
        flows.insert(mem(1), EXPORT, tick=1),
        flows.copy(mem(0), reg("r1"), tick=2),
        flows.compute((reg("r1"),), reg("r2"), tick=3),
        flows.address_dep(reg("r1"), mem(5), tick=4),
        flows.control_dep((reg("r2"),), mem(6), tick=5),
        flows.clear(reg("r2"), tick=6),
    ]
    return Recording(events=events, meta={"name": "small"})


class TestComposeObservers:
    def test_none_in_none_out(self):
        assert compose_observers(None, None) is None

    def test_single_observer_unwrapped(self):
        def observer(*args):
            pass

        assert compose_observers(None, observer) is observer

    def test_fanout_calls_all(self):
        calls = []
        fanout = compose_observers(
            lambda *a: calls.append("a"), lambda *a: calls.append("b")
        )
        fanout(None, [], None, [], 0.0)
        assert calls == ["a", "b"]


class TestSystemWiring:
    def params(self):
        return benchmark_params()

    def test_metrics_identical_with_and_without_obs(self):
        recording = small_recording()
        plain = FarosSystem(mitos_config(self.params())).replay(recording)
        obs = Observability.create(sample_every=2)
        instrumented = FarosSystem(
            mitos_config(self.params()), observability=obs
        ).replay(recording)
        plain_metrics = plain.metrics.as_dict()
        inst_metrics = instrumented.metrics.as_dict()
        plain_metrics.pop("wall_seconds")
        inst_metrics.pop("wall_seconds")
        assert plain_metrics == inst_metrics
        assert plain.stage_counts == instrumented.stage_counts
        assert plain.tracker_stats == instrumented.tracker_stats

    def test_spans_cover_the_pipeline(self):
        obs = Observability()
        system = FarosSystem(mitos_config(self.params()), observability=obs)
        system.replay(small_recording())
        names = obs.tracer.span_names()
        assert "replay.loop" in names
        assert "replay.on_event" in names
        assert "pipeline.on_event" in names
        assert "tracker.process" in names
        assert "policy.select" in names
        assert obs.tracer.get("tracker.process").count == 7

    def test_decision_trace_one_record_per_decision(self, tmp_path):
        path = tmp_path / "d.jsonl"
        obs = Observability.create(trace_out=path)
        system = FarosSystem(mitos_config(self.params()), observability=obs)
        system.replay(small_recording())
        obs.close()
        records = list(read_decision_trace(path))
        # two indirect flows with candidates -> two records
        assert len(records) == 2
        assert {r["kind"] for r in records} == {"address_dep", "control_dep"}
        for record in records:
            assert record["has_details"] is True
            for row in record["candidates"]:
                assert row["marginal"] is not None

    def test_decision_trace_and_timeline_compose(self):
        obs = Observability.create()
        config = mitos_config(self.params(), log_timeline=True)
        system = FarosSystem(config, observability=obs)
        system.replay(small_recording())
        assert len(system.timeline) == obs.decisions.records_written == 2

    def test_sampler_attached_and_filled(self):
        obs = Observability.create(sample_every=2)
        system = FarosSystem(mitos_config(self.params()), observability=obs)
        system.replay(small_recording())
        assert obs.sampler is not None
        assert [s.tick for s in obs.sampler.samples] == [0, 2, 4, 6]

    def test_event_kind_counters(self):
        obs = Observability()
        system = FarosSystem(stock_faros_config(self.params()), observability=obs)
        system.replay(small_recording())
        counters = obs.metrics.as_dict()["counters"]
        assert counters["replay.events.insert"] == 2
        assert counters["replay.events.copy"] == 1
        assert counters["replay.events.compute"] == 1
        assert counters["replay.events.address_dep"] == 1
        assert counters["replay.events.control_dep"] == 1
        assert counters["replay.events.clear"] == 1

    def test_finalize_snapshots_tracker_state(self):
        obs = Observability()
        system = FarosSystem(mitos_config(self.params()), observability=obs)
        system.replay(small_recording())
        gauges = obs.metrics.as_dict()["gauges"]
        assert gauges["final.pollution"] == system.tracker.pollution()
        assert gauges["tracker.ticks"] == 7

    def test_export_and_write_metrics(self, tmp_path):
        obs = Observability.create(sample_every=3)
        system = FarosSystem(mitos_config(self.params()), observability=obs)
        system.replay(small_recording())
        out = tmp_path / "m.json"
        obs.write_metrics(out)
        payload = json.loads(out.read_text())
        assert set(payload) >= {"metrics", "spans", "span_breakdown", "timeseries"}
        assert payload["spans"]["tracker.process"]["count"] == 7
        assert payload["timeseries"][0]["tick"] == 0

    def test_tracker_spans_without_replayer(self):
        # live mode feeds tracker.process directly: spans must still record
        obs = Observability()
        system = FarosSystem(mitos_config(self.params()), observability=obs)
        for event in small_recording():
            system.tracker.process(event)
        assert obs.tracer.get("tracker.process").count == 7
