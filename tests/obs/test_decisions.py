"""Tests for the JSONL IFP decision-trace recorder."""

import json

import pytest

from repro.core.decision import decide_multi, TagCandidate
from repro.core.params import MitosParams
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.obs.decisions import (
    DecisionTraceRecorder,
    format_location,
    read_decision_trace,
)
from repro.obs.metrics import MetricsRegistry

NET = Tag("netflow", 1)
FS = Tag("filesystem", 2)


def ifp_event(tick=7):
    return flows.address_dep(reg("r1"), mem(0x4800), tick=tick, context="lw")


def candidates():
    return [
        TagCandidate(key=NET, tag_type="netflow", copies=3),
        TagCandidate(key=FS, tag_type="filesystem", copies=500),
    ]


def mitos_details(pollution=10.0, free_slots=4):
    return decide_multi(candidates(), free_slots, pollution, MitosParams())


class TestFormatLocation:
    def test_mem_hex(self):
        assert format_location(mem(0x4800)) == "mem:0x4800"

    def test_reg(self):
        assert format_location(reg("r3")) == "reg:r3"


class TestInMemoryRecorder:
    def test_record_with_details(self):
        recorder = DecisionTraceRecorder()
        details = mitos_details()
        selected = [d.candidate.key for d in details.decisions if d.propagate]
        recorder.observer(
            ifp_event(), candidates(), details, selected, pollution=10.0
        )
        assert recorder.records_written == 1
        [record] = recorder.records
        assert record["tick"] == 7
        assert record["kind"] == "address_dep"
        assert record["dest"] == "mem:0x4800"
        assert record["pollution"] == 10.0
        assert record["free_slots"] == 4
        assert record["has_details"] is True
        assert len(record["candidates"]) == 2
        for row in record["candidates"]:
            assert row["marginal"] is not None
            assert row["under"] is not None and row["over"] is not None
        assert record["blocked"] == len(record["candidates"]) - len(
            record["propagated"]
        )

    def test_record_without_details_binary_outcome(self):
        recorder = DecisionTraceRecorder()
        recorder.observer(
            ifp_event(), candidates(), None, [NET], pollution=2.0
        )
        [record] = recorder.records
        assert record["has_details"] is False
        assert record["free_slots"] is None
        by_tag = {row["tag"]: row for row in record["candidates"]}
        assert by_tag["netflow:1"]["propagated"] is True
        assert by_tag["netflow:1"]["marginal"] is None
        assert by_tag["filesystem:2"]["propagated"] is False
        assert record["propagated"] == ["netflow:1"]

    def test_unhandled_kind_record(self):
        recorder = DecisionTraceRecorder()
        recorder.observer(ifp_event(), candidates(), None, [], pollution=0.0)
        [record] = recorder.records
        assert record["propagated"] == []
        assert record["blocked"] == 2


class TestFileRecorder:
    @pytest.mark.parametrize("name", ["d.jsonl", "d.jsonl.gz"])
    def test_round_trip(self, tmp_path, name):
        path = tmp_path / name
        with DecisionTraceRecorder(path) as recorder:
            details = mitos_details()
            selected = [
                d.candidate.key for d in details.decisions if d.propagate
            ]
            recorder.observer(
                ifp_event(), candidates(), details, selected, pollution=10.0
            )
            recorder.observer(
                ifp_event(tick=9), candidates(), None, [], pollution=11.0
            )
        records = list(read_decision_trace(path))
        assert len(records) == 2
        assert records[0]["tick"] == 7 and records[1]["tick"] == 9
        assert records[1]["has_details"] is False

    def test_plain_file_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "d.jsonl"
        with DecisionTraceRecorder(path) as recorder:
            recorder.observer(ifp_event(), candidates(), None, [], 0.0)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_close_is_idempotent(self, tmp_path):
        recorder = DecisionTraceRecorder(tmp_path / "d.jsonl")
        recorder.close()
        recorder.close()


class TestDecisionMetrics:
    def test_counters_and_histogram(self):
        registry = MetricsRegistry()
        recorder = DecisionTraceRecorder(metrics=registry)
        details = mitos_details()
        selected = [d.candidate.key for d in details.decisions if d.propagate]
        recorder.observer(ifp_event(), candidates(), details, selected, 10.0)
        recorder.observer(ifp_event(tick=8), candidates(), None, [], 10.0)
        payload = registry.as_dict()
        assert payload["counters"]["ifp.events"] == 2
        assert payload["counters"]["ifp.no_details"] == 1
        assert (
            payload["counters"]["ifp.propagated"]
            + payload["counters"]["ifp.blocked"]
            == 4
        )
        assert payload["histograms"]["ifp.candidates_per_event"]["count"] == 2
