"""Tests for the Prometheus text exposition renderer and validator."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    PrometheusParseError,
    parse_prometheus_text,
    render_registry,
    sanitize_metric_name,
)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(42)
    registry.gauge("serve.queue_depth.0").set(3.0)
    hist = registry.histogram("serve.decide_us", buckets=(10, 100, 1000))
    for value in (5, 50, 500, 5000):
        hist.observe(value)
    return registry


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.decide_us") == "serve_decide_us"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("9lives")[0] not in "0123456789"

    def test_legal_names_pass_through(self):
        assert sanitize_metric_name("up_total") == "up_total"


class TestRender:
    def test_counter_gets_total_suffix(self):
        text = render_registry(populated_registry())
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 42" in text

    def test_gauge_renders_plain(self):
        text = render_registry(populated_registry())
        assert "# TYPE serve_queue_depth_0 gauge" in text
        assert "serve_queue_depth_0 3.0" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_registry(populated_registry())
        assert 'serve_decide_us_bucket{le="10"} 1' in text
        assert 'serve_decide_us_bucket{le="100"} 2' in text
        assert 'serve_decide_us_bucket{le="1000"} 3' in text
        assert 'serve_decide_us_bucket{le="+Inf"} 4' in text
        assert "serve_decide_us_count 4" in text
        assert "serve_decide_us_sum" in text

    def test_renders_agree_with_json_cumulative_block(self):
        registry = populated_registry()
        text = render_registry(registry)
        cumulative = registry.histogram("serve.decide_us").as_dict()[
            "cumulative"
        ]
        assert f'le="+Inf"}} {cumulative["le_inf"]}' in text
        assert f'le="10"}} {cumulative["le_10"]}' in text

    def test_empty_registry_renders_empty_document(self):
        assert render_registry(MetricsRegistry()) == "\n"

    def test_content_type_is_the_prometheus_text_v0(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestParseRoundTrip:
    def test_round_trip(self):
        text = render_registry(populated_registry())
        parsed = parse_prometheus_text(text)
        assert parsed["serve_requests_total"]["type"] == "counter"
        assert parsed["serve_queue_depth_0"]["type"] == "gauge"
        assert parsed["serve_decide_us"]["type"] == "histogram"
        samples = {
            name: value
            for name, _, value in parsed["serve_requests_total"]["samples"]
        }
        assert samples["serve_requests_total"] == 42.0

    def test_histogram_inf_bucket_parses(self):
        text = render_registry(populated_registry())
        parsed = parse_prometheus_text(text)
        inf_buckets = [
            value
            for name, labels, value in parsed["serve_decide_us"]["samples"]
            if labels.get("le") == "+Inf"
        ]
        assert inf_buckets == [4.0]
        assert math.isinf(float("inf"))


class TestParseRejects:
    def test_sample_without_type(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text("lonely_sample 1\n")

    def test_malformed_sample(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text("# TYPE x counter\nx one_two\n")

    def test_bad_metric_name(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text("# TYPE 9bad counter\n9bad 1\n")

    def test_declared_without_samples(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text("# TYPE ghost counter\n")

    def test_duplicate_type_declaration(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text(
                "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n"
            )

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="10"} 1\n'
            "h_sum 5\n"
            "h_count 1\n"
        )
        with pytest.raises(PrometheusParseError, match=r"\+Inf"):
            parse_prometheus_text(text)

    def test_histogram_decreasing_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="10"} 5\n'
            'h_bucket{le="100"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 5\n"
            "h_count 3\n"
        )
        with pytest.raises(PrometheusParseError, match="decrease"):
            parse_prometheus_text(text)

    def test_histogram_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 5\n"
            "h_count 4\n"
        )
        with pytest.raises(PrometheusParseError, match="_count"):
            parse_prometheus_text(text)

    def test_malformed_label(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus_text(
                "# TYPE h histogram\nh_bucket{le=10} 1\nh_sum 1\nh_count 1\n"
            )
