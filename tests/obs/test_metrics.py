"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    parse_bucket_label,
    quantile_from_buckets,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 1.0, 5, 50, 5000):
            hist.observe(value)
        buckets = hist.as_dict()["buckets"]
        assert buckets == {"le_1": 2, "le_10": 1, "le_100": 1, "le_inf": 1}

    def test_summary_stats(self):
        hist = Histogram("h", buckets=(10,))
        hist.observe(2)
        hist.observe(4)
        assert hist.count == 2
        assert hist.sum == 6
        assert hist.mean == 3
        assert hist.min == 2 and hist.max == 4

    def test_empty_histogram_renders(self):
        payload = Histogram("h", buckets=(1,)).as_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1))

    def test_export_pins_cumulative_counts(self):
        """The JSON export must carry Prometheus-style cumulative buckets.

        Pins the contract the text exposition renderer relies on: the
        ``cumulative`` block is the running sum of ``buckets`` and its
        last entry equals ``count``, so the two export formats agree.
        """
        hist = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 1.0, 5, 50, 5000):
            hist.observe(value)
        payload = hist.as_dict()
        assert payload["buckets"] == {
            "le_1": 2, "le_10": 1, "le_100": 1, "le_inf": 1,
        }
        assert payload["cumulative"] == {
            "le_1": 2, "le_10": 3, "le_100": 4, "le_inf": 5,
        }
        assert payload["cumulative"]["le_inf"] == payload["count"]
        assert hist.cumulative_counts() == [2, 3, 4, 5]


class TestBucketLabels:
    def test_round_trip(self):
        assert parse_bucket_label("le_250") == 250.0
        assert parse_bucket_label("le_0.5") == 0.5
        assert parse_bucket_label("le_inf") == float("inf")

    def test_rejects_non_bucket_labels(self):
        with pytest.raises(ValueError):
            parse_bucket_label("count")


class TestQuantileFromBuckets:
    def test_interpolates_within_bucket(self):
        # 100 observations uniformly in (0, 100]: one bucket at 100
        buckets = {"le_100": 100, "le_inf": 0}
        assert quantile_from_buckets(buckets, 50) == pytest.approx(50.0)
        assert quantile_from_buckets(buckets, 99) == pytest.approx(99.0)

    def test_picks_the_winning_bucket(self):
        buckets = {"le_10": 90, "le_100": 9, "le_inf": 1}
        p50 = quantile_from_buckets(buckets, 50)
        assert 0 < p50 <= 10
        p95 = quantile_from_buckets(buckets, 95)
        assert 10 < p95 <= 100

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        buckets = {"le_10": 0, "le_inf": 5}
        assert quantile_from_buckets(buckets, 99) == 10.0

    def test_empty_histogram_is_zero(self):
        assert quantile_from_buckets({"le_1": 0, "le_inf": 0}, 99) == 0.0

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            quantile_from_buckets({"le_1": 1}, 101)


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("pollution").set(1.5)
        registry.histogram("sizes", buckets=(1, 2)).observe(1)
        payload = registry.as_dict()
        assert payload["counters"] == {"events": 3}
        assert payload["gauges"] == {"pollution": 1.5}
        assert payload["histograms"]["sizes"]["count"] == 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.reset()
        assert registry.as_dict()["counters"] == {}

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_METRICS.enabled


class TestNullRegistry:
    def test_instruments_swallow_everything(self):
        registry = NullMetricsRegistry()
        registry.counter("a").inc(10)
        registry.gauge("b").set(5)
        registry.histogram("c").observe(1)
        registry.inc("d")
        assert registry.as_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
