"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("h", buckets=(1, 10, 100))
        for value in (0.5, 1.0, 5, 50, 5000):
            hist.observe(value)
        buckets = hist.as_dict()["buckets"]
        assert buckets == {"le_1": 2, "le_10": 1, "le_100": 1, "le_inf": 1}

    def test_summary_stats(self):
        hist = Histogram("h", buckets=(10,))
        hist.observe(2)
        hist.observe(4)
        assert hist.count == 2
        assert hist.sum == 6
        assert hist.mean == 3
        assert hist.min == 2 and hist.max == 4

    def test_empty_histogram_renders(self):
        payload = Histogram("h", buckets=(1,)).as_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1))


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_name_collision_across_kinds_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("pollution").set(1.5)
        registry.histogram("sizes", buckets=(1, 2)).observe(1)
        payload = registry.as_dict()
        assert payload["counters"] == {"events": 3}
        assert payload["gauges"] == {"pollution": 1.5}
        assert payload["histograms"]["sizes"]["count"] == 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.reset()
        assert registry.as_dict()["counters"] == {}

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_METRICS.enabled


class TestNullRegistry:
    def test_instruments_swallow_everything(self):
        registry = NullMetricsRegistry()
        registry.counter("a").inc(10)
        registry.gauge("b").set(5)
        registry.histogram("c").observe(1)
        registry.inc("d")
        assert registry.as_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
