"""Tests for the shared structured logging setup."""

import io
import logging

import pytest

from repro.obs.logging import StructuredFormatter, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers[:], root.level, root.propagate = saved[0], saved[1], saved[2]


class TestStructuredFormatter:
    def _format(self, logger_name, message, extra=None):
        record = logging.LogRecord(
            logger_name, logging.DEBUG, __file__, 1, message, (), None
        )
        for key, value in (extra or {}).items():
            setattr(record, key, value)
        return StructuredFormatter().format(record)

    def test_base_shape(self):
        line = self._format("repro.obs", "hello")
        assert line == "DEBUG repro.obs hello"

    def test_extras_become_key_value_pairs(self):
        line = self._format(
            "repro.obs", "sampled", extra={"tick": 42, "event": "copy"}
        )
        assert line == "DEBUG repro.obs sampled event=copy tick=42"


class TestConfigureLogging:
    def test_verbose_emits_debug(self):
        stream = io.StringIO()
        configure_logging(verbose=True, stream=stream)
        get_logger("unit").debug("visible", extra={"tick": 1})
        assert "DEBUG repro.unit visible tick=1" in stream.getvalue()

    def test_quiet_suppresses_debug(self):
        stream = io.StringIO()
        configure_logging(verbose=False, stream=stream)
        get_logger("unit").debug("hidden")
        get_logger("unit").warning("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "WARNING repro.unit shown" in output

    def test_idempotent_single_handler(self):
        stream = io.StringIO()
        configure_logging(verbose=True, stream=stream)
        configure_logging(verbose=True, stream=stream)
        get_logger("unit").debug("once")
        assert stream.getvalue().count("once") == 1

    def test_get_logger_namespacing(self):
        assert get_logger("x").name == "repro.x"
        assert get_logger("repro.y").name == "repro.y"
        assert get_logger("repro").name == "repro"
