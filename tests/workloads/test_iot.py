"""Tests for the IoT fleet workload and its distributed tracking."""

import pytest

from repro.core.fairness import jain_index
from repro.dift.flows import FlowKind
from repro.distributed.cluster import run_sharded
from repro.faros import FarosSystem, mitos_config
from repro.workloads.calibration import benchmark_params
from repro.workloads.iot import IotFleet


def small_fleet() -> IotFleet:
    return IotFleet(seed=3, sensors=6, reports_per_sensor=2,
                    bytes_per_report=8, gateways=2)


class TestIotFleet:
    def test_deterministic(self):
        assert small_fleet().record().events == small_fleet().record().events

    def test_one_tag_per_sensor(self):
        recording = small_fleet().record()
        tags = {
            e.tag
            for e in recording
            if e.kind is FlowKind.INSERT and e.tag is not None
        }
        assert len(tags) == 6  # one netflow tag per sensor (origin-deduped)

    def test_many_small_tags_stay_balanced(self):
        """The IoT regime: no tag dominates -- high Jain index."""
        recording = small_fleet().record()
        system = FarosSystem(mitos_config(benchmark_params()))
        system.replay(recording)
        copies = list(system.tracker.counter.snapshot().values())
        assert len(copies) >= 6
        assert jain_index(copies) > 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            IotFleet(sensors=0)
        with pytest.raises(ValueError):
            IotFleet(bytes_per_report=0)

    def test_sharded_tracking_across_gateways(self):
        """One node per gateway: the natural DDIFT deployment."""
        recording = small_fleet().record()
        result = run_sharded(
            recording, benchmark_params(), n_nodes=2, gossip_interval=100
        )
        assert sum(result.per_node_events.values()) == len(recording)
        assert result.oracle_agreement >= 0.99
