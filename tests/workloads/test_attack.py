"""Tests for the in-memory attack scenarios (the Table II workload)."""

import pytest

from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.workloads.attack import (
    ATTACK_VARIANTS,
    InMemoryAttack,
    record_all_variants,
)
from repro.workloads.calibration import benchmark_params

QUICK = dict(payload_bytes=96, imports=12, noise_bytes=192, noise_rounds=4)


def quick_params():
    return benchmark_params(crossover_copies=400.0, pollution_fraction=0.003)


def detected_under(config, recording) -> int:
    system = FarosSystem(config)
    return system.replay(recording).metrics.detected_bytes


class TestConstruction:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            InMemoryAttack(variant="reverse_carrier_pigeon")

    def test_imports_must_fit_payload(self):
        with pytest.raises(ValueError, match="exceed"):
            InMemoryAttack(payload_bytes=32, imports=10)

    def test_deterministic_per_seed(self):
        a = InMemoryAttack(variant="reverse_https", seed=4, **QUICK).record()
        b = InMemoryAttack(variant="reverse_https", seed=4, **QUICK).record()
        assert a.events == b.events

    def test_meta_carries_variant(self):
        recording = InMemoryAttack(variant="reverse_tcp", **QUICK).record()
        assert recording.meta["variant"] == "reverse_tcp"

    def test_record_all_variants(self):
        recordings = record_all_variants(seed=1, **QUICK)
        assert set(recordings) == set(ATTACK_VARIANTS)


class TestDetectionSemantics:
    def test_plain_variant_detected_by_both(self):
        recording = InMemoryAttack(variant="reverse_tcp", **QUICK).record()
        params = quick_params()
        faros = detected_under(stock_faros_config(params), recording)
        mitos = detected_under(mitos_config(params, all_flows=True), recording)
        assert faros > 0
        assert mitos > 0

    def test_table_encoded_variant_evades_dfp_only(self):
        """The table decode severs direct flows: stock FAROS goes blind."""
        recording = InMemoryAttack(variant="reverse_https", **QUICK).record()
        params = quick_params()
        faros = detected_under(stock_faros_config(params), recording)
        mitos = detected_under(mitos_config(params, all_flows=True), recording)
        assert faros == 0
        assert mitos > 0

    @pytest.mark.parametrize("variant", ATTACK_VARIANTS)
    def test_mitos_never_detects_less(self, variant):
        recording = InMemoryAttack(variant=variant, **QUICK).record()
        params = quick_params()
        faros = detected_under(stock_faros_config(params), recording)
        mitos = detected_under(mitos_config(params, all_flows=True), recording)
        assert mitos >= faros

    def test_mitos_does_less_work(self):
        recording = InMemoryAttack(variant="reverse_https", **QUICK).record()
        params = quick_params()
        faros_sys = FarosSystem(stock_faros_config(params))
        mitos_sys = FarosSystem(mitos_config(params, all_flows=True))
        faros_ops = faros_sys.replay(recording).metrics.propagation_ops
        mitos_ops = mitos_sys.replay(recording).metrics.propagation_ops
        assert mitos_ops < faros_ops
