"""Tests for composite (joint) workloads."""

import pytest

from repro.dift import flows
from repro.dift.flows import FlowKind
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.faros import FarosSystem, mitos_config, stock_faros_config
from repro.replay.record import Recording
from repro.workloads.attack import InMemoryAttack
from repro.workloads.calibration import benchmark_params
from repro.workloads.composite import interleave, relocate_memory, remap_tags
from repro.workloads.network import NetworkBenchmark

QUICK_ATTACK = dict(payload_bytes=96, imports=12, noise_bytes=192, noise_rounds=4)


def tiny_recording(tag_index: int, base: int) -> Recording:
    tag = Tag("netflow", tag_index)
    events = [
        flows.insert(mem(base), tag, tick=0),
        flows.copy(mem(base), reg("r1"), tick=1),
    ]
    return Recording(events=events, meta={"base": base})


class TestRemapAndRelocate:
    def test_remap_rewrites_inserts(self):
        recording = tiny_recording(1, 0)
        remapped = remap_tags(recording, {("netflow", 1): Tag("netflow", 9)})
        inserts = [e for e in remapped if e.kind is FlowKind.INSERT]
        assert inserts[0].tag == Tag("netflow", 9)
        # original untouched (pure function)
        assert list(recording)[0].tag == Tag("netflow", 1)

    def test_relocate_shifts_memory_only(self):
        recording = tiny_recording(1, 0x100)
        moved = relocate_memory(recording, 0x1000)
        assert list(moved)[0].destination == mem(0x1100)
        assert list(moved)[1].destination == reg("r1")

    def test_relocate_zero_is_identity(self):
        recording = tiny_recording(1, 0x100)
        assert relocate_memory(recording, 0) is recording


class TestInterleave:
    def test_empty(self):
        assert len(interleave([])) == 0

    def test_tags_deduplicated_across_components(self):
        a = tiny_recording(1, 0)
        b = tiny_recording(1, 8)  # same tag id, different logical tag
        merged = interleave([a, b])
        insert_tags = {e.tag for e in merged if e.kind is FlowKind.INSERT}
        assert len(insert_tags) == 2

    def test_ticks_monotonic(self):
        merged = interleave(
            [tiny_recording(1, 0), tiny_recording(1, 8)], chunk_size=1
        )
        ticks = [e.tick for e in merged]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == len(ticks)

    def test_all_events_present(self):
        a = tiny_recording(1, 0)
        b = tiny_recording(2, 8)
        merged = interleave([a, b], chunk_size=1)
        assert len(merged) == len(a) + len(b)

    def test_round_robin_order(self):
        a = tiny_recording(1, 0)
        b = tiny_recording(2, 8)
        merged = interleave([a, b], chunk_size=1)
        destinations = [e.destination for e in merged]
        assert destinations[0] == mem(0)
        assert destinations[1] == mem(8)

    def test_location_offsets_applied(self):
        a = tiny_recording(1, 0)
        b = tiny_recording(2, 0)
        merged = interleave([a, b], location_offsets=[0, 0x1000])
        inserts = [e for e in merged if e.kind is FlowKind.INSERT]
        assert {e.destination for e in inserts} == {mem(0), mem(0x1000)}

    def test_tag_origin_metadata(self):
        merged = interleave([tiny_recording(1, 0), tiny_recording(1, 8)])
        origin = merged.meta["tag_origin"]
        assert set(origin.values()) == {0, 1}

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            interleave([tiny_recording(1, 0)], chunk_size=0)
        with pytest.raises(ValueError):
            interleave([tiny_recording(1, 0)], location_offsets=[1, 2])


class TestJointScenario:
    """The experiment the paper could not run: attack amid benchmark noise."""

    @pytest.fixture(scope="class")
    def joint_recording(self):
        attack = InMemoryAttack(variant="reverse_https", seed=0, **QUICK_ATTACK)
        noise = NetworkBenchmark(
            seed=1, connections=2, bytes_per_connection=64, rounds=1,
            config_files=1, bytes_per_file=32, heavy_hitter=False,
        )
        return interleave(
            [attack.record(), noise.record()],
            chunk_size=512,
            location_offsets=[0, 0x10000],
        )

    def test_attack_still_detected_under_joint_load(self, joint_recording):
        params = benchmark_params(
            crossover_copies=400.0, pollution_fraction=0.003
        )
        mitos = FarosSystem(mitos_config(params, all_flows=True))
        detected = mitos.replay(joint_recording).metrics.detected_bytes
        assert detected > 0

    def test_faros_still_blind_under_joint_load(self, joint_recording):
        params = benchmark_params(
            crossover_copies=400.0, pollution_fraction=0.003
        )
        faros = FarosSystem(stock_faros_config(params))
        assert faros.replay(joint_recording).metrics.detected_bytes == 0

    def test_joint_trace_is_bigger_than_parts(self, joint_recording):
        assert len(joint_recording) > 10_000
