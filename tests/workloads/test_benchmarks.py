"""Tests for the benchmark workload generators."""

import pytest

from repro.dift.flows import FlowKind
from repro.workloads.calibration import (
    benchmark_params,
    calibrated_tau_scale,
)
from repro.workloads.cpu import CpuBenchmark
from repro.workloads.filesystem import FileSystemBenchmark
from repro.workloads.network import NetworkBenchmark


def quick_network() -> NetworkBenchmark:
    return NetworkBenchmark(
        seed=7, connections=2, bytes_per_connection=64, rounds=1,
        config_files=1, bytes_per_file=32,
    )


class TestCalibration:
    def test_boundary_at_crossover(self):
        """At the calibrated point, the marginal cost is exactly zero."""
        from repro.core.costs import marginal_cost

        params = benchmark_params()
        crossover = 1200.0
        pollution = 0.005 * params.N_R
        marginal = marginal_cost(crossover, pollution, "netflow", params)
        assert marginal == pytest.approx(0.0, abs=1e-9)

    def test_rarer_tags_propagate_commoner_block(self):
        from repro.core.costs import marginal_cost

        params = benchmark_params()
        pollution = 0.005 * params.N_R
        assert marginal_cost(100, pollution, "netflow", params) < 0
        assert marginal_cost(10_000, pollution, "netflow", params) > 0

    def test_invalid_calibration_inputs(self):
        with pytest.raises(ValueError):
            calibrated_tau_scale(0, 0.01)
        with pytest.raises(ValueError):
            calibrated_tau_scale(100, 0)
        with pytest.raises(ValueError):
            calibrated_tau_scale(100, 0.01, tau=0)

    def test_calibration_alpha_is_reference(self):
        """Sweeping alpha must not move tau_scale (Fig. 8 needs this)."""
        scales = {
            alpha: benchmark_params(alpha=alpha).tau_scale
            for alpha in (0.5, 1.5, 4.0)
        }
        assert len(set(scales.values())) == 1


class TestNetworkBenchmark:
    def test_deterministic_given_seed(self):
        first = quick_network().record()
        second = quick_network().record()
        assert first.events == second.events

    def test_different_seeds_differ(self):
        a = NetworkBenchmark(seed=1, connections=2, bytes_per_connection=64,
                             rounds=1, config_files=0).record()
        b = NetworkBenchmark(seed=2, connections=2, bytes_per_connection=64,
                             rounds=1, config_files=0).record()
        assert a.events != b.events

    def test_contains_all_flow_classes(self):
        counts = quick_network().record().kind_counts()
        for kind in ("insert", "copy", "compute", "address_dep", "control_dep"):
            assert counts.get(kind, 0) > 0, f"missing {kind}"

    def test_tag_types_mixed(self):
        recording = quick_network().record()
        types = {
            event.tag.type
            for event in recording
            if event.kind is FlowKind.INSERT and event.tag is not None
        }
        assert "netflow" in types
        assert "file" in types

    def test_meta_recorded(self):
        recording = quick_network().record()
        assert recording.meta["workload"] == "network-benchmark"
        assert recording.meta["seed"] == 7
        # meta duration counts executed instructions, which is never less
        # than the last event tick (branches/jumps emit no events)
        assert recording.meta["duration_ticks"] >= recording.duration_ticks

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            NetworkBenchmark(connections=0)
        with pytest.raises(ValueError):
            NetworkBenchmark(bytes_per_connection=0)


class TestCpuBenchmark:
    def test_process_tags_inserted(self):
        recording = CpuBenchmark(
            seed=3, processes=2, bytes_per_process=48, rounds=1
        ).record()
        types = {
            e.tag.type for e in recording if e.kind is FlowKind.INSERT and e.tag
        }
        assert types == {"process"}

    def test_compute_heavy(self):
        counts = CpuBenchmark(
            seed=3, processes=2, bytes_per_process=48, rounds=1
        ).record().kind_counts()
        assert counts["compute"] > counts["insert"]

    def test_deterministic(self):
        kwargs = dict(seed=5, processes=2, bytes_per_process=32, rounds=1)
        assert CpuBenchmark(**kwargs).record().events == CpuBenchmark(
            **kwargs
        ).record().events


class TestFileSystemBenchmark:
    def test_file_tags_and_control_deps(self):
        recording = FileSystemBenchmark(
            seed=2, files=2, bytes_per_file=48, rounds=1
        ).record()
        counts = recording.kind_counts()
        assert counts.get("control_dep", 0) > 0
        types = {
            e.tag.type for e in recording if e.kind is FlowKind.INSERT and e.tag
        }
        assert types == {"file"}

    def test_writeback_reaches_file_sink(self):
        recording = FileSystemBenchmark(
            seed=2, files=1, bytes_per_file=16, rounds=1
        ).record()
        sinks = {
            e.destination[0]
            for e in recording
            if e.kind is FlowKind.COPY
        }
        assert "file" in sinks
