"""Tests for repro.isa.assembler."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.errors import AssemblerError
from repro.isa.instructions import Instruction, Op


class TestBasicParsing:
    def test_simple_program(self):
        program = assemble("movi r0, 5\nhalt")
        assert program.instructions == (
            Instruction(Op.MOVI, ("r0", 5)),
            Instruction(Op.HALT, ()),
        )

    def test_hex_immediates(self):
        program = assemble("movi r1, 0xFF\nhalt")
        assert program.instructions[0].operands == ("r1", 255)

    def test_negative_immediates(self):
        program = assemble("addi r1, r1, -1\nhalt")
        assert program.instructions[0].operands == ("r1", "r1", -1)

    def test_comments_and_blank_lines(self):
        program = assemble(
            """
            ; leading comment
            movi r0, 1   ; trailing comment

            halt
            """
        )
        assert len(program) == 2

    def test_case_insensitive_mnemonics(self):
        program = assemble("MOVI r0, 1\nHALT")
        assert program.instructions[0].op is Op.MOVI


class TestLabels:
    def test_label_resolution(self):
        program = assemble(
            """
            movi r0, 0
    loop:   addi r0, r0, 1
            bne r0, r1, loop
            halt
            """
        )
        assert program.labels == {"loop": 1}
        branch = program.instructions[2]
        assert branch.operands == ("r0", "r1", 1)

    def test_label_alone_on_line(self):
        program = assemble(
            """
            jmp end
    end:
            halt
            """
        )
        assert program.labels["end"] == 1
        assert program.instructions[0].operands == (1,)

    def test_forward_and_backward_references(self):
        program = assemble(
            """
    top:    beq r0, r1, bottom
            jmp top
    bottom: halt
            """
        )
        assert program.instructions[0].operands == ("r0", "r1", 2)
        assert program.instructions[1].operands == (0,)

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: halt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble("jmp nowhere\nhalt")

    def test_label_at_helper(self):
        program = assemble("x: halt")
        assert program.label_at("x") == 0
        with pytest.raises(KeyError):
            program.label_at("missing")


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError, match="unknown opcode"):
            assemble("frobnicate r0")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("movi r0")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="register"):
            assemble("movi r99, 1")

    def test_bad_immediate(self):
        with pytest.raises(AssemblerError, match="integer"):
            assemble("movi r0, banana")

    def test_error_reports_line_number(self):
        try:
            assemble("nop\nnop\nbogus r1")
        except AssemblerError as error:
            assert error.line_number == 3


class TestDirectives:
    def test_org_and_byte(self):
        program = assemble(
            """
            .org 0x100
            .byte 1, 2, 3
            halt
            """
        )
        assert program.data == {0x100: b"\x01\x02\x03"}

    def test_ascii(self):
        program = assemble('.org 32\n.ascii "hi"\nhalt')
        assert program.data == {32: b"hi"}

    def test_zero(self):
        program = assemble(".org 8\n.zero 4\nhalt")
        assert program.data == {8: b"\x00" * 4}

    def test_consecutive_directives_concatenate(self):
        program = assemble('.org 0\n.byte 1\n.byte 2\nhalt')
        # cursor advances; the two blobs land at addresses 0 and 1
        blob = b"".join(
            program.data[addr] for addr in sorted(program.data)
        )
        assert blob == b"\x01\x02"

    def test_byte_range_checked(self):
        with pytest.raises(AssemblerError):
            assemble(".byte 300")

    def test_unknown_directive(self):
        with pytest.raises(AssemblerError, match="directive"):
            assemble(".wat 1")

    def test_ascii_requires_quotes(self):
        with pytest.raises(AssemblerError):
            assemble(".ascii hi")

    def test_semicolon_inside_string_kept(self):
        program = assemble('.org 0\n.ascii "a;b"\nhalt')
        assert program.data[0] == b"a;b"
