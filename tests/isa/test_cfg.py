"""Tests for repro.isa.cfg (post-dominators and control scopes)."""

from repro.isa.assembler import assemble
from repro.isa.cfg import EXIT, ControlFlowGraph


def cfg_of(source: str) -> ControlFlowGraph:
    return ControlFlowGraph(assemble(source))


class TestDiamond:
    SOURCE = """
            beq r0, r1, right   ; 0
            movi r2, 1          ; 1 (left arm)
            jmp join            ; 2
    right:  movi r2, 2          ; 3 (right arm)
    join:   halt                ; 4
    """

    def test_ipostdom_is_join(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.ipostdom(0) == 4

    def test_scope_is_both_arms(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.control_scope(0) == frozenset({1, 2, 3})

    def test_scope_join(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.scope_join(0) == 4

    def test_non_branch_scope_empty(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.control_scope(1) == frozenset()

    def test_branches_listed(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.branches() == [0]


class TestIfWithoutElse:
    SOURCE = """
            bne r0, r1, skip    ; 0
            movi r2, 1          ; 1 (guarded write)
    skip:   halt                ; 2
    """

    def test_scope_is_guarded_body(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.control_scope(0) == frozenset({1})
        assert cfg.scope_join(0) == 2


class TestLoop:
    SOURCE = """
            movi r0, 0          ; 0
    loop:   addi r0, r0, 1      ; 1
            blt r0, r1, loop    ; 2
            halt                ; 3
    """

    def test_loop_branch_scope_is_body(self):
        cfg = cfg_of(self.SOURCE)
        # back edge: scope covers the loop body (including the branch via
        # the cycle) but not the exit instruction
        scope = cfg.control_scope(2)
        assert 1 in scope
        assert 3 not in scope
        assert cfg.scope_join(2) == 3


class TestNestedBranches:
    SOURCE = """
            beq r0, r1, outer_join   ; 0
            bne r2, r3, inner_skip   ; 1
            movi r4, 1               ; 2
    inner_skip:
            movi r5, 2               ; 3
    outer_join:
            halt                     ; 4
    """

    def test_outer_scope_contains_inner(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.control_scope(0) == frozenset({1, 2, 3})

    def test_inner_scope_is_inner_body_only(self):
        cfg = cfg_of(self.SOURCE)
        assert cfg.control_scope(1) == frozenset({2})
        assert cfg.scope_join(1) == 3


class TestDegenerate:
    def test_branch_to_next_instruction_has_empty_scope(self):
        cfg = cfg_of(
            """
            beq r0, r1, next    ; 0
    next:   halt                ; 1
            """
        )
        assert cfg.control_scope(0) == frozenset()

    def test_straightline_program(self):
        cfg = cfg_of("movi r0, 1\nmovi r1, 2\nhalt")
        assert cfg.branches() == []
        assert cfg.ipostdom(0) == 1
        assert cfg.ipostdom(2) == EXIT

    def test_program_falling_off_end(self):
        cfg = cfg_of("movi r0, 1\nnop")
        assert cfg.ipostdom(1) == EXIT

    def test_exit_edges_present(self):
        cfg = cfg_of("halt")
        assert (0, EXIT) in cfg.edges()
