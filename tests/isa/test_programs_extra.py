"""Tests for the RLE-decode and header-parse kernels."""


from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy, PropagateNonePolicy
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.isa.machine import Machine
from repro.isa.programs import header_parse, rle_decode

SRC, DST = 0x100, 0x400
NET = Tag("netflow", 1)


def tracked(program, policy):
    params = MitosParams(R=1 << 16, M_prov=10, tau_scale=1.0)
    tracker = DIFTTracker(params, policy)
    machine = Machine(program, event_sink=tracker.process)
    return machine, tracker


def taint(tracker, start, length):
    for i in range(length):
        tracker.process(flows.insert(mem(start + i), NET))


class TestRleDecode:
    def run_rle(self, pairs_bytes, policy=None):
        pairs = len(pairs_bytes) // 2
        machine, tracker = tracked(
            rle_decode(SRC, DST, pairs), policy or PropagateAllPolicy()
        )
        machine.memory.write_bytes(SRC, bytes(pairs_bytes))
        taint(tracker, SRC, len(pairs_bytes))
        machine.run()
        return machine, tracker

    def test_expansion_values(self):
        machine, _ = self.run_rle([3, ord("a"), 2, ord("b")])
        assert machine.memory_bytes(DST, 5) == b"aaabb"

    def test_zero_length_run(self):
        machine, _ = self.run_rle([0, ord("x"), 2, ord("y")])
        assert machine.memory_bytes(DST, 2) == b"yy"

    def test_output_values_tainted_directly(self):
        _, tracker = self.run_rle([2, 7], PropagateNonePolicy())
        # the run value flows via a plain copy: tainted even DFP-only
        assert tracker.shadow.is_tainted(mem(DST))
        assert tracker.shadow.is_tainted(mem(DST + 1))

    def test_run_length_influences_via_control_deps_only(self):
        """The count byte reaches the output only through the tainted
        loop condition -- visible with IFP, invisible without."""
        _, with_ifp = self.run_rle([2, 7], PropagateAllPolicy())
        _, without = self.run_rle([2, 7], PropagateNonePolicy())
        assert with_ifp.stats.ifp_control > 0
        # with IFP the emitted bytes carry strictly more history
        with_tags = with_ifp.shadow.tags_at(mem(DST))
        without_tags = without.shadow.tags_at(mem(DST))
        assert set(without_tags) <= set(with_tags)


class TestHeaderParse:
    def run_parse(self, header, policy=None):
        machine, tracker = tracked(
            header_parse(SRC, DST), policy or PropagateAllPolicy()
        )
        machine.memory.write_bytes(SRC, bytes(header))
        taint(tracker, SRC, len(header))
        machine.run()
        return machine, tracker

    def test_type1_selects_field_a(self):
        machine, _ = self.run_parse([1, 0xAA, 0xBB])
        assert machine.memory.read_byte(DST) == 0xAA

    def test_type2_selects_field_b(self):
        machine, _ = self.run_parse([2, 0xAA, 0xBB])
        assert machine.memory.read_byte(DST) == 0xBB

    def test_unknown_type_marker(self):
        machine, _ = self.run_parse([9, 0xAA, 0xBB])
        assert machine.memory.read_byte(DST) == 0xEE

    def test_field_carries_direct_taint(self):
        _, tracker = self.run_parse([1, 0xAA, 0xBB], PropagateNonePolicy())
        assert tracker.shadow.is_tainted(mem(DST))

    def test_default_case_taint_is_control_only(self):
        """The 0xEE marker is a constant: its dependence on the header is
        purely a control dependency."""
        _, without = self.run_parse([9, 0xAA, 0xBB], PropagateNonePolicy())
        assert not without.shadow.is_tainted(mem(DST))
        _, with_ifp = self.run_parse([9, 0xAA, 0xBB], PropagateAllPolicy())
        assert with_ifp.shadow.is_tainted(mem(DST))
