"""Tests for repro.isa.machine: semantics and emitted flow events."""

import pytest

from repro.dift.flows import FlowKind
from repro.dift.shadow import mem, reg
from repro.dift.tags import TagAllocator
from repro.isa.assembler import assemble
from repro.isa.devices import FileDevice, NetworkDevice, OutputDevice
from repro.isa.errors import ExecutionLimitExceeded, SegmentationFault
from repro.isa.machine import Machine


def run(source: str, **kwargs) -> Machine:
    machine = Machine(assemble(source), **kwargs)
    machine.run()
    return machine


def events_of(machine: Machine, kind: FlowKind) -> list:
    return [e for e in machine.trace if e.kind is kind]


class TestArithmetic:
    def test_movi_and_mov(self):
        machine = run("movi r0, 7\nmov r1, r0\nhalt")
        assert machine.registers["r0"] == 7
        assert machine.registers["r1"] == 7

    def test_alu_ops(self):
        machine = run(
            """
            movi r1, 12
            movi r2, 5
            add r3, r1, r2
            sub r4, r1, r2
            mul r5, r1, r2
            xor r6, r1, r2
            and r7, r1, r2
            or  r8, r1, r2
            shl r9, r1, r2
            shr r10, r1, r2
            halt
            """
        )
        assert machine.registers["r3"] == 17
        assert machine.registers["r4"] == 7
        assert machine.registers["r5"] == 60
        assert machine.registers["r6"] == 9
        assert machine.registers["r7"] == 4
        assert machine.registers["r8"] == 13
        assert machine.registers["r9"] == 12 << 5
        assert machine.registers["r10"] == 0

    def test_32bit_wraparound(self):
        machine = run(
            """
            movi r1, 0xFFFFFFFF
            addi r1, r1, 1
            halt
            """
        )
        assert machine.registers["r1"] == 0

    def test_sub_wraps_negative(self):
        machine = run("movi r1, 0\nmovi r2, 1\nsub r3, r1, r2\nhalt")
        assert machine.registers["r3"] == 0xFFFFFFFF

    def test_addi(self):
        machine = run("movi r0, 10\naddi r0, r0, -3\nhalt")
        assert machine.registers["r0"] == 7


class TestMemoryOps:
    def test_load_store_round_trip(self):
        machine = run(
            """
            movi r0, 0x40
            movi r1, 0xAB
            sb r1, r0, 0
            lb r2, r0, 0
            halt
            """
        )
        assert machine.registers["r2"] == 0xAB

    def test_offset_addressing(self):
        machine = run(
            """
            movi r0, 0x40
            movi r1, 9
            sb r1, r0, 5
            lb r2, r0, 5
            halt
            """
        )
        assert machine.memory.read_byte(0x45) == 9
        assert machine.registers["r2"] == 9

    def test_data_image_loaded(self):
        machine = Machine(assemble('.org 0x10\n.ascii "ok"\nhalt'))
        assert machine.memory_bytes(0x10, 2) == b"ok"

    def test_segfault_propagates(self):
        with pytest.raises(SegmentationFault):
            run("movi r0, 0xFFFFF\nlb r1, r0, 0\nhalt", memory_size=256)


class TestControlFlow:
    def test_taken_branch(self):
        machine = run(
            """
            movi r0, 1
            movi r1, 1
            beq r0, r1, skip
            movi r2, 99
    skip:   halt
            """
        )
        assert machine.registers["r2"] == 0

    def test_not_taken_branch(self):
        machine = run(
            """
            movi r0, 1
            beq r0, r1, skip
            movi r2, 99
    skip:   halt
            """
        )
        assert machine.registers["r2"] == 99

    def test_loop_terminates(self):
        machine = run(
            """
            movi r0, 0
            movi r1, 10
    loop:   addi r0, r0, 1
            blt r0, r1, loop
            halt
            """
        )
        assert machine.registers["r0"] == 10

    def test_falling_off_end_halts(self):
        machine = run("movi r0, 1\nnop")
        assert machine.halted

    def test_infinite_loop_hits_step_budget(self):
        with pytest.raises(ExecutionLimitExceeded):
            run("loop: jmp loop", max_steps=100)

    def test_step_after_halt_is_noop(self):
        machine = run("halt")
        before = machine.steps
        machine.step()
        assert machine.steps == before


class TestEmittedEvents:
    def test_movi_emits_clear(self):
        machine = run("movi r0, 1\nhalt")
        clears = events_of(machine, FlowKind.CLEAR)
        assert len(clears) == 1
        assert clears[0].destination == reg("r0")

    def test_mov_emits_copy(self):
        machine = run("movi r0, 1\nmov r1, r0\nhalt")
        copies = events_of(machine, FlowKind.COPY)
        assert copies[0].sources == (reg("r0"),)
        assert copies[0].destination == reg("r1")

    def test_alu_emits_compute(self):
        machine = run("add r2, r0, r1\nhalt")
        computes = events_of(machine, FlowKind.COMPUTE)
        assert computes[0].sources == (reg("r0"), reg("r1"))

    def test_load_emits_copy_and_address_dep(self):
        machine = run("movi r0, 0x40\nlb r1, r0, 0\nhalt")
        copies = events_of(machine, FlowKind.COPY)
        deps = events_of(machine, FlowKind.ADDRESS_DEP)
        assert copies[0].sources == (mem(0x40),)
        assert deps[0].sources == (reg("r0"),)
        assert deps[0].destination == reg("r1")

    def test_store_emits_copy_and_address_dep(self):
        machine = run("movi r0, 0x40\nmovi r1, 7\nsb r1, r0, 0\nhalt")
        deps = events_of(machine, FlowKind.ADDRESS_DEP)
        assert deps[0].sources == (reg("r0"),)
        assert deps[0].destination == mem(0x40)

    def test_address_deps_suppressible(self):
        machine = run(
            "movi r0, 0x40\nlb r1, r0, 0\nhalt", emit_address_deps=False
        )
        assert events_of(machine, FlowKind.ADDRESS_DEP) == []

    def test_control_dep_inside_branch_scope(self):
        machine = run(
            """
            movi r0, 1
            beq r0, r1, skip
            movi r2, 5
    skip:   halt
            """
        )
        control = events_of(machine, FlowKind.CONTROL_DEP)
        assert len(control) == 1
        assert control[0].destination == reg("r2")
        assert set(control[0].sources) == {reg("r0"), reg("r1")}

    def test_no_control_dep_after_join(self):
        machine = run(
            """
            beq r0, r1, join
            nop
    join:   movi r2, 5
            halt
            """
        )
        control = events_of(machine, FlowKind.CONTROL_DEP)
        assert all(e.destination != reg("r2") for e in control)

    def test_taken_branch_skips_scope_writes(self):
        machine = run(
            """
            movi r0, 1
            movi r1, 1
            beq r0, r1, skip
            movi r2, 5
    skip:   movi r3, 6
            halt
            """
        )
        control = events_of(machine, FlowKind.CONTROL_DEP)
        # the guarded write never executed and r3 is at the join
        assert control == []

    def test_control_deps_suppressible(self):
        machine = run(
            """
            beq r0, r1, skip
            movi r2, 5
    skip:   halt
            """,
            emit_control_deps=False,
        )
        assert events_of(machine, FlowKind.CONTROL_DEP) == []

    def test_nested_scopes_union_conditions(self):
        machine = run(
            """
            movi r0, 1
            beq r0, r9, outer    ; not taken: enter scope
            bne r0, r8, inner    ; taken: enter scope
    inner:  movi r2, 5
    outer:  halt
            """
        )
        control = [
            e
            for e in events_of(machine, FlowKind.CONTROL_DEP)
            if e.destination == reg("r2")
        ]
        assert len(control) == 1
        assert set(control[0].sources) >= {reg("r0"), reg("r9")}

    def test_loop_does_not_stack_frames(self):
        machine = Machine(
            assemble(
                """
                movi r0, 0
                movi r1, 50
        loop:   addi r0, r0, 1
                blt r0, r1, loop
                halt
                """
            )
        )
        machine.run()
        assert len(machine._control_stack) == 0

    def test_events_carry_monotonic_ticks(self):
        machine = run("movi r0, 1\nmov r1, r0\nmov r2, r1\nhalt")
        ticks = [e.tick for e in machine.trace]
        assert ticks == sorted(ticks)


class TestDevices:
    def test_in_reads_and_taints(self):
        alloc = TagAllocator()
        device = NetworkDevice(b"AB", alloc)
        machine = run("in r0, 0\nin r1, 0\nhalt", devices={0: device})
        assert machine.registers["r0"] == ord("A")
        assert machine.registers["r1"] == ord("B")
        inserts = events_of(machine, FlowKind.INSERT)
        assert len(inserts) == 2
        assert inserts[0].tag == device.tag

    def test_exhausted_device_reads_zero_untainted(self):
        alloc = TagAllocator()
        device = NetworkDevice(b"A", alloc)
        machine = run("in r0, 0\nin r1, 0\nhalt", devices={0: device})
        assert machine.registers["r1"] == 0
        assert len(events_of(machine, FlowKind.INSERT)) == 1

    def test_out_writes_to_device(self):
        sink = OutputDevice("console")
        machine = run(
            "movi r0, 65\nout r0, 3\nhalt", devices={3: sink}
        )
        assert sink.received == [65]
        copies = events_of(machine, FlowKind.COPY)
        assert copies[0].destination == ("dev", ("console", 0))

    def test_file_device_round_trip(self):
        alloc = TagAllocator()
        source = FileDevice(1, b"xy", alloc)
        dest = FileDevice(2, b"", alloc)
        run(
            """
            in r0, 1
            out r0, 2
            in r0, 1
            out r0, 2
            halt
            """,
            devices={1: source, 2: dest},
        )
        assert bytes(dest.written) == b"xy"

    def test_unmapped_port_is_null_device(self):
        machine = run("in r0, 9\nhalt")
        assert machine.registers["r0"] == 0
