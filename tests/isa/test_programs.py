"""Integration tests: canonical programs under different taint policies."""


from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy, PropagateNonePolicy
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import TagAllocator, TagTypes
from repro.dift.tracker import DIFTTracker
from repro.isa.devices import NetworkDevice
from repro.isa.machine import Machine
from repro.isa.programs import (
    checksum_program,
    file_copy,
    lookup_table_translate,
    memcpy_program,
    network_download,
    rc4_like_decode,
    tainted_branch_copy,
)

INPUT, TABLE, OUTPUT, SBOX = 0x100, 0x200, 0x400, 0x600


def make_tracker(policy) -> DIFTTracker:
    params = MitosParams(R=1 << 20, M_prov=10, tau_scale=1.0)
    return DIFTTracker(params, policy)


def taint_range(tracker, start: int, length: int, tag_type=TagTypes.NETFLOW):
    allocator = TagAllocator()
    tag = allocator.fresh(tag_type, origin="test")
    for i in range(length):
        tracker.process(flows.insert(mem(start + i), tag))
    return tag


def run_with_tracker(program, tracker, setup=None) -> Machine:
    machine = Machine(program, event_sink=tracker.process)
    if setup:
        setup(machine)
    machine.run()
    return machine


class TestLookupTableTranslate:
    """Fig. 1: taint flows to the output only via address dependencies."""

    LENGTH = 8

    def setup_memory(self, machine):
        machine.memory.write_bytes(TABLE, bytes((i + 1) % 256 for i in range(256)))
        machine.memory.write_bytes(INPUT, b"TAINTED!")

    def run_policy(self, policy):
        tracker = make_tracker(policy)
        taint_range(tracker, INPUT, self.LENGTH)
        machine = run_with_tracker(
            lookup_table_translate(INPUT, TABLE, OUTPUT, self.LENGTH),
            tracker,
            self.setup_memory,
        )
        tainted = sum(
            1 for i in range(self.LENGTH) if tracker.shadow.is_tainted(mem(OUTPUT + i))
        )
        return machine, tracker, tainted

    def test_values_translated(self):
        machine, _, _ = self.run_policy(PropagateAllPolicy())
        expected = bytes((b + 1) % 256 for b in b"TAINTED!")
        assert machine.memory_bytes(OUTPUT, self.LENGTH) == expected

    def test_undertainting_without_ifp(self):
        _, _, tainted = self.run_policy(PropagateNonePolicy())
        assert tainted == 0

    def test_full_taint_with_ifp(self):
        _, _, tainted = self.run_policy(PropagateAllPolicy())
        assert tainted == self.LENGTH

    def test_address_deps_counted(self):
        _, tracker, _ = self.run_policy(PropagateAllPolicy())
        # two loads per byte, one store per byte -> 3 address deps each
        assert tracker.stats.ifp_address == 3 * self.LENGTH


class TestRc4LikeDecode:
    LENGTH = 16

    def run_policy(self, policy):
        tracker = make_tracker(policy)
        taint_range(tracker, INPUT, self.LENGTH)
        program = rc4_like_decode(INPUT, OUTPUT, self.LENGTH, SBOX)

        def setup(machine):
            machine.memory.write_bytes(
                SBOX, bytes((i * 7 + 3) % 256 for i in range(256))
            )
            machine.memory.write_bytes(INPUT, bytes(range(self.LENGTH)))

        run_with_tracker(program, tracker, setup)
        return tracker

    def test_decode_output_tainted_only_with_ifp(self):
        without = self.run_policy(PropagateNonePolicy())
        with_ifp = self.run_policy(PropagateAllPolicy())
        untainted_out = sum(
            1 for i in range(self.LENGTH)
            if without.shadow.is_tainted(mem(OUTPUT + i))
        )
        tainted_out = sum(
            1 for i in range(self.LENGTH)
            if with_ifp.shadow.is_tainted(mem(OUTPUT + i))
        )
        # via xor the output keeps direct taint of the ciphertext byte,
        # so even DFP-only sees taint; IFP adds the keystream path and
        # never less
        assert tainted_out >= untainted_out


class TestTaintedBranchCopy:
    def test_only_executed_writes_get_control_taint(self):
        tracker = make_tracker(PropagateAllPolicy())
        taint_range(tracker, INPUT, 4)
        program = tainted_branch_copy(INPUT, OUTPUT, 4)

        def setup(machine):
            machine.memory.write_bytes(INPUT, bytes([0, 1, 2, 0]))

        machine = run_with_tracker(program, tracker, setup)
        assert list(machine.memory_bytes(OUTPUT, 4)) == [0, 1, 1, 0]
        taint = [tracker.shadow.is_tainted(mem(OUTPUT + i)) for i in range(4)]
        # dynamic control-dep tracking sees only the taken side: nonzero
        # inputs taint their outputs, zero inputs do not (the DTA++
        # blindspot, faithfully reproduced)
        assert taint == [False, True, True, False]

    def test_no_taint_at_all_without_ifp(self):
        tracker = make_tracker(PropagateNonePolicy())
        taint_range(tracker, INPUT, 4)
        program = tainted_branch_copy(INPUT, OUTPUT, 4)

        def setup(machine):
            machine.memory.write_bytes(INPUT, bytes([0, 1, 2, 0]))

        run_with_tracker(program, tracker, setup)
        assert not any(
            tracker.shadow.is_tainted(mem(OUTPUT + i)) for i in range(4)
        )


class TestDirectFlowKernels:
    def test_memcpy_taints_destination_without_ifp(self):
        tracker = make_tracker(PropagateNonePolicy())
        tag = taint_range(tracker, INPUT, 8)
        program = memcpy_program(INPUT, OUTPUT, 8)

        def setup(machine):
            machine.memory.write_bytes(INPUT, b"ABCDEFGH")

        machine = run_with_tracker(program, tracker, setup)
        assert machine.memory_bytes(OUTPUT, 8) == b"ABCDEFGH"
        assert all(
            tag in tracker.shadow.tags_at(mem(OUTPUT + i)) for i in range(8)
        )

    def test_checksum_accumulates_taint_in_register(self):
        tracker = make_tracker(PropagateNonePolicy())
        tag = taint_range(tracker, INPUT, 4)
        program = checksum_program(INPUT, 4)

        def setup(machine):
            machine.memory.write_bytes(INPUT, bytes([1, 2, 3, 4]))

        machine = run_with_tracker(program, tracker, setup)
        assert machine.registers["r5"] == 10
        from repro.dift.shadow import reg as reg_loc

        assert tag in tracker.shadow.tags_at(reg_loc("r5"))


class TestDevicePrograms:
    def test_network_download_taints_buffer(self):
        tracker = make_tracker(PropagateNonePolicy())
        allocator = TagAllocator()
        device = NetworkDevice(b"payload!", allocator)
        program = network_download(OUTPUT, 8)
        machine = Machine(program, devices={0: device}, event_sink=tracker.process)
        machine.run()
        assert machine.memory_bytes(OUTPUT, 8) == b"payload!"
        assert all(
            device.tag in tracker.shadow.tags_at(mem(OUTPUT + i))
            for i in range(8)
        )

    def test_file_copy_moves_bytes(self):
        from repro.isa.devices import FileDevice

        tracker = make_tracker(PropagateNonePolicy())
        allocator = TagAllocator()
        source = FileDevice(1, b"data", allocator)
        dest = FileDevice(2, b"", allocator)
        machine = Machine(
            file_copy(4), devices={1: source, 2: dest},
            event_sink=tracker.process,
        )
        machine.run()
        assert bytes(dest.written) == b"data"
