"""Tests for repro.isa.disassembler, including round-trip properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.instructions import Instruction, Op, Program
from repro.isa.memory import Memory
from repro.isa.programs import (
    lookup_table_translate,
    memcpy_program,
    rc4_like_decode,
    stack_churn,
    tainted_branch_copy,
)


def round_trip(program: Program) -> Program:
    return assemble(disassemble(program))


class TestRoundTripCanonical:
    def test_all_canonical_programs(self):
        programs = [
            lookup_table_translate(0x100, 0x200, 0x400, 8),
            memcpy_program(0x100, 0x200, 8),
            rc4_like_decode(0x100, 0x400, 8, 0x200),
            tainted_branch_copy(0x100, 0x400, 8),
            stack_churn(0x100, 0x4000, 8),
        ]
        for program in programs:
            assert round_trip(program).instructions == program.instructions

    def test_data_image_preserved(self):
        program = assemble(
            '.org 0x20\n.byte 1, 2, 3\n.org 0x100\n.ascii "hello world"\nmovi r0, 1\nhalt'
        )
        restored = round_trip(program)
        # chunking may differ; the memory images must match
        original_memory = Memory(0x200)
        for address, blob in program.data.items():
            original_memory.write_bytes(address, blob)
        restored_memory = Memory(0x200)
        for address, blob in restored.data.items():
            restored_memory.write_bytes(address, blob)
        assert original_memory.read_bytes(0, 0x200) == restored_memory.read_bytes(
            0, 0x200
        )

    def test_trailing_branch_target(self):
        # a loop whose exit label is one past the last instruction
        program = assemble(
            """
    top:    addi r0, r0, 1
            blt r0, r1, top
            beq r0, r1, end
            nop
    end:
            """
        )
        assert round_trip(program).instructions == program.instructions

    def test_negative_immediates_survive(self):
        program = assemble("addi r1, r1, -7\nhalt")
        assert round_trip(program).instructions == program.instructions


_register = st.sampled_from([f"r{i}" for i in range(16)])
_imm = st.integers(-1000, 1000)


@st.composite
def random_programs(draw):
    """Random straight-line + branch programs with valid targets."""
    body_len = draw(st.integers(1, 12))
    instructions = []
    for _ in range(body_len):
        choice = draw(st.integers(0, 5))
        if choice == 0:
            instructions.append(
                Instruction(Op.MOVI, (draw(_register), draw(_imm)))
            )
        elif choice == 1:
            instructions.append(
                Instruction(Op.MOV, (draw(_register), draw(_register)))
            )
        elif choice == 2:
            instructions.append(
                Instruction(
                    Op.ADD,
                    (draw(_register), draw(_register), draw(_register)),
                )
            )
        elif choice == 3:
            instructions.append(
                Instruction(
                    Op.LB, (draw(_register), draw(_register), draw(_imm))
                )
            )
        elif choice == 4:
            instructions.append(Instruction(Op.NOP, ()))
        else:
            target = draw(st.integers(0, body_len))
            instructions.append(
                Instruction(
                    Op.BEQ, (draw(_register), draw(_register), target)
                )
            )
    instructions.append(Instruction(Op.HALT, ()))
    return Program(instructions=tuple(instructions))


class TestRoundTripProperty:
    @given(program=random_programs())
    @settings(max_examples=100)
    def test_instructions_survive_round_trip(self, program):
        assert round_trip(program).instructions == program.instructions
