"""Property-based tests for machine semantics and trace determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy, PropagateNonePolicy
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.isa.errors import ExecutionLimitExceeded, SegmentationFault
from repro.isa.machine import Machine
from repro.isa.programs import (
    checksum_program,
    lookup_table_translate,
    memcpy_program,
)

SRC, TABLE, DST = 0x100, 0x200, 0x400

payloads = st.binary(min_size=1, max_size=48)


def tracked_machine(program, policy):
    params = MitosParams(R=1 << 16, M_prov=10, tau_scale=1.0)
    tracker = DIFTTracker(params, policy)
    machine = Machine(program, event_sink=tracker.process)
    return machine, tracker


class TestValueSemantics:
    @given(payload=payloads)
    @settings(max_examples=30)
    def test_memcpy_copies_exactly(self, payload):
        machine = Machine(memcpy_program(SRC, DST, len(payload)))
        machine.memory.write_bytes(SRC, payload)
        machine.run()
        assert machine.memory_bytes(DST, len(payload)) == payload

    @given(payload=payloads)
    @settings(max_examples=30)
    def test_checksum_is_sum_mod_2_32(self, payload):
        machine = Machine(checksum_program(SRC, len(payload)))
        machine.memory.write_bytes(SRC, payload)
        machine.run()
        assert machine.registers["r5"] == sum(payload) & 0xFFFFFFFF

    @given(payload=payloads, table=st.binary(min_size=256, max_size=256))
    @settings(max_examples=30)
    def test_lookup_translate_applies_table(self, payload, table):
        machine = Machine(lookup_table_translate(SRC, TABLE, DST, len(payload)))
        machine.memory.write_bytes(SRC, payload)
        machine.memory.write_bytes(TABLE, table)
        machine.run()
        expected = bytes(table[b] for b in payload)
        assert machine.memory_bytes(DST, len(payload)) == expected


class TestTaintSoundness:
    @given(payload=payloads)
    @settings(max_examples=20)
    def test_translate_output_fully_tainted_under_propagate_all(self, payload):
        """Ground truth: every output byte depends on its input byte."""
        program = lookup_table_translate(SRC, TABLE, DST, len(payload))
        machine, tracker = tracked_machine(program, PropagateAllPolicy())
        machine.memory.write_bytes(SRC, payload)
        machine.memory.write_bytes(TABLE, bytes(range(256)))
        tag = Tag("netflow", 1)
        for i in range(len(payload)):
            tracker.process(flows.insert(mem(SRC + i), tag))
        machine.run()
        assert all(
            tracker.shadow.is_tainted(mem(DST + i))
            for i in range(len(payload))
        )

    @given(payload=payloads)
    @settings(max_examples=20)
    def test_translate_output_untainted_without_ifp(self, payload):
        """The undertainting blindspot is total for the lookup kernel."""
        program = lookup_table_translate(SRC, TABLE, DST, len(payload))
        machine, tracker = tracked_machine(program, PropagateNonePolicy())
        machine.memory.write_bytes(SRC, payload)
        machine.memory.write_bytes(TABLE, bytes(range(256)))
        tag = Tag("netflow", 1)
        for i in range(len(payload)):
            tracker.process(flows.insert(mem(SRC + i), tag))
        machine.run()
        assert not any(
            tracker.shadow.is_tainted(mem(DST + i))
            for i in range(len(payload))
        )

    @given(payload=payloads)
    @settings(max_examples=20)
    def test_memcpy_preserves_taint_exactly(self, payload):
        program = memcpy_program(SRC, DST, len(payload))
        machine, tracker = tracked_machine(program, PropagateNonePolicy())
        machine.memory.write_bytes(SRC, payload)
        tag = Tag("netflow", 1)
        # taint only even offsets; the copy must mirror that pattern
        for i in range(0, len(payload), 2):
            tracker.process(flows.insert(mem(SRC + i), tag))
        machine.run()
        for i in range(len(payload)):
            assert tracker.shadow.is_tainted(mem(DST + i)) == (i % 2 == 0)


class TestDeterminism:
    @given(payload=payloads, seed=st.integers(0, 3))
    @settings(max_examples=20)
    def test_same_program_same_trace(self, payload, seed):
        def run_once():
            machine = Machine(memcpy_program(SRC, DST, len(payload)))
            machine.memory.write_bytes(SRC, payload)
            machine.run()
            return machine.trace, dict(machine.registers)

        first_trace, first_regs = run_once()
        second_trace, second_regs = run_once()
        assert first_trace == second_trace
        assert first_regs == second_regs

    @given(
        ops=st.lists(
            st.sampled_from(
                ["movi r0, 5", "mov r1, r0", "add r2, r0, r1", "nop"]
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30)
    def test_straightline_programs_always_halt(self, ops):
        from repro.isa.assembler import assemble

        machine = Machine(assemble("\n".join(ops + ["halt"])))
        try:
            machine.run(max_steps=100)
        except (ExecutionLimitExceeded, SegmentationFault):
            raise AssertionError("straight-line program failed to halt")
        assert machine.halted
