"""Tests for repro.isa.memory."""

import pytest

from repro.isa.errors import SegmentationFault
from repro.isa.memory import Memory


class TestBytes:
    def test_read_write_byte(self):
        memory = Memory(64)
        memory.write_byte(10, 0xAB)
        assert memory.read_byte(10) == 0xAB

    def test_byte_masking(self):
        memory = Memory(64)
        memory.write_byte(0, 0x1FF)
        assert memory.read_byte(0) == 0xFF

    def test_zero_initialized(self):
        memory = Memory(16)
        assert all(memory.read_byte(i) == 0 for i in range(16))

    def test_bulk_read_write(self):
        memory = Memory(64)
        memory.write_bytes(5, b"hello")
        assert memory.read_bytes(5, 5) == b"hello"

    def test_fill(self):
        memory = Memory(64)
        memory.fill(8, 4, 0x7)
        assert memory.read_bytes(8, 4) == b"\x07\x07\x07\x07"


class TestWords:
    def test_word_round_trip(self):
        memory = Memory(64)
        memory.write_word(12, 0xDEADBEEF)
        assert memory.read_word(12) == 0xDEADBEEF

    def test_little_endian(self):
        memory = Memory(64)
        memory.write_word(0, 0x01020304)
        assert memory.read_byte(0) == 0x04
        assert memory.read_byte(3) == 0x01

    def test_word_masking(self):
        memory = Memory(64)
        memory.write_word(0, 0x1_0000_0001)
        assert memory.read_word(0) == 1


class TestBounds:
    def test_negative_address(self):
        with pytest.raises(SegmentationFault):
            Memory(16).read_byte(-1)

    def test_past_end(self):
        with pytest.raises(SegmentationFault):
            Memory(16).read_byte(16)

    def test_word_straddling_end(self):
        with pytest.raises(SegmentationFault):
            Memory(16).read_word(14)

    def test_bulk_past_end(self):
        with pytest.raises(SegmentationFault):
            Memory(16).write_bytes(14, b"abcd")

    def test_fault_carries_details(self):
        try:
            Memory(16).read_byte(99)
        except SegmentationFault as fault:
            assert fault.address == 99
            assert fault.size == 16

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Memory(0)
