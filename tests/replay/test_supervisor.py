"""Tests for repro.replay.supervisor: policies, retries, metrics."""

import pytest

from repro.dift import flows
from repro.dift.shadow import mem
from repro.faults import FaultConfig, FaultInjector, TransientFault
from repro.obs.metrics import MetricsRegistry
from repro.replay.record import Recording
from repro.replay.replayer import Plugin, Replayer
from repro.replay.supervisor import (
    SUPERVISOR_POLICIES,
    PluginSupervisor,
    SupervisorStats,
)


def event():
    return flows.copy(mem(0), mem(1))


class FlakyPlugin(Plugin):
    """Fails the first ``failures`` dispatches, then succeeds."""

    name = "flaky"

    def __init__(self, failures, error=TransientFault):
        self.failures = failures
        self.error = error
        self.calls = 0
        self.processed = 0

    def on_event(self, e):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error("boom")
        self.processed += 1


class TestConstruction:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            PluginSupervisor(policy="restart-the-world")

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            PluginSupervisor(max_retries=-1)

    def test_policies_constant(self):
        assert set(SUPERVISOR_POLICIES) == {
            "fail-fast", "skip-event", "quarantine"
        }


class TestRetries:
    def test_transient_fault_retried_to_recovery(self):
        supervisor = PluginSupervisor(policy="skip-event", max_retries=2)
        plugin = FlakyPlugin(failures=2)
        assert supervisor.dispatch(plugin, event()) is True
        assert plugin.processed == 1
        assert supervisor.stats.retries == 2
        assert supervisor.stats.recoveries == 1
        assert supervisor.stats.transient_faults == 1

    def test_retry_budget_exhausted_applies_policy(self):
        supervisor = PluginSupervisor(policy="skip-event", max_retries=1)
        plugin = FlakyPlugin(failures=5)
        assert supervisor.dispatch(plugin, event()) is False
        assert supervisor.stats.skipped_events == 1
        assert plugin.calls == 2  # first attempt + one retry

    def test_non_transient_error_not_retried(self):
        supervisor = PluginSupervisor(policy="skip-event", max_retries=3)
        plugin = FlakyPlugin(failures=5, error=RuntimeError)
        assert supervisor.dispatch(plugin, event()) is False
        assert plugin.calls == 1
        assert supervisor.stats.retries == 0


class TestPolicies:
    def test_fail_fast_reraises(self):
        supervisor = PluginSupervisor(policy="fail-fast", max_retries=0)
        plugin = FlakyPlugin(failures=1)
        with pytest.raises(TransientFault):
            supervisor.dispatch(plugin, event())

    def test_skip_event_continues(self):
        supervisor = PluginSupervisor(policy="skip-event", max_retries=0)
        plugin = FlakyPlugin(failures=1)
        assert supervisor.dispatch(plugin, event()) is False
        assert supervisor.dispatch(plugin, event()) is True
        assert plugin.processed == 1

    def test_quarantine_stops_dispatching(self):
        supervisor = PluginSupervisor(policy="quarantine", max_retries=0)
        plugin = FlakyPlugin(failures=1)
        assert supervisor.dispatch(plugin, event()) is False
        assert supervisor.is_quarantined(plugin)
        # a healthy plugin keeps running; the quarantined one is skipped
        assert supervisor.dispatch(plugin, event()) is False
        assert plugin.calls == 1
        assert supervisor.stats.quarantined_plugins == 1

    def test_reset_clears_quarantine(self):
        supervisor = PluginSupervisor(policy="quarantine", max_retries=0)
        plugin = FlakyPlugin(failures=1)
        supervisor.dispatch(plugin, event())
        supervisor.reset()
        assert not supervisor.is_quarantined(plugin)
        assert supervisor.stats == SupervisorStats()


class TestMetricsBinding:
    def test_counters_flow_into_registry(self):
        registry = MetricsRegistry()
        supervisor = PluginSupervisor(
            policy="skip-event", max_retries=1, metrics=registry
        )
        supervisor.dispatch(FlakyPlugin(failures=1), event())
        counters = registry.as_dict()["counters"]
        assert counters["supervisor.faults"] == 1
        assert counters["supervisor.retries"] == 1
        assert counters["supervisor.recoveries"] == 1


class TestReplayerIntegration:
    def make_recording(self, n=20):
        return Recording(
            events=[flows.copy(mem(i), mem(i + 1), tick=i) for i in range(n)]
        )

    def test_supervised_replay_survives_flaky_plugin(self):
        recording = self.make_recording()
        plugin = FlakyPlugin(failures=3, error=RuntimeError)
        supervisor = PluginSupervisor(policy="skip-event", max_retries=0)
        replayer = Replayer([plugin], supervisor=supervisor)
        result = replayer.replay(recording)
        assert result.events_processed == len(recording)
        assert plugin.processed == len(recording) - 3
        assert supervisor.stats.skipped_events == 3

    def test_unsupervised_replay_still_fails_fast(self):
        recording = self.make_recording()
        plugin = FlakyPlugin(failures=1, error=RuntimeError)
        with pytest.raises(RuntimeError):
            Replayer([plugin]).replay(recording)

    def test_injected_faults_are_supervised(self):
        recording = self.make_recording(100)
        injector = FaultInjector(FaultConfig(seed=0, plugin_fault_rate=0.3))
        supervisor = PluginSupervisor(
            policy="skip-event", max_retries=3, injector=injector
        )
        plugin = FlakyPlugin(failures=0)
        replayer = Replayer([plugin], supervisor=supervisor)
        result = replayer.replay(recording)
        assert result.events_processed == 100
        assert supervisor.stats.faults > 0
        # with 3 retries at rate 0.3, nearly every fault recovers
        assert supervisor.stats.recoveries > 0
        assert (
            plugin.processed
            == 100 - supervisor.stats.skipped_events
        )

    def test_start_index_skips_prefix(self):
        recording = self.make_recording(10)
        plugin = FlakyPlugin(failures=0)
        result = Replayer(
            [plugin], supervisor=PluginSupervisor()
        ).replay(recording, start_index=4)
        assert result.events_processed == 6
        assert plugin.processed == 6

    def test_negative_start_index_rejected(self):
        with pytest.raises(ValueError):
            Replayer([]).replay(self.make_recording(1), start_index=-1)
