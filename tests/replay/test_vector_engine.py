"""Unit tests for the columnar vector replay engine (:mod:`repro.vector`).

The byte-identity guards over the full network recording live in
``benchmarks/test_bench_vector.py`` and the randomized equivalence
property lives in ``tests/replay/test_vector_equivalence.py``; this
module pins the individual layers -- encoder, activity plane, run
planner -- on small handcrafted recordings where every expectation can
be stated by hand.
"""

import json

import pytest

from repro.analysis.benchreport import engine_payload_job
from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy
from repro.dift import flows
from repro.dift.provenance import SchedulingPolicy
from repro.dift.shadow import mem
from repro.dift.snapshot import snapshot_tracker
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.faros import FarosSystem, mitos_config
from repro.faros.pipeline import FarosPipeline
from repro.parallel import Job, run_jobs
from repro.replay.record import Recording
from repro.replay.replayer import Replayer
from repro.replay.supervisor import PluginSupervisor
from repro.vector.encode import (
    KIND_CLEAR,
    KIND_COMPUTE,
    KIND_COPY,
    KIND_INSERT,
    encode_recording,
)
from repro.vector.engine import VectorEngineError
from repro.vector.plane import (
    TaintActivityPlane,
    batch_account,
    merge_context_counts,
)

PARAMS = MitosParams()


def mixed_recording(meta=None) -> Recording:
    """Twelve events covering every flow kind, hot and cold paths."""
    t_net = Tag("netflow", 1)
    t_file = Tag("file", 2)
    t_net2 = Tag("netflow", 3)
    events = [
        flows.insert(mem(0), t_net, tick=0, context="socket_read"),
        flows.insert(mem(1), t_file, tick=0, context="file_read"),
        flows.copy(mem(0), mem(2), tick=1, context="memcpy"),
        flows.compute((mem(0), mem(1)), mem(3), tick=1),
        flows.address_dep(mem(2), mem(4), tick=2, context="table_lookup"),
        flows.control_dep((mem(1),), mem(5), tick=2),
        flows.clear(mem(0), tick=3),
        flows.copy(mem(9), mem(2), tick=3),  # untainted source wipes dest
        flows.copy(mem(7), mem(8), tick=4),  # provably cold copy
        flows.insert(mem(6), t_net2, tick=5, context="socket_read"),
        flows.compute((mem(6), mem(4)), mem(7), tick=6),
        flows.clear(mem(9), tick=7),  # provably cold clear
    ]
    return Recording(events=events, meta=meta or {})


def _state_of(system) -> tuple:
    return (
        system.tracker.stats.to_payload(),
        json.dumps(snapshot_tracker(system.tracker), sort_keys=True),
        dict(system.pipeline.stage_counts),
    )


def _replay(recording, engine, params=PARAMS, **overrides):
    system = FarosSystem(mitos_config(params, engine=engine, **overrides))
    result = system.replay(recording)
    return system, result


class TestEncoder:
    def test_columns_mirror_events(self):
        recording = mixed_recording()
        columnar = encode_recording(recording)
        assert len(columnar) == len(recording.events)
        assert columnar.columns["kind"][0] == KIND_INSERT
        assert columnar.columns["kind"][2] == KIND_COPY
        assert columnar.columns["kind"][3] == KIND_COMPUTE
        assert columnar.columns["kind"][6] == KIND_CLEAR
        # the plain-list mirrors the hot loop reads must agree
        assert columnar.kinds == columnar.columns["kind"].tolist()
        assert columnar.dest_ids == columnar.columns["dest"].tolist()

    def test_interning_first_appearance_order(self):
        columnar = encode_recording(mixed_recording())
        assert columnar.contexts == [
            "socket_read",
            "file_read",
            "memcpy",
            "table_lookup",
        ]
        assert columnar.tag_types == ["netflow", "file"]
        assert len(columnar.locations) == len(set(columnar.locations))

    def test_absent_context_and_tag_encode_minus_one(self):
        columnar = encode_recording(mixed_recording())
        assert columnar.columns["ctx"][3] == -1  # compute has no context
        assert columnar.columns["tag_type"][2] == -1  # copy carries no tag

    def test_insert_positions(self):
        columnar = encode_recording(mixed_recording())
        assert columnar.insert_positions.tolist() == [0, 1, 9]

    def test_copy_relevance_direct_includes_destination(self):
        recording = mixed_recording()
        columnar = encode_recording(recording)
        src = columnar.locations.index(mem(0))
        dst = columnar.locations.index(mem(2))
        # direct COPY: replace_tags clears a tainted destination even
        # from an untainted source, so both ends are relevant
        assert 2 in columnar.postings[src]
        assert 2 in columnar.postings[dst]

    def test_copy_relevance_policy_mode_sources_only(self):
        recording = mixed_recording()
        columnar = encode_recording(recording, direct_via_policy=True)
        src = columnar.locations.index(mem(0))
        dst = columnar.locations.index(mem(2))
        assert 2 in columnar.postings[src]
        assert 2 not in columnar.postings[dst]

    def test_compute_duplicate_sources_deduplicated(self):
        recording = Recording(
            events=[flows.compute((mem(0), mem(0)), mem(1), tick=0)]
        )
        columnar = encode_recording(recording)
        src = columnar.locations.index(mem(0))
        assert columnar.postings[src] == [0]

    def test_encoding_cached_per_mode(self):
        recording = mixed_recording()
        first = encode_recording(recording)
        assert encode_recording(recording) is first
        policy_mode = encode_recording(recording, direct_via_policy=True)
        assert policy_mode is not first
        assert encode_recording(mixed_recording()) is not first


class TestActivityPlane:
    def test_inserts_are_always_hot(self):
        columnar = encode_recording(mixed_recording())
        plane = TaintActivityPlane(columnar)
        n = len(columnar)
        assert plane.next_hot(0, n) == 0
        assert plane.next_hot(2, n) == 9  # nothing active: skip to insert

    def test_activation_schedules_next_posting(self):
        columnar = encode_recording(mixed_recording())
        plane = TaintActivityPlane(columnar)
        n = len(columnar)
        loc = columnar.locations.index(mem(0))
        plane.set_active(loc, True, 0)
        assert plane.is_active(loc)
        assert plane.next_hot(2, n) == 2  # the copy out of mem(0)

    def test_lazy_deactivation_discards_scheduled_entries(self):
        columnar = encode_recording(mixed_recording())
        plane = TaintActivityPlane(columnar)
        n = len(columnar)
        loc = columnar.locations.index(mem(0))
        plane.set_active(loc, True, 0)
        plane.set_active(loc, False, 0)
        assert plane.next_hot(2, n) == 9  # stale heap entry is skipped

    def test_next_hot_exhausted_returns_end(self):
        columnar = encode_recording(mixed_recording())
        plane = TaintActivityPlane(columnar)
        n = len(columnar)
        assert plane.next_hot(10, n) == n

    def test_batch_account_counts(self):
        columnar = encode_recording(mixed_recording())
        accounts = batch_account(columnar, len(columnar))
        assert accounts.inserts == 3
        assert accounts.clears == 2
        assert accounts.dfp_copy == 3
        assert accounts.dfp_compute == 2
        assert accounts.ifp_address == 1
        assert accounts.ifp_control == 1
        assert accounts.is_dfp == 5
        assert accounts.is_ifp == 2
        assert accounts.tick_horizon == 8
        assert accounts.context_counts == [
            ("socket_read", 2),
            ("file_read", 1),
            ("memcpy", 1),
            ("table_lookup", 1),
        ]

    def test_batch_account_empty_window(self):
        columnar = encode_recording(mixed_recording())
        accounts = batch_account(columnar, 0)
        assert accounts.tick_horizon == 0
        assert int(accounts.kind_counts.sum()) == 0
        assert accounts.context_counts == []

    def test_merge_context_counts_preserves_order_and_adds(self):
        by_context = {"memcpy": 5}
        merge_context_counts(
            by_context, [("socket_read", 2), ("memcpy", 1)]
        )
        assert by_context == {"memcpy": 6, "socket_read": 2}
        assert list(by_context) == ["memcpy", "socket_read"]


class TestVectorEquivalence:
    def test_mixed_recording_state_identical(self):
        scalar, _ = _replay(mixed_recording(), "scalar")
        vector, _ = _replay(mixed_recording(), "vector")
        assert _state_of(scalar) == _state_of(vector)

    def test_direct_via_policy_state_identical(self):
        scalar, _ = _replay(mixed_recording(), "scalar", all_flows=True)
        vector, _ = _replay(mixed_recording(), "vector", all_flows=True)
        assert _state_of(scalar) == _state_of(vector)

    @pytest.mark.parametrize(
        "scheduling",
        [SchedulingPolicy.FIFO, SchedulingPolicy.LRU, SchedulingPolicy.REJECT],
    )
    def test_scheduling_policies_state_identical(self, scheduling):
        params = MitosParams(M_prov=2)
        scalar, _ = _replay(
            mixed_recording(), "scalar", params=params, scheduling=scheduling
        )
        vector, _ = _replay(
            mixed_recording(), "vector", params=params, scheduling=scheduling
        )
        assert _state_of(scalar) == _state_of(vector)

    def test_non_mitos_policy_falls_back_to_scalar_flows(self):
        # RandomPolicy is outside the policy fast path; the engine must
        # route per event through tracker._policy_flow and still agree
        def build(engine):
            config = mitos_config(PARAMS, engine=engine)
            config.policy = "random"
            config.random_probability = 0.5
            config.random_seed = 42
            system = FarosSystem(config)
            system.replay(mixed_recording())
            return system

        assert _state_of(build("scalar")) == _state_of(build("vector"))


class TestRunPlanner:
    def _replayer(self, engine="vector", **kwargs):
        tracker = DIFTTracker(params=PARAMS, policy=MitosPolicy(PARAMS))
        pipeline = FarosPipeline(tracker)
        return Replayer([pipeline], engine=engine, **kwargs), tracker

    def test_meta_reports_engine_and_hot_cold_split(self):
        replayer, _ = self._replayer()
        result = replayer.replay(mixed_recording(meta={"n": 12}))
        assert result.meta["engine"] == "vector"
        assert result.meta["hot_events"] + result.meta["cold_events"] == 12
        assert 0 < result.meta["hot_events"] < 12

    def test_limit_honored_and_equivalent(self):
        vec_replayer, vec_tracker = self._replayer("vector")
        result = vec_replayer.replay(mixed_recording(), limit=5)
        assert result.events_processed == 5
        sca_replayer, sca_tracker = self._replayer("scalar")
        sca_replayer.replay(mixed_recording(), limit=5)
        assert (
            vec_tracker.stats.to_payload() == sca_tracker.stats.to_payload()
        )
        assert json.dumps(
            snapshot_tracker(vec_tracker), sort_keys=True
        ) == json.dumps(snapshot_tracker(sca_tracker), sort_keys=True)

    def test_invalid_engine_name_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            Replayer([], engine="warp")

    def test_supervisor_blocks_vector_engine(self):
        replayer, _ = self._replayer(supervisor=PluginSupervisor())
        with pytest.raises(VectorEngineError, match="supervision"):
            replayer.replay(mixed_recording())

    def test_start_index_blocks_vector_engine(self):
        replayer, _ = self._replayer()
        with pytest.raises(VectorEngineError, match="resume"):
            replayer.replay(mixed_recording(), start_index=3)

    def test_requires_exactly_one_faros_pipeline(self):
        with pytest.raises(VectorEngineError, match="FarosPipeline"):
            Replayer([], engine="vector").replay(mixed_recording())

    def test_degrade_at_blocks_vector_engine(self):
        system = FarosSystem(
            mitos_config(PARAMS, engine="vector", degrade_at=0.5)
        )
        with pytest.raises(VectorEngineError, match="degrade"):
            system.replay(mixed_recording())

    def test_error_names_every_blocker(self):
        replayer, _ = self._replayer(supervisor=PluginSupervisor())
        with pytest.raises(VectorEngineError) as excinfo:
            replayer.replay(mixed_recording(), start_index=1)
        message = str(excinfo.value)
        assert "supervision" in message and "resume" in message

    def test_error_names_all_three_blockers_at_once(self):
        """Supervision, resume and degraded mode stacked together must
        all be named in one error -- not discovered one retry at a
        time."""
        tracker = DIFTTracker(
            params=PARAMS, policy=MitosPolicy(PARAMS), degrade_at=0.5
        )
        replayer = Replayer(
            [FarosPipeline(tracker)],
            engine="vector",
            supervisor=PluginSupervisor(),
        )
        with pytest.raises(VectorEngineError) as excinfo:
            replayer.replay(mixed_recording(), start_index=2)
        message = str(excinfo.value)
        assert "supervision" in message
        assert "resume" in message
        assert "degrade" in message


class TestParallelWorkers:
    def test_engines_compose_with_job_pool(self):
        """``--jobs``-style process-pool workers can run either engine;
        both must produce the identical stats payload for the identical
        seeded recording (engine_payload_job is module-level, so spawn
        workers actually pickle and run it)."""
        jobs = [
            Job(engine_payload_job, ("scalar",), (("quick", True),)),
            Job(engine_payload_job, ("vector",), (("quick", True),)),
        ]
        payloads = run_jobs(jobs, workers=2)
        assert payloads[0] == payloads[1]
        assert payloads[0]["inserts"] > 0
