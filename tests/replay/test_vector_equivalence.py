"""Property-based scalar/vector equivalence over randomized recordings.

Hypothesis generates adversarial little recordings -- arbitrary
interleavings of every flow kind over a small location pool, with mixed
contexts, tag types and re-tainting/clearing churn -- and asserts the
engine contract on each: the vector engine must reproduce the scalar
engine's stats payload, tracker snapshot (serialized, so dict *order*
counts) and pipeline stage counts exactly, with and without seeded
fault perturbation, across scheduling policies and the
``direct_via_policy`` routing mode.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import MitosParams
from repro.dift import flows
from repro.dift.provenance import SchedulingPolicy
from repro.dift.shadow import mem
from repro.dift.snapshot import snapshot_tracker
from repro.dift.tags import Tag
from repro.faros import FarosSystem, mitos_config
from repro.faults.injector import FaultConfig, FaultInjector
from repro.faults.resilience import Resilience
from repro.replay.record import Recording

LOCATIONS = list(range(8))
TAG_TYPES = ["netflow", "file", "export_table"]
CONTEXTS = ["", "socket_read", "loop_body", "table_lookup"]
KINDS = ["insert", "copy", "compute", "address", "control", "clear"]


@st.composite
def recordings(draw) -> Recording:
    n = draw(st.integers(min_value=1, max_value=50))
    events = []
    tag_serial = 0
    for position in range(n):
        kind = draw(st.sampled_from(KINDS))
        tick = position // 3
        context = draw(st.sampled_from(CONTEXTS))
        destination = mem(draw(st.sampled_from(LOCATIONS)))
        if kind == "insert":
            tag_serial += 1
            tag = Tag(draw(st.sampled_from(TAG_TYPES)), tag_serial)
            events.append(
                flows.insert(destination, tag, tick=tick, context=context)
            )
        elif kind == "copy":
            source = mem(draw(st.sampled_from(LOCATIONS)))
            events.append(
                flows.copy(source, destination, tick=tick, context=context)
            )
        elif kind == "clear":
            events.append(
                flows.clear(destination, tick=tick, context=context)
            )
        else:
            sources = tuple(
                mem(loc)
                for loc in draw(
                    st.lists(
                        st.sampled_from(LOCATIONS),
                        min_size=1,
                        max_size=3,
                    )
                )
            )
            if kind == "compute":
                events.append(
                    flows.compute(
                        sources, destination, tick=tick, context=context
                    )
                )
            elif kind == "address":
                events.append(
                    flows.address_dep(
                        sources[0], destination, tick=tick, context=context
                    )
                )
            else:
                events.append(
                    flows.control_dep(
                        sources, destination, tick=tick, context=context
                    )
                )
    return Recording(events=events)


def _state(recording, engine, fault_rate, fault_seed, **overrides):
    resilience = None
    if fault_rate:
        # injector-only: the stream is perturbed before the engine sees
        # it, so a fresh same-seeded injector per engine replays the
        # identical perturbed sequence through both
        resilience = Resilience(
            injector=FaultInjector(
                FaultConfig.uniform(fault_rate, seed=fault_seed)
            )
        )
    system = FarosSystem(
        mitos_config(MitosParams(M_prov=3), engine=engine, **overrides),
        resilience=resilience,
    )
    system.replay(recording)
    return (
        system.tracker.stats.to_payload(),
        json.dumps(snapshot_tracker(system.tracker), sort_keys=True),
        dict(system.pipeline.stage_counts),
    )


@settings(max_examples=40, deadline=None)
@given(
    recording=recordings(),
    scheduling=st.sampled_from(
        [SchedulingPolicy.FIFO, SchedulingPolicy.LRU, SchedulingPolicy.REJECT]
    ),
)
def test_engines_agree_on_random_recordings(recording, scheduling):
    scalar = _state(recording, "scalar", 0.0, 0, scheduling=scheduling)
    vector = _state(recording, "vector", 0.0, 0, scheduling=scheduling)
    assert scalar == vector


@settings(max_examples=25, deadline=None)
@given(
    recording=recordings(),
    fault_seed=st.integers(min_value=0, max_value=2**16),
)
def test_engines_agree_under_fault_perturbation(recording, fault_seed):
    scalar = _state(recording, "scalar", 0.2, fault_seed)
    vector = _state(recording, "vector", 0.2, fault_seed)
    assert scalar == vector


@settings(max_examples=25, deadline=None)
@given(recording=recordings())
def test_engines_agree_in_direct_via_policy_mode(recording):
    scalar = _state(recording, "scalar", 0.0, 0, all_flows=True)
    vector = _state(recording, "vector", 0.0, 0, all_flows=True)
    assert scalar == vector
