"""Tests for repro.replay.checkpoint: atomic writes, resume byte-identity."""

import gzip
import json

import pytest

from repro.experiments.common import experiment_params, network_recording
from repro.faros import FarosSystem, mitos_config
from repro.faults import Resilience
from repro.obs import Observability
from repro.obs.decisions import read_decision_trace
from repro.replay.checkpoint import (
    CheckpointError,
    CheckpointPlugin,
    previous_checkpoint_path,
    read_checkpoint,
    restore_checkpoint_state,
    write_checkpoint,
)


def quick_config():
    return mitos_config(experiment_params(quick=True))


def quick_recording():
    return network_recording(seed=0, quick=True)


class TestCheckpointFile:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        payload = {"version": 1, "kind": "replay-checkpoint", "event_index": 5}
        write_checkpoint(path, payload)
        assert read_checkpoint(path) == payload
        # atomic write leaves no temp file behind
        assert list(tmp_path.iterdir()) == [path]

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json.gz"
        payload = {"version": 1, "kind": "replay-checkpoint", "event_index": 0}
        write_checkpoint(path, payload)
        with gzip.open(path, "rt") as handle:
            assert json.load(handle) == payload
        assert read_checkpoint(path) == payload

    def test_read_errors_are_checkpoint_errors(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{{{not json")
        with pytest.raises(CheckpointError):
            read_checkpoint(bad)
        not_object = tmp_path / "list.json"
        not_object.write_text("[1, 2]")
        with pytest.raises(CheckpointError):
            read_checkpoint(not_object)

    def test_restore_validates_payload(self):
        system = FarosSystem(quick_config())
        with pytest.raises(CheckpointError):
            restore_checkpoint_state(system.tracker, {"kind": "snapshot"})
        with pytest.raises(CheckpointError):
            restore_checkpoint_state(
                system.tracker,
                {"kind": "replay-checkpoint", "version": 99},
            )
        with pytest.raises(CheckpointError):
            restore_checkpoint_state(
                system.tracker,
                {
                    "kind": "replay-checkpoint",
                    "version": 1,
                    "event_index": -3,
                },
            )


class TestCheckpointPlugin:
    def test_writes_every_n_events(self, tmp_path):
        path = tmp_path / "ckpt.json"
        system = FarosSystem(quick_config())
        plugin = CheckpointPlugin(
            system.tracker, path, every=100, pipeline=system.pipeline
        )
        system.replayer.add_plugin(plugin)
        recording = quick_recording()
        system.replay(recording)
        assert plugin.checkpoints_written == len(recording) // 100
        payload = read_checkpoint(path)
        assert payload["events_total"] == len(recording)
        assert payload["event_index"] % 100 == 0

    def test_rejects_bad_interval(self, tmp_path):
        system = FarosSystem(quick_config())
        with pytest.raises(ValueError):
            CheckpointPlugin(system.tracker, tmp_path / "c", every=0)


class TestResumeByteIdentity:
    """The PR's acceptance pin: killed-and-resumed == uninterrupted."""

    KILL_AT = 137  # deliberately not a multiple of the interval

    def run_uninterrupted(self):
        system = FarosSystem(quick_config())
        result = system.replay(quick_recording())
        return system, result

    def run_killed_then_resumed(self, tmp_path):
        recording = quick_recording()
        path = tmp_path / "ckpt.json"
        first = FarosSystem(
            quick_config(),
            resilience=Resilience.create(
                checkpoint_every=50, checkpoint_path=path
            ),
        )
        first.replay(recording, limit=self.KILL_AT)
        resumed = FarosSystem(
            quick_config(),
            resilience=Resilience.create(resume_from=path),
        )
        result = resumed.replay(recording)
        return resumed, result

    def test_tracker_stats_identical(self, tmp_path):
        _, full = self.run_uninterrupted()
        _, resumed = self.run_killed_then_resumed(tmp_path)
        assert resumed.tracker_stats == full.tracker_stats

    def test_stage_counts_identical(self, tmp_path):
        _, full = self.run_uninterrupted()
        _, resumed = self.run_killed_then_resumed(tmp_path)
        assert resumed.stage_counts == full.stage_counts

    def test_shadow_state_identical(self, tmp_path):
        full_system, _ = self.run_uninterrupted()
        resumed_system, _ = self.run_killed_then_resumed(tmp_path)
        full_shadow = full_system.tracker.shadow
        resumed_shadow = resumed_system.tracker.shadow
        assert (
            sorted(resumed_shadow.tainted_locations(), key=repr)
            == sorted(full_shadow.tainted_locations(), key=repr)
        )
        for location in full_shadow.tainted_locations():
            assert resumed_shadow.tags_at(location) == full_shadow.tags_at(
                location
            )
        assert (
            resumed_system.tracker.counter.snapshot()
            == full_system.tracker.counter.snapshot()
        )
        assert resumed_system.tracker.pollution() == pytest.approx(
            full_system.tracker.pollution()
        )

    def test_detector_state_identical(self, tmp_path):
        full_system, _ = self.run_uninterrupted()
        resumed_system, _ = self.run_killed_then_resumed(tmp_path)
        assert (
            resumed_system.detector.detected_bytes
            == full_system.detector.detected_bytes
        )
        assert (
            resumed_system.detector.flagged_snapshot()
            == full_system.detector.flagged_snapshot()
        )

    def test_decision_traces_concatenate_exactly(self, tmp_path):
        """Prefix trace + resumed trace == uninterrupted trace."""
        recording = quick_recording()

        full_trace = tmp_path / "full.jsonl"
        full = FarosSystem(
            quick_config(),
            observability=Observability.create(trace_out=full_trace),
        )
        full.replay(recording)
        full.obs.close()

        ckpt = tmp_path / "ckpt.json"
        prefix_trace = tmp_path / "prefix.jsonl"
        first = FarosSystem(
            quick_config(),
            observability=Observability.create(trace_out=prefix_trace),
            resilience=Resilience.create(
                checkpoint_every=50, checkpoint_path=ckpt
            ),
        )
        first.replay(recording, limit=self.KILL_AT)
        first.obs.close()

        resumed_trace = tmp_path / "resumed.jsonl"
        resumed = FarosSystem(
            quick_config(),
            observability=Observability.create(trace_out=resumed_trace),
            resilience=Resilience.create(resume_from=ckpt),
        )
        resumed.replay(recording)
        resumed.obs.close()

        full_records = list(read_decision_trace(full_trace))
        prefix_records = list(read_decision_trace(prefix_trace))
        resumed_records = list(read_decision_trace(resumed_trace))

        # the resumed run re-made every decision after the checkpoint
        # (at the last multiple of 50 before the kill), and those
        # decisions match the uninterrupted run's suffix exactly; the
        # decisions before the checkpoint are the prefix run's
        assert resumed_records  # the suffix is non-trivial
        kept = len(full_records) - len(resumed_records)
        assert kept >= 0
        assert full_records[kept:] == resumed_records
        assert full_records[:kept] == prefix_records[:kept]

    def test_resume_with_wrong_recording_rejected(self, tmp_path):
        recording = quick_recording()
        path = tmp_path / "ckpt.json"
        first = FarosSystem(
            quick_config(),
            resilience=Resilience.create(
                checkpoint_every=50, checkpoint_path=path
            ),
        )
        first.replay(recording, limit=self.KILL_AT)
        resumed = FarosSystem(
            quick_config(),
            resilience=Resilience.create(resume_from=path),
        )
        truncated = type(recording)(
            events=list(recording)[: len(recording) // 2],
            meta=dict(recording.meta),
        )
        with pytest.raises(CheckpointError):
            resumed.replay(truncated)


class TestResumeWithFaults:
    """Seeded faults re-derive identically across a resume."""

    def test_faulty_resume_matches_faulty_full_run(self, tmp_path):
        recording = quick_recording()

        def resilience(**kwargs):
            return Resilience.create(
                fault_rate=0.05, fault_seed=7, **kwargs
            )

        full = FarosSystem(quick_config(), resilience=resilience())
        full_result = full.replay(recording)

        path = tmp_path / "ckpt.json"
        first = FarosSystem(
            quick_config(),
            resilience=resilience(checkpoint_every=50, checkpoint_path=path),
        )
        first.replay(recording, limit=120)
        resumed = FarosSystem(
            quick_config(), resilience=resilience(resume_from=path)
        )
        resumed_result = resumed.replay(recording)
        assert resumed_result.tracker_stats == full_result.tracker_stats
        assert resumed_result.stage_counts == full_result.stage_counts


class TestCheckpointHardening:
    """Typed errors naming path+offset, and the .prev fallback layout."""

    PAYLOAD = {"version": 1, "kind": "replay-checkpoint", "event_index": 3}

    def test_truncated_gzip_names_path_and_offset(self, tmp_path):
        path = tmp_path / "ckpt.json.gz"
        write_checkpoint(path, self.PAYLOAD)
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])  # torn mid-write
        with pytest.raises(CheckpointError) as excinfo:
            read_checkpoint(path)
        error = excinfo.value
        assert error.path == path
        assert error.offset == len(whole) // 2
        assert "truncated or corrupt gzip" in str(error)

    def test_invalid_json_names_offset(self, tmp_path):
        path = tmp_path / "ckpt.json"
        text = '{"version": 1, "kind": !!!}'
        path.write_text(text)
        with pytest.raises(CheckpointError) as excinfo:
            read_checkpoint(path)
        error = excinfo.value
        assert error.path == path
        assert error.offset == text.index("!")

    def test_non_utf8_names_offset(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_bytes(b'{"a": 1}\xff\xfe')
        with pytest.raises(CheckpointError) as excinfo:
            read_checkpoint(path)
        assert excinfo.value.offset == 8

    def test_keep_previous_parks_the_old_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        older = dict(self.PAYLOAD, event_index=1)
        write_checkpoint(path, older, keep_previous=True)
        write_checkpoint(path, self.PAYLOAD, keep_previous=True)
        previous = previous_checkpoint_path(path)
        assert read_checkpoint(path) == self.PAYLOAD
        assert read_checkpoint(previous) == older

    def test_prev_of_gzip_checkpoint_still_reads(self, tmp_path):
        # the .prev suffix hides the .gz suffix; detection must go by
        # magic bytes, not file name
        path = tmp_path / "ckpt.json.gz"
        older = dict(self.PAYLOAD, event_index=1)
        write_checkpoint(path, older, keep_previous=True)
        write_checkpoint(path, self.PAYLOAD, keep_previous=True)
        previous = previous_checkpoint_path(path)
        assert previous.name == "ckpt.json.gz.prev"
        assert read_checkpoint(previous) == older

    def test_without_keep_previous_no_prev_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, self.PAYLOAD)
        write_checkpoint(path, dict(self.PAYLOAD, event_index=9))
        assert not previous_checkpoint_path(path).exists()
