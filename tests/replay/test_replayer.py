"""Tests for repro.replay.replayer."""

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.replay.record import Recording
from repro.replay.replayer import (
    CallbackPlugin,
    Plugin,
    Replayer,
    TrackerPlugin,
)


def recording_of(n: int = 5) -> Recording:
    tag = Tag("netflow", 1)
    events = [flows.insert(mem(i), tag, tick=i) for i in range(n)]
    return Recording(events=events, meta={"n": n})


class RecordingHooksPlugin(Plugin):
    def __init__(self):
        self.begun = 0
        self.events = 0
        self.ended = 0

    def on_begin(self, recording):
        self.begun += 1

    def on_event(self, event):
        self.events += 1

    def on_end(self):
        self.ended += 1


class TestReplayer:
    def test_hooks_called_in_order(self):
        plugin = RecordingHooksPlugin()
        result = Replayer([plugin]).replay(recording_of(4))
        assert (plugin.begun, plugin.events, plugin.ended) == (1, 4, 1)
        assert result.events_processed == 4

    def test_limit(self):
        plugin = RecordingHooksPlugin()
        result = Replayer([plugin]).replay(recording_of(10), limit=3)
        assert plugin.events == 3
        assert result.events_processed == 3

    def test_multiple_plugins_all_see_events(self):
        a, b = RecordingHooksPlugin(), RecordingHooksPlugin()
        Replayer([a]).add_plugin(b).replay(recording_of(2))
        assert a.events == b.events == 2

    def test_meta_propagated_to_result(self):
        result = Replayer().replay(recording_of(3))
        assert result.meta == {"n": 3}

    def test_events_per_second_positive(self):
        result = Replayer([RecordingHooksPlugin()]).replay(recording_of(5))
        assert result.events_per_second > 0

    def test_empty_recording(self):
        result = Replayer([RecordingHooksPlugin()]).replay(Recording())
        assert result.events_processed == 0


class TestTrackerPlugin:
    def make_tracker(self) -> DIFTTracker:
        params = MitosParams(R=1 << 16, M_prov=4, tau_scale=1.0)
        return DIFTTracker(params, PropagateAllPolicy())

    def test_tracker_processes_events(self):
        tracker = self.make_tracker()
        Replayer([TrackerPlugin(tracker)]).replay(recording_of(5))
        assert tracker.stats.inserts == 5

    def test_reset_on_begin(self):
        tracker = self.make_tracker()
        replayer = Replayer([TrackerPlugin(tracker)])
        replayer.replay(recording_of(5))
        replayer.replay(recording_of(5))
        # state was reset between replays: counts are per-replay
        assert tracker.stats.inserts == 5

    def test_no_reset_accumulates(self):
        tracker = self.make_tracker()
        replayer = Replayer([TrackerPlugin(tracker, reset_on_begin=False)])
        replayer.replay(recording_of(5))
        replayer.replay(recording_of(5))
        assert tracker.stats.inserts == 10


class TestCallbackPlugin:
    def test_callable_wrapped(self):
        seen = []
        Replayer([CallbackPlugin(seen.append)]).replay(recording_of(3))
        assert len(seen) == 3
