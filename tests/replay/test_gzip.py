"""Tests for gzip-compressed recordings."""

import gzip

from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.replay.record import Recording


def sample_recording(n: int = 50) -> Recording:
    tag = Tag("netflow", 1)
    return Recording(
        events=[flows.insert(mem(i), tag, tick=i) for i in range(n)],
        meta={"workload": "gz-test"},
    )


class TestGzipRecordings:
    def test_gz_round_trip(self, tmp_path):
        recording = sample_recording()
        path = tmp_path / "trace.jsonl.gz"
        recording.save(path)
        restored = Recording.load(path)
        assert restored.events == recording.events
        assert restored.meta == recording.meta

    def test_gz_file_is_actually_compressed(self, tmp_path):
        recording = sample_recording(500)
        plain = tmp_path / "trace.jsonl"
        compressed = tmp_path / "trace.jsonl.gz"
        recording.save(plain)
        recording.save(compressed)
        assert compressed.stat().st_size < plain.stat().st_size
        # and it is real gzip: decompressing yields the plain text
        assert gzip.decompress(compressed.read_bytes()).decode() == (
            plain.read_text()
        )

    def test_plain_path_unaffected(self, tmp_path):
        recording = sample_recording(5)
        path = tmp_path / "trace.jsonl"
        recording.save(path)
        assert path.read_text().startswith("{")
        assert Recording.load(path).events == recording.events
