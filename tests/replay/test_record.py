"""Tests for repro.replay.record: serialization round trips and corruption."""

import json

import pytest

from repro.dift import flows
from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.replay.record import (
    RecordError,
    Recording,
    RecordingError,
    event_from_dict,
    event_to_dict,
    record_machine,
)


def sample_events():
    return [
        flows.insert(mem(5), Tag("netflow", 1), tick=0, context="in"),
        flows.copy(mem(5), reg("r1"), tick=1, context="lb"),
        flows.compute((reg("r1"), reg("r2")), reg("r3"), tick=2),
        flows.address_dep(reg("r1"), mem(9), tick=3, context="sw"),
        flows.control_dep((reg("r4"), reg("r5")), mem(10), tick=4),
        flows.clear(reg("r1"), tick=5),
        FlowEvent(
            FlowKind.COPY,
            ("file", (3, 7)),
            sources=(("net_out", (("10.0.0.1", 443), 0)),),
            tick=6,
            meta={"pc": 12},
        ),
    ]


class TestEventSerialization:
    @pytest.mark.parametrize("event", sample_events())
    def test_round_trip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    def test_nested_tuple_locations_restored_exactly(self):
        event = sample_events()[-1]
        restored = event_from_dict(event_to_dict(event))
        assert restored.destination == ("file", (3, 7))
        assert isinstance(restored.destination[1], tuple)
        assert restored.sources[0][1][0] == ("10.0.0.1", 443)

    def test_malformed_payload(self):
        with pytest.raises(RecordError):
            event_from_dict({"kind": "no-such-kind", "dest": ["mem", 1]})
        with pytest.raises(RecordError):
            event_from_dict({"dest": ["mem", 1]})


class TestRecording:
    def test_append_extend_len_iter(self):
        recording = Recording()
        events = sample_events()
        recording.append(events[0])
        recording.extend(events[1:])
        assert len(recording) == len(events)
        assert list(recording) == events

    def test_duration_ticks(self):
        recording = Recording(events=sample_events())
        assert recording.duration_ticks == 7
        assert Recording().duration_ticks == 0

    def test_kind_counts(self):
        recording = Recording(events=sample_events())
        counts = recording.kind_counts()
        assert counts["copy"] == 2
        assert counts["insert"] == 1

    def test_jsonl_round_trip(self):
        recording = Recording(
            events=sample_events(), meta={"workload": "test", "seed": 3}
        )
        restored = Recording.from_jsonl(recording.to_jsonl())
        assert restored.meta == recording.meta
        assert restored.events == recording.events

    def test_file_round_trip(self, tmp_path):
        recording = Recording(events=sample_events(), meta={"x": 1})
        path = tmp_path / "trace.jsonl"
        recording.save(path)
        restored = Recording.load(path)
        assert restored.events == recording.events

    def test_empty_text(self):
        assert len(Recording.from_jsonl("")) == 0

    def test_corrupt_header(self):
        with pytest.raises(RecordError):
            Recording.from_jsonl("not json\n")
        with pytest.raises(RecordError):
            Recording.from_jsonl('{"no_meta": 1}\n')

    def test_corrupt_event_line(self):
        good = Recording(events=sample_events()[:1], meta={})
        text = good.to_jsonl() + "garbage{{{\n"
        with pytest.raises(RecordError):
            Recording.from_jsonl(text)

    def test_meta_with_tuples_survives(self):
        recording = Recording(meta={"origin": ("10.0.0.1", 443)})
        restored = Recording.from_jsonl(recording.to_jsonl())
        assert restored.meta["origin"] == ("10.0.0.1", 443)


class TestSchemaValidation:
    def test_unknown_key_named_with_line_number(self):
        good = Recording(events=sample_events()[:2], meta={})
        lines = good.to_jsonl().splitlines()
        payload = json.loads(lines[2])
        payload["bogus_field"] = 1
        lines[2] = json.dumps(payload)
        with pytest.raises(RecordingError) as excinfo:
            Recording.from_jsonl("\n".join(lines) + "\n")
        message = str(excinfo.value)
        assert "line 3" in message
        assert "bogus_field" in message

    def test_missing_required_key_named(self):
        good = Recording(events=sample_events()[:1], meta={})
        lines = good.to_jsonl().splitlines()
        payload = json.loads(lines[1])
        del payload["dest"]
        lines[1] = json.dumps(payload)
        with pytest.raises(RecordingError, match="dest"):
            Recording.from_jsonl("\n".join(lines) + "\n")

    def test_non_object_event_line_rejected(self):
        good = Recording(events=sample_events()[:1], meta={})
        with pytest.raises(RecordingError, match="line 3"):
            Recording.from_jsonl(good.to_jsonl() + "[1, 2, 3]\n")


class TestTruncatedFiles:
    """A recording chopped mid-write must fail loudly, naming the spot."""

    def full_recording(self):
        return Recording(events=sample_events(), meta={"seed": 1})

    def test_truncated_jsonl_names_line_and_offset(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self.full_recording().save(path)
        text = path.read_text()
        # chop mid-way through the final event line
        path.write_text(text[: len(text) - 25])
        with pytest.raises(RecordingError) as excinfo:
            Recording.load(path)
        message = str(excinfo.value)
        assert "line" in message
        assert "truncated" in message

    def test_truncated_gzip_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        self.full_recording().save(path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(RecordingError):
            Recording.load(path)

    def test_missing_file_is_recording_error(self, tmp_path):
        with pytest.raises(RecordingError):
            Recording.load(tmp_path / "nope.jsonl")

    def test_binary_garbage_is_recording_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_bytes(b"\xff\xfe\x00garbage\x00")
        with pytest.raises(RecordingError):
            Recording.load(path)

    def test_intact_file_still_round_trips(self, tmp_path):
        """The happy path survives the hardening."""
        recording = self.full_recording()
        for name in ("trace.jsonl", "trace.jsonl.gz"):
            path = tmp_path / name
            recording.save(path)
            restored = Recording.load(path)
            assert restored.events == recording.events
            assert restored.meta == recording.meta


class TestRecordMachine:
    def test_captures_machine_events(self):
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine

        machine = Machine(assemble("movi r0, 1\nmov r1, r0\nhalt"))
        recording = record_machine(machine, meta={"prog": "tiny"})
        assert len(recording) == 2
        assert recording.meta["prog"] == "tiny"

    def test_replay_equals_rerecord(self):
        """Determinism: recording the same program twice is identical."""
        from repro.isa.assembler import assemble
        from repro.isa.machine import Machine
        from repro.isa.programs import memcpy_program

        program = memcpy_program(0x100, 0x200, 16)
        first = record_machine(Machine(program))
        second = record_machine(Machine(program))
        assert first.events == second.events
