"""Property-based serialization tests for recordings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.tags import Tag
from repro.replay.record import Recording

locations = st.one_of(
    st.tuples(st.just("mem"), st.integers(0, 1 << 20)),
    st.tuples(st.just("reg"), st.sampled_from([f"r{i}" for i in range(16)])),
    st.tuples(
        st.just("file"),
        st.tuples(st.integers(0, 9), st.integers(0, 99)),
    ),
)

tags = st.builds(
    Tag,
    type=st.sampled_from(["netflow", "file", "process", "export_table"]),
    index=st.integers(1, 99),
)


@st.composite
def events(draw):
    kind = draw(st.sampled_from(list(FlowKind)))
    destination = draw(locations)
    tick = draw(st.integers(0, 10_000))
    context = draw(st.sampled_from(["", "sw", "lb", "net.recv"]))
    if kind is FlowKind.INSERT:
        return FlowEvent(
            kind, destination, tick=tick, tag=draw(tags), context=context
        )
    if kind in (FlowKind.COPY, FlowKind.COMPUTE):
        sources = tuple(
            draw(st.lists(locations, min_size=1, max_size=3))
        )
        return FlowEvent(
            kind, destination, sources=sources, tick=tick, context=context
        )
    if kind in (FlowKind.ADDRESS_DEP, FlowKind.CONTROL_DEP):
        sources = tuple(
            draw(st.lists(locations, min_size=0, max_size=3))
        )
        return FlowEvent(
            kind, destination, sources=sources, tick=tick, context=context
        )
    return FlowEvent(kind, destination, tick=tick, context=context)


class TestRecordingProperties:
    @given(event_list=st.lists(events(), max_size=40))
    @settings(max_examples=100)
    def test_jsonl_round_trip_identity(self, event_list):
        recording = Recording(events=event_list, meta={"k": "v"})
        restored = Recording.from_jsonl(recording.to_jsonl())
        assert restored.events == recording.events
        assert restored.meta == recording.meta

    @given(event_list=st.lists(events(), max_size=25))
    @settings(max_examples=30)
    def test_double_round_trip_stable(self, event_list):
        recording = Recording(events=event_list)
        once = Recording.from_jsonl(recording.to_jsonl())
        twice = Recording.from_jsonl(once.to_jsonl())
        assert once.events == twice.events

    @given(event_list=st.lists(events(), max_size=25))
    @settings(max_examples=30)
    def test_kind_counts_total(self, event_list):
        recording = Recording(events=event_list)
        assert sum(recording.kind_counts().values()) == len(recording)


class TestInterleaveProperties:
    @given(
        lists=st.lists(st.lists(events(), max_size=15), min_size=1, max_size=3),
        chunk=st.integers(1, 7),
    )
    @settings(max_examples=50)
    def test_interleave_preserves_event_count_and_tick_order(
        self, lists, chunk
    ):
        from repro.workloads.composite import interleave

        recordings = [Recording(events=event_list) for event_list in lists]
        merged = interleave(recordings, chunk_size=chunk)
        assert len(merged) == sum(len(r) for r in recordings)
        ticks = [e.tick for e in merged]
        assert ticks == sorted(ticks)

    @given(
        lists=st.lists(st.lists(events(), max_size=15), min_size=2, max_size=3)
    )
    @settings(max_examples=30)
    def test_interleave_never_shares_tag_identities(self, lists):
        from repro.dift.flows import FlowKind
        from repro.workloads.composite import interleave

        recordings = [Recording(events=event_list) for event_list in lists]
        merged = interleave(recordings, chunk_size=3)
        origin = merged.meta["tag_origin"]
        # every insert tag in the merged trace has exactly one origin
        for event in merged:
            if event.kind is FlowKind.INSERT and event.tag is not None:
                key = f"{event.tag.type}#{event.tag.index}"
                assert key in origin
