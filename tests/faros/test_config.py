"""Tests for repro.faros.config."""

import pytest

from repro.core.policy import (
    KindFilteredPolicy,
    MitosPolicy,
    PropagateAllPolicy,
    PropagateNonePolicy,
    RandomPolicy,
    ThresholdPolicy,
)
from repro.dift.tags import TagTypes
from repro.faros import FarosSystem
from repro.faros.config import FarosConfig, mitos_config, stock_faros_config


class TestFarosConfig:
    def test_default_policy_is_mitos(self):
        config = FarosConfig()
        assert isinstance(config.build_policy(), MitosPolicy)
        assert config.label == "mitos"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            FarosConfig(policy="nonsense")

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("mitos", MitosPolicy),
            ("propagate-all", PropagateAllPolicy),
            ("propagate-none", PropagateNonePolicy),
            ("threshold", ThresholdPolicy),
            ("random", RandomPolicy),
            ("address-only", KindFilteredPolicy),
            ("control-only", KindFilteredPolicy),
            ("mitos-address-only", KindFilteredPolicy),
        ],
    )
    def test_policy_registry(self, name, cls):
        assert isinstance(FarosConfig(policy=name).build_policy(), cls)

    def test_kind_filtered_variants_wired_correctly(self):
        address_only = FarosConfig(policy="address-only").build_policy()
        assert address_only.handles("address_dep")
        assert not address_only.handles("control_dep")
        control_only = FarosConfig(policy="control-only").build_policy()
        assert control_only.handles("control_dep")
        assert not control_only.handles("address_dep")
        mitos_address = FarosConfig(policy="mitos-address-only").build_policy()
        assert isinstance(mitos_address.inner, MitosPolicy)

    def test_wrapped_mitos_gets_live_pollution(self):
        """The pollution source must reach MITOS through the wrapper."""
        from repro.dift import flows
        from repro.dift.shadow import mem
        from repro.dift.tags import Tag

        system = FarosSystem(FarosConfig(policy="mitos-address-only"))
        system.tracker.process(flows.insert(mem(0), Tag("netflow", 1), tick=0))
        inner = system.tracker.policy.inner
        assert inner.engine.current_pollution() == 1.0

    def test_threshold_knob_plumbed(self):
        config = FarosConfig(policy="threshold", threshold_max_copies=7)
        assert config.build_policy().max_copies == 7

    def test_random_knobs_plumbed(self):
        config = FarosConfig(
            policy="random", random_probability=0.25, random_seed=9
        )
        policy = config.build_policy()
        assert policy.propagate_probability == 0.25

    def test_explicit_label_kept(self):
        assert FarosConfig(label="custom").label == "custom"

    def test_default_detector_types(self):
        config = FarosConfig()
        assert config.detector_types == frozenset(
            {TagTypes.NETFLOW, TagTypes.EXPORT_TABLE}
        )


class TestFactories:
    def test_stock_faros(self):
        config = stock_faros_config()
        assert config.policy == "propagate-none"
        assert not config.direct_via_policy
        assert config.label == "faros"

    def test_mitos_default(self):
        config = mitos_config()
        assert config.policy == "mitos"
        assert not config.direct_via_policy
        assert config.label == "mitos"

    def test_mitos_all_flows(self):
        config = mitos_config(all_flows=True)
        assert config.direct_via_policy
        assert config.label == "mitos-all"

    def test_overrides_pass_through(self):
        config = mitos_config(log_timeline=True)
        assert config.log_timeline
