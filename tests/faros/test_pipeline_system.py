"""Tests for repro.faros.pipeline and repro.faros.system."""


from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag, TagTypes
from repro.faros import (
    FarosSystem,
    is_dfp,
    is_dfp_or_ifp,
    is_ifp,
    mitos_config,
    stock_faros_config,
)
from repro.replay.record import Recording
from repro.workloads.calibration import benchmark_params

NET = Tag(TagTypes.NETFLOW, 1)
EXPORT = Tag(TagTypes.EXPORT_TABLE, 1)


def small_recording() -> Recording:
    events = [
        flows.insert(mem(0), NET, tick=0),
        flows.insert(mem(1), EXPORT, tick=1),
        flows.copy(mem(0), reg("r1"), tick=2),
        flows.compute((reg("r1"),), reg("r2"), tick=3),
        flows.address_dep(reg("r1"), mem(5), tick=4),
        flows.control_dep((reg("r2"),), mem(6), tick=5),
        flows.clear(reg("r2"), tick=6),
    ]
    return Recording(events=events, meta={"name": "small"})


class TestFilters:
    def test_is_dfp(self):
        events = list(small_recording())
        assert [is_dfp(e) for e in events] == [
            False, False, True, True, False, False, False,
        ]

    def test_is_ifp(self):
        events = list(small_recording())
        assert [is_ifp(e) for e in events] == [
            False, False, False, False, True, True, False,
        ]

    def test_is_dfp_or_ifp_is_union(self):
        for event in small_recording():
            assert is_dfp_or_ifp(event) == (is_dfp(event) or is_ifp(event))


class TestPipelineDispatch:
    """Stage counting dispatches explicitly on FlowKind."""

    class _StubTracker:
        def reset(self):
            pass

        def process(self, event):
            pass

    def test_unknown_kind_lands_in_other_not_clear(self):
        from types import SimpleNamespace

        from repro.faros import FarosPipeline

        pipeline = FarosPipeline(self._StubTracker())
        future_kind = SimpleNamespace(is_direct=False, is_indirect=False)
        pipeline.on_event(SimpleNamespace(kind=future_kind))
        assert pipeline.stage_counts["clear"] == 0
        assert pipeline.stage_counts["other"] == 1

    def test_other_bucket_resets_on_begin(self):
        from types import SimpleNamespace

        from repro.faros import FarosPipeline

        pipeline = FarosPipeline(self._StubTracker())
        future_kind = SimpleNamespace(is_direct=False, is_indirect=False)
        pipeline.on_event(SimpleNamespace(kind=future_kind))
        pipeline.on_begin(Recording())
        assert pipeline.stage_counts["other"] == 0


class TestFarosSystem:
    def params(self):
        return benchmark_params()

    def test_replay_counts_stages(self):
        system = FarosSystem(stock_faros_config(self.params()))
        system.replay(small_recording())
        assert system.pipeline.stage_counts == {
            "is_dfp": 2,
            "is_ifp": 2,
            "insert": 2,
            "clear": 1,
        }

    def test_stock_faros_blocks_indirect(self):
        system = FarosSystem(stock_faros_config(self.params()))
        system.replay(small_recording())
        assert not system.tracker.shadow.is_tainted(mem(5))
        assert system.tracker.shadow.is_tainted(reg("r1"))

    def test_mitos_propagates_rare_tags(self):
        system = FarosSystem(mitos_config(self.params()))
        system.replay(small_recording())
        # one-copy netflow tag: strongly negative marginal -> propagated
        assert system.tracker.shadow.is_tainted(mem(5))

    def test_replay_resets_state(self):
        system = FarosSystem(stock_faros_config(self.params()))
        system.replay(small_recording())
        first_entries = system.tracker.shadow.total_entries()
        system.replay(small_recording())
        assert system.tracker.shadow.total_entries() == first_entries

    def test_timeline_attached_when_configured(self):
        system = FarosSystem(mitos_config(self.params(), log_timeline=True))
        system.replay(small_recording())
        assert system.timeline is not None
        assert len(system.timeline) >= 1

    def test_timeline_absent_by_default(self):
        system = FarosSystem(mitos_config(self.params()))
        assert system.timeline is None

    def test_detector_fires_on_confluence(self):
        system = FarosSystem(stock_faros_config(self.params()))
        recording = Recording(
            events=[
                flows.insert(mem(0), NET, tick=0),
                flows.insert(mem(0), EXPORT, tick=1),
            ]
        )
        result = system.replay(recording)
        assert result.metrics.detected_bytes == 1

    def test_detector_disabled(self):
        config = stock_faros_config(self.params(), detector_types=None)
        system = FarosSystem(config)
        recording = Recording(
            events=[
                flows.insert(mem(0), NET, tick=0),
                flows.insert(mem(0), EXPORT, tick=1),
            ]
        )
        result = system.replay(recording)
        assert system.detector is None
        assert result.metrics.detected_bytes == 0

    def test_run_result_shape(self):
        system = FarosSystem(stock_faros_config(self.params()))
        result = system.replay(small_recording())
        assert result.label == "faros"
        assert result.metrics.wall_seconds >= 0
        assert result.tracker_stats["inserts"] == 2

    def test_run_live_attaches_machine(self):
        from repro.isa.machine import Machine
        from repro.isa.programs import memcpy_program

        system = FarosSystem(stock_faros_config(self.params()))
        machine = Machine(memcpy_program(0x100, 0x200, 4))
        result = system.run_live(machine)
        assert result.metrics.wall_seconds >= 0
        assert machine.halted
