"""Tests for the CLI driver (experiments + trace tools)."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_one


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig3"])
        assert args.command == "fig3"
        assert not args.quick
        assert args.seed == 0

    def test_quick_and_seed(self):
        args = build_parser().parse_args(["table2", "--quick", "--seed", "7"])
        assert args.quick and args.seed == 7

    def test_invalid_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig7", "fig8", "fig9", "table2", "ablations",
            "sensitivity", "fault_sweep",
        }

    def test_replay_robustness_flags(self):
        args = build_parser().parse_args(
            [
                "replay", "t.jsonl",
                "--inject-faults", "0.1", "--fault-seed", "7",
                "--supervisor", "quarantine", "--max-retries", "5",
                "--checkpoint-every", "100", "--checkpoint-out", "c.json",
                "--resume-from", "old.json", "--limit", "500",
                "--degrade-at", "0.8",
            ]
        )
        assert args.inject_faults == 0.1
        assert args.fault_seed == 7
        assert args.supervisor == "quarantine"
        assert args.max_retries == 5
        assert args.checkpoint_every == 100
        assert args.checkpoint_out == "c.json"
        assert args.resume_from == "old.json"
        assert args.limit == 500
        assert args.degrade_at == 0.8

    def test_replay_rejects_unknown_supervisor_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["replay", "t.jsonl", "--supervisor", "ignore-everything"]
            )

    def test_replay_accepts_kind_filtered_policies(self):
        args = build_parser().parse_args(
            ["replay", "t.jsonl", "--policy", "address-only"]
        )
        assert args.policy == "address-only"

    def test_record_args(self):
        args = build_parser().parse_args(
            ["record", "attack", "--out", "x.gz", "--variant", "reverse_tcp"]
        )
        assert args.workload == "attack"
        assert args.variant == "reverse_tcp"

    def test_replay_args(self):
        args = build_parser().parse_args(
            ["replay", "t.jsonl", "--policy", "propagate-none", "--tau", "0.1"]
        )
        assert args.policy == "propagate-none"
        assert args.tau == 0.1

    def test_lineage_location_parsing(self):
        args = build_parser().parse_args(
            ["lineage", "t.jsonl", "--location", "mem:0x10"]
        )
        assert args.location == ("mem", 16)
        args = build_parser().parse_args(
            ["lineage", "t.jsonl", "--location", "reg:r3", "--tag", "netflow:1"]
        )
        assert args.location == ("reg", "r3")
        assert args.tag.key == ("netflow", 1)

    def test_bad_location_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lineage", "t.jsonl", "--location", "bogus"]
            )

    def test_verbose_flag(self):
        args = build_parser().parse_args(["--verbose", "fig3"])
        assert args.verbose
        args = build_parser().parse_args(["fig3"])
        assert not args.verbose

    def test_replay_observability_flags(self):
        args = build_parser().parse_args(
            [
                "replay", "t.jsonl", "--trace-out", "d.jsonl.gz",
                "--metrics-out", "m.json", "--sample-every", "50",
            ]
        )
        assert args.trace_out == "d.jsonl.gz"
        assert args.metrics_out == "m.json"
        assert args.sample_every == 50

    def test_replay_observability_flags_default_off(self):
        args = build_parser().parse_args(["replay", "t.jsonl"])
        assert args.trace_out is None
        assert args.metrics_out is None
        assert args.sample_every is None

    def test_tracelog_args(self):
        args = build_parser().parse_args(
            ["tracelog", "d.jsonl", "--windows", "4", "--top", "3"]
        )
        assert args.command == "tracelog"
        assert args.trace == "d.jsonl"
        assert args.windows == 4
        assert args.top == 3


class TestExperimentExecution:
    def test_run_one_fig3(self):
        text = run_one("fig3", quick=True, seed=0)
        assert "Fig. 3" in text
        assert "completed in" in text

    def test_main_prints(self, capsys):
        exit_code = main(["fig3", "--quick"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Fig. 3(a)" in out


class TestTraceTools:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        return str(tmp_path / "trace.jsonl.gz")

    def record(self, trace_path, capsys) -> str:
        code = main(
            [
                "record", "attack", "--quick", "--seed", "1",
                "--variant", "reverse_https", "--out", trace_path,
            ]
        )
        assert code == 0
        return capsys.readouterr().out

    def test_record_writes_file(self, trace_path, capsys, tmp_path):
        out = self.record(trace_path, capsys)
        assert "recorded" in out
        assert (tmp_path / "trace.jsonl.gz").exists()

    def test_inspect(self, trace_path, capsys):
        self.record(trace_path, capsys)
        assert main(["inspect", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "flow mix" in out

    def test_replay(self, trace_path, capsys):
        self.record(trace_path, capsys)
        code = main(
            [
                "replay", trace_path, "--policy", "mitos", "--all-flows",
                "--quick-calibration",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "propagation_ops" in out

    def test_lineage(self, trace_path, capsys):
        self.record(trace_path, capsys)
        code = main(["lineage", trace_path, "--location", "mem:0x4800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reached by" in out
        assert "netflow" in out

    def test_lineage_untouched_location(self, trace_path, capsys):
        self.record(trace_path, capsys)
        assert main(["lineage", trace_path, "--location", "mem:0xFFFF"]) == 0
        out = capsys.readouterr().out
        assert "no taint sources" in out

    def test_lineage_with_tag_path(self, trace_path, capsys):
        self.record(trace_path, capsys)
        code = main(
            [
                "lineage", trace_path, "--location", "mem:0x4800",
                "--tag", "netflow:2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "path of" in out or "never reaches" in out

    def test_lineage_direct_only_sees_less(self, trace_path, capsys):
        self.record(trace_path, capsys)
        main(["lineage", trace_path, "--location", "mem:0x4800"])
        full = capsys.readouterr().out
        main(
            ["lineage", trace_path, "--location", "mem:0x4800", "--direct-only"]
        )
        direct = capsys.readouterr().out
        # the https stager moves netflow only through address deps
        assert "netflow" in full
        assert "netflow" not in direct


class TestObservabilityWorkflow:
    """The replay --trace-out/--metrics-out -> tracelog round trip."""

    @pytest.fixture()
    def trace_path(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl.gz")
        assert main(
            [
                "record", "attack", "--quick", "--seed", "1",
                "--variant", "reverse_https", "--out", path,
            ]
        ) == 0
        capsys.readouterr()
        return path

    def test_instrumented_replay_writes_artifacts(
        self, trace_path, tmp_path, capsys
    ):
        import json

        decisions = tmp_path / "d.jsonl"
        metrics = tmp_path / "m.json"
        code = main(
            [
                "replay", trace_path, "--policy", "mitos",
                "--quick-calibration",
                "--trace-out", str(decisions),
                "--metrics-out", str(metrics),
                "--sample-every", "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "span timings" in out
        assert "decision trace:" in out

        from repro.obs import read_decision_trace

        records = list(read_decision_trace(decisions))
        assert records, "expected at least one IFP decision record"
        for record in records:
            assert {"tick", "kind", "pollution", "candidates"} <= set(record)
        payload = json.loads(metrics.read_text())
        assert payload["spans"]["tracker.process"]["count"] > 0
        assert payload["metrics"]["counters"]["ifp.events"] == len(records)
        assert payload["timeseries"]

    def test_tracelog_summarizes(self, trace_path, tmp_path, capsys):
        decisions = tmp_path / "d.jsonl.gz"
        assert main(
            [
                "replay", trace_path, "--policy", "mitos",
                "--quick-calibration", "--trace-out", str(decisions),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["tracelog", str(decisions), "--windows", "4"]) == 0
        out = capsys.readouterr().out
        assert "IFP events" in out
        assert "propagation rate / pollution over time" in out
        assert "pollution trajectory" in out

    def test_tracelog_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["tracelog", str(empty)]) == 0
        assert "no decision records" in capsys.readouterr().out

    def test_plain_replay_unchanged(self, trace_path, capsys):
        code = main(
            ["replay", trace_path, "--policy", "mitos", "--quick-calibration"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "propagation_ops" in out
        assert "span timings" not in out


class TestServeCli:
    def test_serve_flag_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1" and args.port == 7757
        assert args.shards == 1 and args.admin_port is None
        assert args.queue_depth == 1024 and args.batch_max == 64
        assert not args.resume and args.checkpoint_dir is None

    def test_serve_full_flag_surface(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--admin-port", "0",
                "--shards", "4", "--queue-depth", "32", "--batch-max", "8",
                "--max-retries", "1", "--policy", "mitos",
                "--quick-calibration", "--checkpoint-dir", "ck",
                "--checkpoint-every", "100", "--resume",
                "--trace-out", "t.jsonl", "--metrics-out", "m.json",
                "--drain-timeout", "5",
            ]
        )
        assert args.port == 0 and args.admin_port == 0
        assert args.shards == 4 and args.queue_depth == 32
        assert args.checkpoint_dir == "ck" and args.checkpoint_every == 100
        assert args.resume and args.drain_timeout == 5.0

    def test_serve_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "random-walk"])

    def test_bench_serve_defaults(self):
        args = build_parser().parse_args(["bench-serve"])
        assert args.command == "bench-serve"
        # one deep pipeline: the tuned defaults for a shared-core box
        assert args.connections == 1 and args.window == 256
        assert args.shards == 1 and not args.in_process
        assert args.json_out is None and args.limit is None

    def test_bench_serve_flags(self):
        args = build_parser().parse_args(
            [
                "bench-serve", "--quick", "--shards", "2",
                "--connections", "3", "--window", "16", "--limit", "50",
                "--json-out", "out.json", "--in-process",
            ]
        )
        assert args.quick and args.shards == 2
        assert args.connections == 3 and args.window == 16
        assert args.limit == 50 and args.json_out == "out.json"
        assert args.in_process

    def test_bench_serve_in_process_quick_runs(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        trend = tmp_path / "trend.jsonl"
        code = main(
            [
                "bench-serve", "--quick", "--in-process",
                "--window", "16", "--json-out", str(out),
                "--trend-out", str(trend),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "parity: every served decision matched" in printed
        import json as _json

        report = _json.loads(out.read_text())
        assert report["matched"] is True and report["quick"] is True
        (line,) = trend.read_text().splitlines()
        record = _json.loads(line)
        assert record["benchmark"] == "serve" and record["matched"] is True

    def test_bench_serve_new_knobs(self):
        args = build_parser().parse_args(
            [
                "bench-serve", "--open-loop", "--repeat", "3",
                "--batch-deadline-us", "500", "--connections", "2",
            ]
        )
        assert args.open_loop and args.repeat == 3
        assert args.batch_deadline_us == 500.0
        assert args.connections == 2 and args.trend_out is None

    def test_bench_cluster_sweep_flags(self):
        args = build_parser().parse_args(
            [
                "bench-cluster", "--sweep-shards", "1,2,4",
                "--window", "128", "--no-pin-cpus",
            ]
        )
        assert args.sweep_shards == "1,2,4"
        assert args.window == 128 and args.no_pin_cpus

    def test_bench_cluster_sweep_rejects_garbage(self, capsys):
        assert main(
            ["bench-cluster", "--quick", "--sweep-shards", "two"]
        ) == 2
        assert "--sweep-shards" in capsys.readouterr().err
