"""The disabled-control path must be provably inert.

``control=None`` and ``control=ControlOptions(enabled=False)`` build no
controller anywhere -- same objects, same outputs, byte-identical
serialized results.  This is the correctness half of the <5% overhead
gate in ``benchmarks/test_bench_control_overhead.py``.
"""

import json

import pytest

from repro import api
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.options import ControlOptions, ReplayOptions, ServeOptions
from repro.replay.record import Recording


def small_recording() -> Recording:
    events = []
    for index in range(1, 9):
        events.append(
            flows.insert(
                mem(index), Tag("netflow", index), tick=index, context="read"
            )
        )
        events.append(
            flows.copy(mem(index), mem(index + 32), tick=index + 1)
        )
        events.append(
            flows.address_dep(
                mem(index + 32), mem(index + 64), tick=index + 2
            )
        )
    return Recording(events=events, meta={"name": "inert-mini"})


def result_fingerprint(result) -> str:
    """A canonical byte serialization of everything a replay reports."""
    return json.dumps(
        {
            "tracker_stats": result.tracker_stats,
            "stage_counts": result.stage_counts,
            "robustness": result.robustness,
            "detected_bytes": result.metrics.detected_bytes,
            "ifp_candidates": result.metrics.ifp_candidates,
            "ifp_propagated": result.metrics.ifp_propagated,
            "ifp_blocked": result.metrics.ifp_blocked,
            "propagation_ops": result.metrics.propagation_ops,
        },
        sort_keys=True,
    )


class TestReplayInert:
    def test_no_controller_is_built(self):
        system = api.build_system(quick_calibration=True)
        assert system.controller is None
        disabled = api.build_system(
            quick_calibration=True, control=ControlOptions(enabled=False)
        )
        assert disabled.controller is None

    def test_disabled_replay_is_byte_identical(self):
        baseline = api.replay(
            small_recording(), options=ReplayOptions(),
            quick_calibration=True,
        )
        fingerprints = set()
        for control in (None, ControlOptions(), ControlOptions(enabled=False)):
            result = api.replay(
                small_recording(),
                options=ReplayOptions(control=control),
                quick_calibration=True,
            )
            fingerprints.add(result_fingerprint(result))
        assert fingerprints == {result_fingerprint(baseline)}

    def test_disabled_robustness_has_no_control_counter(self):
        result = api.replay(
            small_recording(),
            options=ReplayOptions(control=ControlOptions(enabled=False)),
            quick_calibration=True,
        )
        assert "control.param_updates" not in result.robustness

    def test_enabled_replay_reports_updates(self):
        result = api.replay(
            small_recording(),
            options=ReplayOptions(
                control=ControlOptions(
                    enabled=True, every=2, target_pollution=1e-9
                )
            ),
            quick_calibration=True,
        )
        assert result.robustness["control.param_updates"] > 0


def drive(client, count=24):
    responses = []
    for index in range(count):
        responses.append(
            client.decide(
                f"mem:{index % 8 + 1}",
                free_slots=1,
                candidates=[("netflow", index % 5 + 1, index % 4 + 1)],
                pollution=float(index),
                tick=index,
            )
        )
    return responses


class TestServeInert:
    @pytest.mark.parametrize(
        "control", [None, ControlOptions(enabled=False)]
    )
    def test_disabled_serving_matches_no_control(self, control):
        def boot(control_options):
            return api.serve(
                ServeOptions(
                    port=0, shards=2, quick_calibration=True,
                    control=control_options,
                ),
                background=True,
            )

        baseline_thread = boot(None)
        try:
            with api.ServeClient(
                baseline_thread.host, baseline_thread.port
            ) as client:
                baseline = drive(client)
                baseline_stats = client.stats()
        finally:
            baseline_thread.stop()

        thread = boot(control)
        try:
            with api.ServeClient(thread.host, thread.port) as client:
                responses = drive(client)
                stats = client.stats()
        finally:
            thread.stop()

        assert json.dumps(responses, sort_keys=True) == json.dumps(
            baseline, sort_keys=True
        )
        assert "control" not in stats
        assert "control" not in baseline_stats
