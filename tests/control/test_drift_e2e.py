"""The bench-adapt acceptance pin: adaptive beats fixed under drift.

One quick end-to-end run of the full benchmark -- three replays of the
drifting recording (propagate-all baseline, fixed MITOS, adaptive
MITOS) -- asserting the headline claim CI gates on: the adaptive run
wins on pollution or on recall.  Everything is seeded, so the outcome
is a deterministic property of the code, not a flaky benchmark.
"""

import json

import pytest

from repro.control.bench import (
    count_decision_flips,
    run_adapt_bench,
    write_adapt_bench,
)


@pytest.fixture(scope="module")
def report():
    return run_adapt_bench(quick=True, seed=0)


class TestDriftBench:
    def test_adaptive_beats_fixed_on_pollution_or_recall(self, report):
        wins = report["adaptive_wins"]
        assert wins["any"] is True
        assert wins["any"] == (wins["pollution"] or wins["recall"])

    def test_controller_actually_ran(self, report):
        assert report["adaptive"]["param_updates"] > 0
        assert report["fixed"]["param_updates"] == 0
        assert report["baseline"]["param_updates"] == 0
        assert report["decision_flips"] > 0

    def test_arms_share_the_recording(self, report):
        # every arm replays the same drifting trace (the candidate
        # streams can diverge in the tail -- blocking changes what gets
        # tainted downstream -- which the flip count charges as skew)
        assert report["recording_events"] > 0
        for arm in ("baseline", "fixed", "adaptive"):
            assert report[arm]["decisions"] > 0
            assert report[arm]["ifp_decisions"] >= report[arm]["decisions"]

    def test_pollution_measured_in_one_cost_model(self, report):
        # the adaptive arm inflates o_t at runtime; the report's
        # pollution numbers must still be base-weighted, so the fixed
        # arm (which never over-taints more) can never read higher than
        # the propagate-all ceiling
        assert (
            report["fixed"]["mean_pollution_fraction"]
            <= report["baseline"]["mean_pollution_fraction"]
        )
        assert (
            report["adaptive"]["peak_pollution_fraction"]
            <= report["baseline"]["peak_pollution_fraction"]
        )

    def test_report_is_json_serializable(self, report, tmp_path):
        path = write_adapt_bench(tmp_path / "BENCH_adapt.json", report)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["benchmark"] == "adapt"
        assert loaded["adaptive_wins"]["any"] is True


class TestDecisionFlips:
    def test_identical_streams_have_no_flips(self):
        records = [(frozenset({"netflow:1"}), 1, 0.0)] * 4
        assert count_decision_flips(records, list(records)) == 0

    def test_divergent_sets_and_length_skew_count(self):
        fixed = [
            (frozenset({"netflow:1"}), 1, 0.0),
            (frozenset({"file:2"}), 1, 0.0),
        ]
        adaptive = [(frozenset(), 1, 0.0)]
        # one differing pair + one unpaired trailing decision
        assert count_decision_flips(fixed, adaptive) == 2
