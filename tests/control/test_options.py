"""ControlOptions: validation and how the other bundles carry it."""

import pytest

from repro.options import (
    ClusterOptions,
    ControlOptions,
    ReplayOptions,
    ServeOptions,
)


class TestValidation:
    def test_defaults_are_valid_and_disabled(self):
        options = ControlOptions()
        assert options.enabled is False
        assert options.mode == "ewma"

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"mode": "oracle"}, "mode"),
            ({"every": 0}, "every"),
            ({"target_pollution": 0.0}, "target_pollution"),
            ({"target_pollution": -0.1}, "target_pollution"),
            ({"ewma_alpha": 0.0}, "ewma_alpha"),
            ({"ewma_alpha": 1.5}, "ewma_alpha"),
            ({"step": 0.0}, "step"),
            ({"weight_step": -1.0}, "weight_step"),
            ({"scale_min": 0.0}, "scale"),
            ({"scale_min": 2.0, "scale_max": 1.0}, "scale"),
            ({"weight_min": 2.0, "weight_max": 1.0}, "weight"),
            ({"grid": 1}, "grid"),
            ({"epsilon": 1.5}, "epsilon"),
            ({"history": 0}, "history"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ControlOptions(**kwargs)

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            ControlOptions(True)  # noqa: FBT003 -- positional must fail


class TestCarriers:
    def test_replay_wants_control_needs_enabled(self):
        assert ReplayOptions().wants_control is False
        assert (
            ReplayOptions(control=ControlOptions()).wants_control is False
        )
        assert (
            ReplayOptions(
                control=ControlOptions(enabled=True)
            ).wants_control
            is True
        )

    def test_vector_engine_blocks_enabled_control_only(self):
        enabled = ReplayOptions(
            engine="vector", control=ControlOptions(enabled=True)
        )
        assert "control" in enabled.vector_blockers()
        disabled = ReplayOptions(
            engine="vector", control=ControlOptions(enabled=False)
        )
        assert "control" not in disabled.vector_blockers()

    def test_serve_wants_control(self):
        assert ServeOptions().wants_control is False
        assert (
            ServeOptions(control=ControlOptions(enabled=True)).wants_control
            is True
        )

    def test_cluster_control_reaches_shard_options(self):
        control = ControlOptions(enabled=True, every=32)
        options = ClusterOptions(
            shards=2, control=control, checkpoint_root="/tmp/unused"
        )
        shard = options.shard_options(0)
        assert shard.control is control
