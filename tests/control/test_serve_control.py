"""Per-shard controllers on the live serving plane.

The drain loop steps each shard's controller between batches; applied
updates must show up in ``/stats`` (the ``control`` block), in the
snapshot's ``control_updates`` tail, and keep serving decisions flowing
(the atomic swap never wedges a shard).
"""

import pytest

from repro import api
from repro.options import ControlOptions, ServeOptions
from repro.serve.events import build_snapshot


@pytest.fixture(scope="module")
def server_thread():
    thread = api.serve(
        ServeOptions(
            port=0,
            shards=2,
            quick_calibration=True,
            control=ControlOptions(
                enabled=True, every=8, target_pollution=1e-7
            ),
        ),
        background=True,
    )
    yield thread
    thread.stop()


def drive(client, count=120):
    for index in range(count):
        response = client.decide(
            f"mem:{index % 16 + 1}",
            free_slots=1,
            candidates=[("netflow", index % 7 + 1, index % 5 + 1)],
            pollution=float(index),
            tick=index,
        )
        assert response["decisions"]


class TestServeControl:
    def test_updates_reach_stats_and_snapshot(self, server_thread):
        with api.ServeClient(
            server_thread.host, server_thread.port
        ) as client:
            drive(client)
            stats = client.stats()
        control = stats["control"]
        assert len(control) == 2  # one controller per shard
        assert {entry["mode"] for entry in control} == {"ewma"}
        assert sum(entry["updates"] for entry in control) > 0
        snapshot = build_snapshot(server_thread.server, seq=1)
        records = snapshot["control_updates"]
        assert records
        assert records[0]["event"] == "control.param_update"
        assert {record["shard"] for record in records} <= {0, 1}
        # server-global seq is the /events cursor: strictly increasing
        seqs = [record["seq"] for record in records]
        assert seqs == sorted(seqs)
        assert snapshot["control_seq"] == seqs[-1]

    def test_snapshot_cursor_skips_seen_updates(self, server_thread):
        snapshot = build_snapshot(server_thread.server, seq=1)
        cursor = snapshot["control_seq"]
        again = build_snapshot(
            server_thread.server, seq=2, control_cursor=cursor
        )
        assert again["control_updates"] == []
