"""Estimator unit tests: deterministic trajectories from canned signals.

Both estimators are pure decision rules (no clock, no I/O, randomness
only from a seeded ``random.Random``), so a fixed observation sequence
must always produce the same parameter trajectory.
"""

import pytest

from repro.control.estimator import (
    DEADBAND,
    ControlSignal,
    EwmaEstimator,
    TauBandit,
    make_estimator,
)
from repro.core.params import MitosParams
from repro.options import ControlOptions

PARAMS = MitosParams(tau_scale=1.0)


def signal(fraction, **kwargs):
    return ControlSignal(
        decisions=kwargs.pop("decisions", 100),
        pollution_fraction=fraction,
        **kwargs,
    )


class TestEwma:
    def options(self, **overrides):
        defaults = dict(
            enabled=True,
            mode="ewma",
            target_pollution=0.01,
            step=0.15,
            adapt_weights=False,
        )
        defaults.update(overrides)
        return ControlOptions(**defaults)

    def test_over_budget_raises_tau_scale(self):
        estimator = EwmaEstimator(self.options(), PARAMS)
        proposal = estimator.propose(PARAMS, signal(0.05))
        assert proposal is not None
        params, reason = proposal
        assert reason == "over-budget"
        assert params.tau_scale == pytest.approx(1.15)

    def test_under_budget_lowers_tau_scale(self):
        estimator = EwmaEstimator(self.options(), PARAMS)
        proposal = estimator.propose(PARAMS, signal(0.0001))
        assert proposal is not None
        params, reason = proposal
        assert reason == "under-budget"
        assert params.tau_scale == pytest.approx(1.0 / 1.15)

    def test_deadband_holds(self):
        estimator = EwmaEstimator(self.options(), PARAMS)
        inside = 0.01 * (1.0 + DEADBAND / 2)
        assert estimator.propose(PARAMS, signal(inside)) is None

    def test_trajectory_is_deterministic(self):
        def run():
            estimator = EwmaEstimator(self.options(), PARAMS)
            params = PARAMS
            scales = []
            for fraction in (0.05, 0.04, 0.0001, 0.05, 0.009):
                proposal = estimator.propose(params, signal(fraction))
                if proposal is not None:
                    params = proposal[0]
                scales.append(params.tau_scale)
            return scales

        assert run() == run()

    def test_tau_scale_clamped_to_safety_band(self):
        options = self.options(scale_min=0.5, scale_max=2.0)
        estimator = EwmaEstimator(options, PARAMS)
        params = PARAMS
        for _ in range(20):  # far more steps than the band allows
            proposal = estimator.propose(params, signal(0.5))
            if proposal is not None:
                params = proposal[0]
        assert params.tau_scale == pytest.approx(2.0)

    def test_over_budget_reweights_dominant_type(self):
        options = self.options(adapt_weights=True, weight_step=0.1)
        estimator = EwmaEstimator(options, PARAMS)
        proposal = estimator.propose(
            PARAMS,
            signal(0.05, type_copies={"netflow": 90, "file": 10}),
        )
        assert proposal is not None
        params, _ = proposal
        # the over-represented type loses utility and gets pricier
        assert params.u_of("netflow") == pytest.approx(0.9)
        assert params.o_of("netflow") == pytest.approx(1.1)
        # the under-represented type keeps its configured weights
        assert params.u_of("file") == pytest.approx(1.0)
        assert params.o_of("file") == pytest.approx(1.0)

    def test_under_budget_recovers_rare_type_utility(self):
        options = self.options(adapt_weights=True, weight_step=0.1)
        estimator = EwmaEstimator(options, PARAMS)
        proposal = estimator.propose(
            PARAMS,
            signal(0.0001, type_copies={"netflow": 90, "file": 10}),
        )
        assert proposal is not None
        params, _ = proposal
        assert params.u_of("file") == pytest.approx(1.1)
        assert params.u_of("netflow") == pytest.approx(1.0)

    def test_weights_clamped_relative_to_base(self):
        options = self.options(
            adapt_weights=True,
            weight_step=0.5,
            weight_min=0.5,
            weight_max=2.0,
        )
        estimator = EwmaEstimator(options, PARAMS)
        params = PARAMS
        for _ in range(10):
            proposal = estimator.propose(
                params, signal(0.5, type_copies={"netflow": 99, "file": 1})
            )
            if proposal is not None:
                params = proposal[0]
        assert params.u_of("netflow") == pytest.approx(0.5)
        assert params.o_of("netflow") == pytest.approx(2.0)


class TestBandit:
    def options(self, **overrides):
        defaults = dict(
            enabled=True,
            mode="bandit",
            target_pollution=0.01,
            grid=5,
            epsilon=0.1,
            seed=7,
        )
        defaults.update(overrides)
        return ControlOptions(**defaults)

    def test_arms_span_the_safety_band(self):
        bandit = TauBandit(self.options(), PARAMS)
        assert len(bandit.arms) == 5
        assert bandit.arms[0] == pytest.approx(PARAMS.tau_scale * 0.25)
        assert bandit.arms[-1] == pytest.approx(PARAMS.tau_scale * 4.0)

    def test_unplayed_arms_explored_first(self):
        bandit = TauBandit(self.options(), PARAMS)
        seen = set()
        params = PARAMS
        for _ in range(len(bandit.arms)):
            seen.add(bandit.active)
            proposal = bandit.propose(params, signal(0.05))
            if proposal is not None:
                params = proposal[0]
        assert seen == set(range(len(bandit.arms)))

    def test_same_seed_same_trajectory(self):
        def run():
            bandit = TauBandit(self.options(), PARAMS)
            params = PARAMS
            scales = []
            for index in range(30):
                fraction = 0.05 if index % 3 else 0.001
                proposal = bandit.propose(params, signal(fraction))
                if proposal is not None:
                    params = proposal[0]
                scales.append(params.tau_scale)
            return scales

        assert run() == run()

    def test_reward_penalizes_overshoot(self):
        bandit = TauBandit(self.options(), PARAMS)
        over = bandit._reward(signal(0.02))
        under = bandit._reward(signal(0.005))
        assert over < under

    def test_reward_penalizes_blocking_with_headroom(self):
        bandit = TauBandit(self.options(), PARAMS)
        blocking = bandit._reward(signal(0.005, propagated=1, blocked=9))
        permissive = bandit._reward(signal(0.005, propagated=9, blocked=1))
        assert blocking < permissive


class TestFactory:
    def test_mode_selects_estimator(self):
        assert isinstance(
            make_estimator(ControlOptions(mode="ewma"), PARAMS),
            EwmaEstimator,
        )
        assert isinstance(
            make_estimator(ControlOptions(mode="bandit"), PARAMS),
            TauBandit,
        )
