"""AdaptiveController: cadence, differencing, atomic swap, base weights.

The swap contract under test is the one the serving planes rely on: one
reference assignment moves the tracker and the MITOS engine to the new
params, and every derived structure (MarginalCache, the shard's fused
gather tables) rebinds itself on its next identity check.
"""

import json

import pytest

from repro.control import AdaptiveController, ParamUpdate
from repro.control.controller import bind_policy, type_copy_totals
from repro.core.params import MitosParams
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.faros.config import FarosConfig
from repro.options import ControlOptions
from repro.serve.protocol import parse_request
from repro.serve.shard import DecisionShard

PARAMS = MitosParams(tau_scale=1.0)


def make_tracker(params=PARAMS, policy="mitos"):
    config = FarosConfig(params=params, policy=policy, label="control-test")
    return DIFTTracker(params=params, policy=config.build_policy())


def make_controller(**overrides):
    defaults = dict(
        enabled=True,
        mode="ewma",
        every=10,
        target_pollution=0.01,
        step=0.15,
        adapt_weights=False,
    )
    defaults.update(overrides)
    return AdaptiveController(PARAMS, ControlOptions(**defaults))


class TestCadence:
    def test_holds_until_window_elapses(self):
        controller = make_controller(every=10)
        assert controller.due(9) is False
        assert (
            controller.step(decisions=9, pollution_fraction=0.5) is None
        )
        assert controller.due(10) is True

    def test_window_anchors_to_last_step(self):
        controller = make_controller(every=10)
        controller.step(decisions=10, pollution_fraction=0.5)
        assert controller.due(19) is False
        assert controller.due(20) is True


class TestStep:
    def test_deterministic_update_sequence_from_canned_trace(self):
        trace = [(10, 0.05), (20, 0.04), (30, 0.0001), (40, 0.05)]

        def run():
            controller = make_controller(every=10)
            applied = []
            for decisions, fraction in trace:
                update = controller.step(
                    decisions=decisions, pollution_fraction=fraction
                )
                if update is not None:
                    applied.append(
                        (update.seq, update.reason, update.tau_scale_after)
                    )
            return applied

        first, second = run(), run()
        assert first == second
        assert [seq for seq, _, _ in first] == list(
            range(1, len(first) + 1)
        )
        assert first[0][1] == "over-budget"
        assert first[0][2] == pytest.approx(1.15)

    def test_cumulative_outcomes_are_differenced(self):
        seen = []

        class Probe:
            mode = "probe"

            def propose(self, params, signal):
                seen.append((signal.propagated, signal.blocked))
                return None

        controller = make_controller(every=10)
        controller.estimator = Probe()
        controller.step(
            decisions=10, pollution_fraction=0.5, propagated=7, blocked=3
        )
        controller.step(
            decisions=20, pollution_fraction=0.5, propagated=12, blocked=8
        )
        assert seen == [(7, 3), (5, 5)]

    def test_apply_and_on_update_fire_with_new_params(self):
        applied, notified = [], []
        controller = AdaptiveController(
            PARAMS,
            ControlOptions(
                enabled=True, every=10, target_pollution=0.01,
                adapt_weights=False,
            ),
            apply=applied.append,
            on_update=notified.append,
        )
        update = controller.step(decisions=10, pollution_fraction=0.5)
        assert update is not None
        assert applied and applied[0] is controller.params
        assert notified == [update]
        assert controller.params.tau_scale == update.tau_scale_after

    def test_update_record_is_json_ready(self):
        controller = make_controller(every=10)
        update = controller.step(decisions=10, pollution_fraction=0.5)
        payload = json.loads(json.dumps(update.as_dict()))
        assert payload["event"] == "control.param_update"
        assert payload["seq"] == 1

    def test_updates_since_cursor(self):
        controller = make_controller(every=10)
        for index in range(1, 4):
            controller.step(
                decisions=10 * index, pollution_fraction=0.5
            )
        assert [u["seq"] for u in controller.updates_since(1)] == [2, 3]


class TestBaseWeights:
    def test_steering_signal_ignores_adapted_o(self):
        tracker = make_tracker()
        tracker.process(
            flows.insert(mem(0), Tag("netflow", 1), tick=0)
        )
        tracker.process(flows.copy(mem(0), mem(1), tick=1))
        controller = make_controller()
        bind_policy(controller, tracker)
        base = controller.base_pollution(tracker)
        # an adapted (inflated) o must not move the steering signal:
        # otherwise raising o_t inflates the controller's own over-budget
        # evidence and the loop never converges
        controller._apply(
            controller.params.with_updates(o={"netflow": 100.0})
        )
        assert tracker.pollution() == pytest.approx(100.0 * base)
        assert controller.base_pollution(tracker) == pytest.approx(base)

    def test_step_tracker_adds_extra_pollution(self):
        tracker = make_tracker()
        tracker.stats.ifp_address = 10
        seen = []

        class Probe:
            mode = "probe"

            def propose(self, params, signal):
                seen.append(signal.pollution_fraction)
                return None

        controller = make_controller(every=10)
        controller.estimator = Probe()
        controller.step_tracker(tracker, extra_pollution=PARAMS.N_R / 2)
        assert seen == [pytest.approx(0.5)]


class TestAtomicSwap:
    def test_bind_policy_requires_the_mitos_engine(self):
        tracker = make_tracker(policy="propagate-all")
        with pytest.raises(ValueError, match="mitos"):
            bind_policy(make_controller(), tracker)

    def test_swap_moves_tracker_and_engine_together(self):
        tracker = make_tracker()
        controller = make_controller(every=10)
        bind_policy(controller, tracker)
        tracker.stats.ifp_address = 10
        update = controller.step_tracker(
            tracker, extra_pollution=PARAMS.N_R
        )
        assert update is not None
        assert tracker.params is controller.params
        assert tracker.policy.engine.params is controller.params

    def test_marginal_cache_rebinds_after_swap(self):
        tracker = make_tracker()
        engine = tracker.policy.engine
        stale = engine.marginal_cache
        stale.under(4, "netflow")  # warm an entry under the old params
        controller = make_controller(every=10, step=1.0)
        bind_policy(controller, tracker)
        tracker.stats.ifp_address = 10
        # force a big over-budget step so the boundary visibly moves
        update = controller.step_tracker(
            tracker, extra_pollution=PARAMS.N_R
        )
        assert update is not None
        # the identity check replaced the memo: stale entries can never
        # leak across parameterizations
        assert engine.marginal_cache is not stale
        assert engine.marginal_cache.params is engine.params

    def test_fused_batch_plane_rebinds_after_swap(self):
        shard = DecisionShard(
            0,
            params=PARAMS,
            policy_factory=FarosConfig(
                params=PARAMS, policy="mitos", label="swap-test"
            ).build_policy,
        )
        line = json.dumps(
            {
                "op": "decide",
                "id": 1,
                "dest": "mem:0x40",
                "kind": "address_dep",
                "free_slots": 1,
                "pollution": 10.0,
                "candidates": [
                    {"type": "netflow", "index": 1, "copies": 4}
                ],
            }
        )
        first = shard.decide(parse_request(line))
        assert first["decisions"][0]["propagate"] is True
        controller = make_controller(every=10)
        bind_policy(controller, shard.tracker)
        shard.tracker.stats.ifp_address = 10
        update = controller.step_tracker(
            shard.tracker, extra_pollution=PARAMS.N_R
        )
        assert update is not None
        # the next decide sees the swap through the identity check and
        # rebuilds its gather tables around the new params
        second = shard.decide(parse_request(line))
        assert shard.params is controller.params
        assert shard.tracker.policy.engine.params is controller.params
        assert second["decisions"][0]["marginal"] != pytest.approx(
            first["decisions"][0]["marginal"]
        )


class TestTypeCopyTotals:
    def test_counts_live_copies_by_type(self):
        tracker = make_tracker()
        tracker.process(flows.insert(mem(0), Tag("netflow", 1), tick=0))
        tracker.process(flows.insert(mem(1), Tag("file", 2), tick=0))
        tracker.process(flows.copy(mem(0), mem(2), tick=1))
        totals = type_copy_totals(tracker.counter)
        assert totals == {"netflow": 2, "file": 1}
