"""Integration tests: every paper artifact reproduces its expected shape.

These run the experiments in quick mode and assert the *qualitative*
claims the paper makes -- who wins, in which direction, monotonicity --
not the absolute numbers (our substrate is a simulator).
"""

import pytest

from repro.experiments import (
    ablations,
    fig3,
    fig7,
    fig8,
    fig9,
    table2,
    workload_sensitivity,
)


@pytest.fixture(scope="module")
def fig7_result():
    return fig7.run(quick=True)


@pytest.fixture(scope="module")
def fig8_result():
    return fig8.run(quick=True)


@pytest.fixture(scope="module")
def fig9_result():
    return fig9.run(quick=True)


@pytest.fixture(scope="module")
def table2_result():
    return table2.run(quick=True)


class TestFig3:
    def test_under_cost_decreasing_all_alphas(self):
        result = fig3.run(quick=True)
        for alpha in fig3.FIG3A_ALPHAS:
            assert result.under_is_decreasing(alpha)

    def test_over_cost_increasing_all_betas(self):
        result = fig3.run(quick=True)
        for beta in fig3.FIG3B_BETAS:
            assert result.over_is_increasing(beta)

    def test_curvature_grows_with_alpha(self):
        """Higher alpha -> marginal decays faster (the max-min limit).

        The gradient at n=1 is -1 for every alpha; what grows with alpha
        is how sharply the marginal vanishes for well-copied tags, i.e.
        the ratio slope(1..2)/slope(8..9) of the cost term.
        """
        result = fig3.run(quick=True)

        def decay_ratio(alpha: float) -> float:
            series = result.under_series[alpha]
            early = series[0] - series[1]
            late = series[7] - series[8]
            return early / late

        assert decay_ratio(4.0) > decay_ratio(1.5) > decay_ratio(0.5)

    def test_render_mentions_both_panels(self):
        text = fig3.render(fig3.run(quick=True))
        assert "Fig. 3(a)" in text and "Fig. 3(b)" in text


class TestFig7:
    def test_rate_increases_as_tau_drops(self, fig7_result):
        assert fig7_result.rate_increases_as_tau_drops()

    def test_high_tau_blocks_some_tags(self, fig7_result):
        assert fig7_result.runs[1.0].blocked > 0

    def test_low_tau_propagates_more_than_high(self, fig7_result):
        low = fig7_result.runs[0.01].propagation_rate
        high = fig7_result.runs[1.0].propagation_rate
        assert low > high

    def test_overtainting_signal_mostly_increasing(self, fig7_result):
        _, _, overs = fig7_result.runs[1.0].marginal_series
        # "mostly monotonically increasing": a large majority of steps up
        ups = sum(1 for a, b in zip(overs, overs[1:]) if b >= a)
        assert ups >= 0.8 * max(1, len(overs) - 1)

    def test_decision_series_values(self, fig7_result):
        _, decisions = fig7_result.runs[1.0].decision_series
        assert set(decisions) <= {1, -1}

    def test_render(self, fig7_result):
        text = fig7.render(fig7_result)
        assert "tau" in text and "propagation rate" in text


class TestFig8:
    def test_balancing_improves_with_alpha(self, fig8_result):
        assert fig8_result.broadly_improves_with_alpha()

    def test_improvement_factor_reported(self, fig8_result):
        assert fig8_result.balancing_improvement() >= 1.0

    def test_jain_improves_with_alpha(self, fig8_result):
        alphas = sorted(fig8_result.runs)
        assert (
            fig8_result.runs[alphas[-1]].jain
            >= fig8_result.runs[alphas[0]].jain
        )

    def test_render(self, fig8_result):
        text = fig8.render(fig8_result)
        assert "alpha" in text and "MSE" in text


class TestFig9:
    def test_netflow_monotone(self, fig9_result):
        assert fig9_result.netflow_monotone_nondecreasing()

    def test_boost_strict_somewhere(self, fig9_result):
        series = [
            fig9_result.runs[w].netflow_entries
            for w in sorted(fig9_result.runs)
        ]
        assert series[-1] > series[0]

    def test_others_never_boosted(self, fig9_result):
        assert fig9_result.others_never_boosted()

    def test_normalization_reference_is_one(self, fig9_result):
        assert fig9_result.normalized_netflow_series()[-1] == pytest.approx(1.0)

    def test_render(self, fig9_result):
        assert "u_netflow" in fig9.render(fig9_result)


class TestTable2:
    def test_simultaneous_improvement(self, table2_result):
        assert table2_result.simultaneous_improvement()

    def test_detection_improvement_at_least_paper_direction(self, table2_result):
        assert table2_result.detection_improvement > 1.5

    def test_encoded_variants_evade_faros(self, table2_result):
        per_variant = table2_result.faros.per_variant_detected
        assert per_variant["reverse_https"] == 0
        assert per_variant["reverse_tcp"] > 0

    def test_mitos_detects_all_variants(self, table2_result):
        assert all(
            count > 0
            for count in table2_result.mitos.per_variant_detected.values()
        )

    def test_render_includes_paper_numbers(self, table2_result):
        text = table2.render(table2_result)
        assert "1.65x" in text and "2.67x" in text
        assert "simultaneous improvement: YES" in text


class TestWorkloadSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return workload_sensitivity.run(quick=True)

    def test_covers_all_workloads(self, result):
        assert set(result.sweeps) == {"network", "cpu", "filesystem"}

    def test_similar_behaviors(self, result):
        assert result.all_workloads_behave_similarly()

    def test_each_workload_has_ifp_decisions(self, result):
        for sweep in result.sweeps.values():
            assert all(count > 0 for count in sweep.decisions.values())

    def test_render(self, result):
        text = workload_sensitivity.render(result)
        assert "filesystem" in text
        assert "similar behaviors across workloads: YES" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run(quick=True)

    def test_scheduling_covers_all_policies(self, result):
        assert {row.scheduling for row in result.scheduling} == {
            "fifo", "lru", "reject", "value",
        }

    def test_value_scheduling_preserves_history(self, result):
        by_name = {row.scheduling: row for row in result.scheduling}
        # the paper's FIFO assumption forgets the rare source tag under
        # pressure; the future-work VALUE policy retains it and keeps the
        # confluence detectable
        assert by_name["value"].history_preserved > by_name["fifo"].history_preserved
        assert by_name["value"].detected_bytes > by_name["fifo"].detected_bytes

    def test_greedy_gap_small(self, result):
        assert result.greedy_gap.converged
        assert result.greedy_gap.relative_gap < 0.05

    def test_published_rule_more_conservative(self, result):
        rule = result.gradient_rule
        assert rule.published_total_copies < rule.exact_total_copies

    def test_staleness_rows(self, result):
        for row in result.staleness:
            assert 0.0 <= row.oracle_agreement <= 1.0

    def test_stack_pointer_scenario(self, result):
        by_name = {row.policy: row for row in result.stack_pointer}
        # the Section IV-B1 story: all-or-nothing policies either lose the
        # flow or taint the whole stack; MITOS lands in between and keeps
        # entropy higher than unconditional propagation
        assert by_name["propagate-none"].stack_bytes_tainted == 0
        assert (
            0
            < by_name["mitos"].stack_bytes_tainted
            < by_name["propagate-all"].stack_bytes_tainted
        )
        assert (
            by_name["mitos"].normalized_entropy
            > by_name["propagate-all"].normalized_entropy
        )

    def test_render(self, result):
        text = ablations.render(result)
        assert "Ablation 1" in text and "Ablation 4" in text


@pytest.fixture(scope="module")
def fault_sweep_result():
    from repro.experiments import fault_sweep

    return fault_sweep.run(quick=True)


class TestFaultSweep:
    def test_zero_rate_row_is_baseline(self, fault_sweep_result):
        result = fault_sweep_result
        clean = result.rows[0]
        assert clean.fault_rate == 0.0
        assert clean.faults_injected == 0
        assert clean.detected_bytes == result.baseline_detected > 0
        assert clean.detection_recall == 1.0
        assert clean.oracle_agreement == 1.0

    def test_faulty_rows_inject_and_recover(self, fault_sweep_result):
        for row in fault_sweep_result.rows[1:]:
            assert row.faults_injected > 0
            assert row.recoveries > 0
            assert 0.0 <= row.detection_recall <= 1.0
            assert 0.0 <= row.oracle_agreement <= 1.0

    def test_recall_never_exceeds_clean_run(self, fault_sweep_result):
        for row in fault_sweep_result.rows:
            assert row.detected_bytes <= fault_sweep_result.baseline_detected

    def test_render(self, fault_sweep_result):
        from repro.experiments import fault_sweep

        text = fault_sweep.render(fault_sweep_result)
        assert "fault_rate" in text
        assert "recall" in text
