"""CrashSchedule tests: seeding, bounds, targeting, lookup."""

import pytest

from repro.faults.crashes import CrashEvent, CrashSchedule


class TestValidation:
    def test_negative_request_index_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule([CrashEvent(at_request=-1, shard=0)])

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule([CrashEvent(at_request=0, shard=-1)])

    def test_seeded_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            CrashSchedule.seeded(0, shards=0, requests=100)
        with pytest.raises(ValueError):
            CrashSchedule.seeded(0, shards=3, requests=3)
        with pytest.raises(ValueError):
            CrashSchedule.seeded(0, shards=3, requests=100, crashes=-1)


class TestSeeded:
    def test_same_seed_same_schedule(self):
        first = list(CrashSchedule.seeded(7, 3, 200, crashes=4))
        second = list(CrashSchedule.seeded(7, 3, 200, crashes=4))
        assert first == second

    def test_different_seed_differs(self):
        first = list(CrashSchedule.seeded(1, 3, 200, crashes=4))
        second = list(CrashSchedule.seeded(2, 3, 200, crashes=4))
        assert first != second

    def test_crash_points_land_in_the_middle_half(self):
        for seed in range(10):
            for event in CrashSchedule.seeded(seed, 4, 100, crashes=5):
                assert 25 <= event.at_request < 75
                assert 0 <= event.shard < 4
                assert event.hard

    def test_crash_count_capped_by_span(self):
        # requests=4 -> the middle half holds two indices; asking for
        # many crashes yields only what the span can hold
        schedule = CrashSchedule.seeded(0, 2, 4, crashes=10)
        assert len(schedule) == 2
        assert {event.at_request for event in schedule} == {1, 2}

    def test_soft_flag_travels(self):
        schedule = CrashSchedule.seeded(0, 2, 100, crashes=2, hard=False)
        assert all(not event.hard for event in schedule)

    def test_shard_of_targets_the_traffic_owner(self):
        # the victim must be whatever shard owns the request at the
        # crash index, not a uniform pick
        schedule = CrashSchedule.seeded(
            3, 8, 100, crashes=3, shard_of=lambda index: index % 8
        )
        for event in schedule:
            assert event.shard == event.at_request % 8


class TestLookup:
    def test_due_returns_events_for_the_index(self):
        events = [
            CrashEvent(at_request=5, shard=0),
            CrashEvent(at_request=5, shard=1),
            CrashEvent(at_request=9, shard=2),
        ]
        schedule = CrashSchedule(events)
        assert [e.shard for e in schedule.due(5)] == [0, 1]
        assert list(schedule.due(6)) == []
        assert len(schedule) == 3

    def test_shards_hit_collects_every_victim(self):
        schedule = CrashSchedule(
            [
                CrashEvent(at_request=1, shard=2),
                CrashEvent(at_request=2, shard=2),
                CrashEvent(at_request=3, shard=0),
            ]
        )
        assert schedule.shards_hit() == {0, 2}

    def test_iteration_is_ordered_by_request_index(self):
        schedule = CrashSchedule(
            [
                CrashEvent(at_request=9, shard=0),
                CrashEvent(at_request=2, shard=1),
            ]
        )
        assert [e.at_request for e in schedule] == [2, 9]
