"""Tests for repro.faults: determinism, perturbation semantics, rates."""


import pytest

from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.faults import FaultConfig, FaultInjector, Resilience, TransientFault
from repro.replay.record import Recording


def sample_events(n=200):
    events = []
    for i in range(n):
        if i % 10 == 0:
            events.append(
                flows.insert(mem(i), Tag("netflow", 1 + i // 10), tick=i)
            )
        else:
            events.append(flows.copy(mem(i - 1), mem(i), tick=i))
    return events


class TestFaultConfig:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(message_loss_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig.uniform(2.0)

    def test_uniform_splits_stream_rate(self):
        config = FaultConfig.uniform(0.2, seed=3)
        assert config.drop_rate == pytest.approx(0.05)
        assert config.plugin_fault_rate == pytest.approx(0.2)
        assert config.seed == 3
        assert config.perturbs_stream

    def test_zero_rate_perturbs_nothing(self):
        assert not FaultConfig.uniform(0.0).perturbs_stream


class TestDeterminism:
    def test_same_seed_same_perturbation(self):
        events = sample_events()
        a = FaultInjector(FaultConfig.uniform(0.3, seed=11))
        b = FaultInjector(FaultConfig.uniform(0.3, seed=11))
        assert a.perturb_events(events) == b.perturb_events(events)
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_different_seed_different_perturbation(self):
        events = sample_events()
        a = FaultInjector(FaultConfig.uniform(0.3, seed=11))
        b = FaultInjector(FaultConfig.uniform(0.3, seed=12))
        assert a.perturb_events(events) != b.perturb_events(events)

    def test_draws_are_order_independent(self):
        """The resume-safety property: a draw at index i does not depend
        on whether draws at earlier indices happened."""
        injector = FaultInjector(FaultConfig.uniform(0.5, seed=5))
        full = [injector.message_lost(0, 0, 1, a) for a in range(20)]
        fresh = FaultInjector(FaultConfig.uniform(0.5, seed=5))
        # skip the first 10 draws entirely
        tail = [fresh.message_lost(0, 0, 1, a) for a in range(10, 20)]
        assert full[10:] == tail


class TestStreamPerturbation:
    def test_zero_rates_identity(self):
        events = sample_events()
        injector = FaultInjector(FaultConfig(seed=1))
        assert injector.perturb_events(events) == events
        assert injector.stats.total == 0

    def test_rates_roughly_respected(self):
        events = sample_events(2000)
        injector = FaultInjector(
            FaultConfig(seed=2, drop_rate=0.1, duplicate_rate=0.1)
        )
        injector.perturb_events(events)
        assert 100 < injector.stats.dropped < 300
        assert 100 < injector.stats.duplicated < 300

    def test_corrupted_events_stay_schema_valid(self):
        events = sample_events(500)
        injector = FaultInjector(FaultConfig(seed=3, corrupt_rate=0.5))
        perturbed = injector.perturb_events(events)
        assert injector.stats.corrupted > 0
        # FlowEvent validation runs in __post_init__; surviving objects
        # are valid by construction.  Corruption only moves destinations.
        kinds = [e.kind for e in events]
        assert [e.kind for e in perturbed] == kinds

    def test_reorder_preserves_multiset(self):
        events = sample_events(500)
        injector = FaultInjector(FaultConfig(seed=4, reorder_rate=0.3))
        perturbed = injector.perturb_events(events)
        assert injector.stats.reordered > 0
        assert len(perturbed) == len(events)
        assert sorted(perturbed, key=repr) == sorted(events, key=repr)
        assert perturbed != events

    def test_perturb_recording_stamps_meta(self):
        recording = Recording(events=sample_events(50), meta={"x": 1})
        injector = FaultInjector(FaultConfig.uniform(0.2, seed=9))
        perturbed = injector.perturb_recording(recording)
        assert perturbed.meta["x"] == 1
        assert perturbed.meta["fault_seed"] == 9


class TestPluginAndDistributedFaults:
    def test_plugin_fault_raises_transient(self):
        injector = FaultInjector(FaultConfig(seed=0, plugin_fault_rate=1.0))
        with pytest.raises(TransientFault):
            injector.maybe_plugin_fault("pipeline", 3)
        assert injector.stats.plugin_faults == 1

    def test_plugin_fault_retry_redraws(self):
        """At rate 0.5, some (site, index) faults clear on a later attempt."""
        injector = FaultInjector(FaultConfig(seed=1, plugin_fault_rate=0.5))
        recovered = 0
        for index in range(100):
            try:
                injector.maybe_plugin_fault("p", index, attempt=0)
            except TransientFault:
                try:
                    injector.maybe_plugin_fault("p", index, attempt=1)
                    recovered += 1
                except TransientFault:
                    pass
        assert recovered > 0

    def test_node_crash_and_pick(self):
        injector = FaultInjector(FaultConfig(seed=2, node_crash_rate=1.0))
        assert injector.node_crashes(0)
        assert injector.stats.node_crashes == 1
        assert 0 <= injector.pick(4, "crash", 0) < 4
        with pytest.raises(ValueError):
            injector.pick(0)


class TestResilienceBundle:
    def test_create_wires_injector_into_supervisor(self):
        bundle = Resilience.create(fault_rate=0.1, fault_seed=3)
        assert bundle.injector is not None
        assert bundle.supervisor is not None
        assert bundle.supervisor.injector is bundle.injector

    def test_create_without_faults_has_no_injector(self):
        bundle = Resilience.create(supervisor_policy="quarantine")
        assert bundle.injector is None
        assert bundle.supervisor is not None
        assert bundle.supervisor.policy == "quarantine"

    def test_checkpoint_every_requires_path(self):
        with pytest.raises(ValueError):
            Resilience(checkpoint_every=10)
