"""Pin the semantics of ``ShadowMemory.replace_tags`` around the
self-copy short-circuit.

A copy dependency ``mov [x], [x]`` replays as ``replace_tags(x,
tags_at(x))``.  The short-circuit must return exactly what the full
clear+re-add round trip returns -- ``(n, n)`` -- without mutating
anything, and must *not* engage when lifetime monitors are attached
(the round trip deliberately bounces single-copy tags through a
1 -> 0 -> 1 transition those monitors observe).
"""

from repro.dift.shadow import ShadowMemory, mem
from repro.dift.tags import Tag

NET = Tag("netflow", 1)
FILE = Tag("file", 2)
PROC = Tag("process", 3)


def seeded_shadow(m_prov: int = 4) -> ShadowMemory:
    shadow = ShadowMemory(m_prov=m_prov)
    for tag in (NET, FILE, PROC):
        shadow.add_tag(mem(0), tag)
    shadow.add_tag(mem(1), NET)
    return shadow


class TestSelfCopyShortCircuit:
    def test_returns_n_n_like_the_round_trip(self):
        shadow = seeded_shadow()
        current = shadow.tags_at(mem(0))
        assert shadow.replace_tags(mem(0), current) == (3, 3)

    def test_state_is_untouched(self):
        shadow = seeded_shadow()
        lists_before = shadow._lists[mem(0)]
        order_before = shadow.tags_at(mem(0))
        counts_before = shadow.counter.snapshot()
        shadow.replace_tags(mem(0), order_before)
        # same list object, same order, same counts, same aggregates
        assert shadow._lists[mem(0)] is lists_before
        assert shadow.tags_at(mem(0)) == order_before
        assert shadow.counter.snapshot() == counts_before
        assert shadow.total_entries() == 4
        assert shadow.tainted_count() == 2

    def test_matches_full_round_trip_result(self):
        # the short-circuit result must equal what a shadow that cannot
        # take the shortcut (monitors attached) computes for the same op
        fast = seeded_shadow()
        slow = seeded_shadow()
        slow.counter.on_birth = lambda tag: None
        tags = fast.tags_at(mem(0))
        assert fast.replace_tags(mem(0), tags) == slow.replace_tags(
            mem(0), list(tags)
        )
        assert fast.tags_at(mem(0)) == slow.tags_at(mem(0))
        assert fast.counter.snapshot() == slow.counter.snapshot()

    def test_not_taken_when_order_differs(self):
        shadow = seeded_shadow()
        reordered = tuple(reversed(shadow.tags_at(mem(0))))
        added, dropped = shadow.replace_tags(mem(0), reordered)
        assert (added, dropped) == (3, 3)
        assert shadow.tags_at(mem(0)) == reordered


class TestMonitorsDisableTheShortCircuit:
    def test_lifetime_monitors_see_the_round_trip(self):
        shadow = seeded_shadow()
        births, deaths = [], []
        shadow.counter.on_birth = births.append
        shadow.counter.on_death = deaths.append
        shadow.replace_tags(mem(0), shadow.tags_at(mem(0)))
        # FILE and PROC exist only at mem(0): the round trip must bounce
        # them through death+birth; NET also lives at mem(1) so its copy
        # count never reaches zero
        assert FILE in deaths and PROC in deaths
        assert FILE in births and PROC in births
        assert NET not in deaths

    def test_only_one_monitor_is_enough_to_disable(self):
        shadow = seeded_shadow()
        deaths = []
        shadow.counter.on_death = deaths.append
        lists_before = shadow._lists[mem(0)]
        shadow.replace_tags(mem(0), shadow.tags_at(mem(0)))
        # full path rebuilt the list object
        assert shadow._lists[mem(0)] is not lists_before
        assert deaths  # the round trip was observable


class TestReplaceTagsGeneral:
    def test_plain_replacement_still_works(self):
        shadow = seeded_shadow()
        added, dropped = shadow.replace_tags(mem(0), [NET])
        assert (added, dropped) == (1, 3)
        assert shadow.tags_at(mem(0)) == (NET,)

    def test_replace_empty_clears(self):
        shadow = seeded_shadow()
        added, dropped = shadow.replace_tags(mem(0), [])
        assert (added, dropped) == (0, 3)
        assert not shadow.is_tainted(mem(0))

    def test_replace_on_untainted_location(self):
        shadow = ShadowMemory(m_prov=2)
        assert shadow.replace_tags(mem(9), [NET, FILE]) == (2, 0)
        assert shadow.tags_at(mem(9)) == (NET, FILE)
