"""Tests for VALUE provenance scheduling (Section VI future work)."""

import pytest

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.provenance import ProvenanceList, SchedulingPolicy
from repro.dift.shadow import ShadowMemory, mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker


def value_by_index(tag: Tag) -> float:
    """Toy value function: higher index = more valuable."""
    return float(tag.index)


class TestValueList:
    def test_requires_value_fn(self):
        with pytest.raises(ValueError, match="value_fn"):
            ProvenanceList(2, SchedulingPolicy.VALUE)

    def test_evicts_least_valuable(self):
        plist = ProvenanceList(2, SchedulingPolicy.VALUE, value_by_index)
        plist.add(Tag("t", 5))
        plist.add(Tag("t", 3))
        outcome = plist.add(Tag("t", 9))
        assert outcome.added
        assert outcome.dropped == Tag("t", 3)
        assert set(plist.tags()) == {Tag("t", 5), Tag("t", 9)}

    def test_rejects_newcomer_worth_less_than_cheapest(self):
        plist = ProvenanceList(2, SchedulingPolicy.VALUE, value_by_index)
        plist.add(Tag("t", 5))
        plist.add(Tag("t", 7))
        outcome = plist.add(Tag("t", 2))
        assert not outcome.present
        assert set(plist.tags()) == {Tag("t", 5), Tag("t", 7)}

    def test_equal_value_newcomer_rejected(self):
        plist = ProvenanceList(1, SchedulingPolicy.VALUE, value_by_index)
        plist.add(Tag("t", 4))
        outcome = plist.add(Tag("u", 4))
        assert not outcome.present

    def test_duplicate_still_noop(self):
        plist = ProvenanceList(1, SchedulingPolicy.VALUE, value_by_index)
        tag = Tag("t", 4)
        plist.add(tag)
        outcome = plist.add(tag)
        assert outcome.present and not outcome.added


class TestValueShadow:
    def test_shadow_requires_value_fn(self):
        with pytest.raises(ValueError):
            ShadowMemory(m_prov=2, scheduling=SchedulingPolicy.VALUE)

    def test_counter_stays_consistent_under_value_eviction(self):
        shadow = ShadowMemory(
            m_prov=2,
            scheduling=SchedulingPolicy.VALUE,
            value_fn=value_by_index,
        )
        tags = [Tag("t", i) for i in (3, 1, 7, 2, 9)]
        for tag in tags:
            shadow.add_tag(mem(0), tag)
        ground_truth = {
            tag.key: 1 for tag in shadow.tags_at(mem(0))
        }
        assert shadow.counter.snapshot() == ground_truth


class TestValueTracker:
    def make_tracker(self) -> DIFTTracker:
        params = MitosParams(R=1 << 16, M_prov=2, tau_scale=1.0)
        return DIFTTracker(
            params, PropagateAllPolicy(), scheduling=SchedulingPolicy.VALUE
        )

    def test_rare_tag_displaces_saturated_tag(self):
        tracker = self.make_tracker()
        common = Tag("netflow", 1)
        filler = Tag("file", 1)
        rare = Tag("process", 1)
        # make `common` saturated (many copies) and `filler` mid-range
        for i in range(50):
            tracker.process(flows.insert(mem(100 + i), common, tick=i))
        for i in range(10):
            tracker.process(flows.insert(mem(200 + i), filler, tick=100 + i))
        # fill one byte's list with both, then offer the rare tag
        tracker.process(flows.insert(mem(0), common, tick=200))
        tracker.process(flows.insert(mem(0), filler, tick=201))
        tracker.process(flows.insert(mem(0), rare, tick=202))
        kept = set(tracker.shadow.tags_at(mem(0)))
        assert rare in kept
        assert common not in kept  # the saturated tag was the cheapest

    def test_retention_value_decreases_with_copies(self):
        tracker = self.make_tracker()
        tag = Tag("netflow", 1)
        tracker.process(flows.insert(mem(0), tag, tick=0))
        value_rare = tracker.tag_retention_value(tag)
        for i in range(1, 30):
            tracker.process(flows.insert(mem(i), tag, tick=i))
        assert tracker.tag_retention_value(tag) < value_rare

    def test_reset_preserves_value_scheduling(self):
        tracker = self.make_tracker()
        tracker.reset()
        assert tracker.shadow.scheduling is SchedulingPolicy.VALUE
        assert tracker.shadow.value_fn is not None
        # and the fresh shadow still evicts by value
        tracker.process(flows.insert(mem(0), Tag("a", 1), tick=0))
        assert tracker.shadow.is_tainted(mem(0))
