"""The O(1) running aggregates must always equal a from-scratch scan.

PR 3 replaced the per-call scans in :class:`TagCopyCounter` and
:class:`ShadowMemory` with running counters (``total_entries``,
``tainted_count``, weighted pollution).  These property tests drive
randomized mutation sequences -- adds, removes, clears, replaces, unions,
and tracker-level degradation -- and check after every step that each
aggregate is *exactly* what recomputing it from the raw structures gives.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.shadow import ShadowMemory, mem
from repro.dift.stats import TagCopyCounter
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker

TAGS = [
    Tag(tag_type, index)
    for tag_type in ("netflow", "file", "process")
    for index in range(1, 5)
]

#: a non-unit weight map plus a type missing from it (default weight path)
WEIGHTS = {"netflow": 2.5, "file": 0.5}


def scratch_pollution(counter: TagCopyCounter, o, default=1.0):
    """The historical O(#types) recomputation, from the raw counts."""
    totals = {}
    for (tag_type, _), count in counter.snapshot().items():
        totals[tag_type] = totals.get(tag_type, 0) + count
    if not totals:
        return 0
    return sum(
        o.get(tag_type, default) * total for tag_type, total in totals.items()
    )


def assert_aggregates_consistent(shadow: ShadowMemory):
    counter = shadow.counter
    per_tag = counter.snapshot()
    # counter totals vs the copy-count vector
    assert counter.total_entries() == sum(per_tag.values())
    for tag_type in {key[0] for key in per_tag}:
        assert counter.type_total(tag_type) == sum(
            count for key, count in per_tag.items() if key[0] == tag_type
        )
    # weighted pollution: unit, non-unit, and changed-default paths, each
    # exactly equal to the scratch recomputation
    assert counter.weighted_pollution({}) == scratch_pollution(counter, {})
    assert counter.weighted_pollution(WEIGHTS) == scratch_pollution(
        counter, WEIGHTS
    )
    assert counter.weighted_pollution(WEIGHTS, 3.0) == scratch_pollution(
        counter, WEIGHTS, 3.0
    )
    # shadow counters vs a location scan
    lists = shadow._lists
    assert shadow.total_entries() == sum(len(pl) for pl in lists.values())
    assert shadow.tainted_count() == sum(
        1 for pl in lists.values() if len(pl) > 0
    )
    # the shadow's entry total and the counter's must agree: every list
    # entry is one copy
    assert shadow.total_entries() == counter.total_entries()


ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "clear", "replace", "union"]),
        st.integers(min_value=0, max_value=7),  # location selector
        st.integers(min_value=0, max_value=len(TAGS) - 1),
    ),
    min_size=1,
    max_size=60,
)


class TestShadowAggregatesProperty:
    @given(sequence=ops, m_prov=st.sampled_from([1, 2, 3, 10]))
    @settings(max_examples=60, deadline=None)
    def test_aggregates_match_scratch_after_every_op(self, sequence, m_prov):
        shadow = ShadowMemory(m_prov=m_prov)
        rng = random.Random(1234)
        for op, loc_index, tag_index in sequence:
            location = mem(loc_index)
            tag = TAGS[tag_index]
            if op == "add":
                shadow.add_tag(location, tag)
            elif op == "remove":
                shadow.remove_tag(location, tag)
            elif op == "clear":
                shadow.clear_location(location)
            elif op == "replace":
                count = rng.randrange(0, 4)
                shadow.replace_tags(
                    location,
                    [TAGS[(tag_index + i) % len(TAGS)] for i in range(count)],
                )
            else:
                shadow.union_into([mem((loc_index + 1) % 8)], location)
            assert_aggregates_consistent(shadow)

    def test_self_replace_keeps_aggregates(self):
        shadow = ShadowMemory(m_prov=4)
        location = mem(0)
        for tag in TAGS[:3]:
            shadow.add_tag(location, tag)
        before = shadow.counter.snapshot()
        shadow.replace_tags(location, shadow.tags_at(location))
        assert shadow.counter.snapshot() == before
        assert_aggregates_consistent(shadow)


class TestDegradeAggregates:
    def test_degraded_tracker_aggregates_stay_consistent(self):
        # tiny N_R so the degrade path actually fires mid-run
        params = MitosParams(R=16, M_prov=2, tau_scale=1.0)
        tracker = DIFTTracker(
            params=params, policy=PropagateAllPolicy(), degrade_at=0.5
        )
        rng = random.Random(99)
        tick = 0
        degraded = False
        for _ in range(300):
            tick += 1
            roll = rng.random()
            location = mem(rng.randrange(12))
            if roll < 0.6:
                tracker.process(
                    flows.insert(location, TAGS[rng.randrange(len(TAGS))], tick=tick)
                )
            elif roll < 0.9:
                tracker.process(
                    flows.copy(mem(rng.randrange(12)), location, tick=tick)
                )
            else:
                tracker.process(flows.clear(location, tick=tick))
            assert_aggregates_consistent(tracker.shadow)
            if tracker.stats.degradations:
                degraded = True
        assert degraded, "degrade path never fired; shrink N_R in this test"
