"""Property-based tests for the DIFT substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.provenance import ProvenanceList, SchedulingPolicy
from repro.dift.shadow import ShadowMemory, mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker

tag_strategy = st.builds(
    Tag,
    type=st.sampled_from(["netflow", "file", "process", "export_table"]),
    index=st.integers(1, 6),
)


class TestProvenanceProperties:
    @given(
        capacity=st.integers(1, 8),
        tags=st.lists(tag_strategy, max_size=50),
        scheduling=st.sampled_from(
            [SchedulingPolicy.FIFO, SchedulingPolicy.LRU, SchedulingPolicy.REJECT]
        ),
    )
    def test_never_exceeds_capacity_and_no_duplicates(
        self, capacity, tags, scheduling
    ):
        plist = ProvenanceList(capacity, scheduling)
        for tag in tags:
            plist.add(tag)
        contents = plist.tags()
        assert len(contents) <= capacity
        assert len(set(contents)) == len(contents)

    @given(capacity=st.integers(1, 8), tags=st.lists(tag_strategy, max_size=50))
    def test_value_scheduling_keeps_top_values(self, capacity, tags):
        value_fn = lambda tag: float(tag.index) + hash(tag.type) % 7 / 10.0
        plist = ProvenanceList(capacity, SchedulingPolicy.VALUE, value_fn)
        for tag in tags:
            plist.add(tag)
        contents = plist.tags()
        assert len(contents) <= capacity
        assert len(set(contents)) == len(contents)
        # value-admission invariant: any offered tag that is absent was
        # rejected or evicted in favour of tags worth at least as much,
        # so no absent tag outvalues the cheapest resident
        if contents:
            cheapest_resident = min(value_fn(t) for t in contents)
            for tag in set(tags) - set(contents):
                assert value_fn(tag) <= cheapest_resident

    @given(capacity=st.integers(1, 8), tags=st.lists(tag_strategy, max_size=50))
    def test_fifo_keeps_most_recent_distinct_tags(self, capacity, tags):
        plist = ProvenanceList(capacity, SchedulingPolicy.FIFO)
        for tag in tags:
            plist.add(tag)
        # reconstruct expected FIFO contents: replay keeping first-seen
        # order among still-present tags
        expected: list = []
        for tag in tags:
            if tag in expected:
                continue
            if len(expected) == capacity:
                expected.pop(0)
            expected.append(tag)
        assert list(plist.tags()) == expected


class TestShadowCounterConsistency:
    @given(
        m_prov=st.integers(1, 5),
        operations=st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "clear"]),
                st.integers(0, 6),  # address
                tag_strategy,
            ),
            max_size=80,
        ),
    )
    @settings(max_examples=100)
    def test_counter_equals_ground_truth_scan(self, m_prov, operations):
        """The live n[t,i] counter always equals a full shadow scan."""
        shadow = ShadowMemory(m_prov=m_prov)
        for op, address, tag in operations:
            if op == "add":
                shadow.add_tag(mem(address), tag)
            elif op == "remove":
                shadow.remove_tag(mem(address), tag)
            else:
                shadow.clear_location(mem(address))
        ground_truth: dict = {}
        for loc in shadow.tainted_locations():
            for tag in shadow.tags_at(loc):
                ground_truth[tag.key] = ground_truth.get(tag.key, 0) + 1
        assert shadow.counter.snapshot() == ground_truth
        assert shadow.counter.total_entries() == shadow.total_entries()


class TestTrackerProperties:
    @given(
        events=st.lists(
            st.tuples(
                st.sampled_from(["insert", "copy", "address", "control", "clear"]),
                st.integers(0, 5),
                st.integers(0, 5),
                tag_strategy,
            ),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_tracker_never_desyncs_counter(self, events):
        params = MitosParams(R=1 << 16, M_prov=3, tau_scale=1.0)
        tracker = DIFTTracker(params, PropagateAllPolicy())
        for tick, (op, src, dst, tag) in enumerate(events):
            if op == "insert":
                tracker.process(flows.insert(mem(dst), tag, tick=tick))
            elif op == "copy":
                tracker.process(flows.copy(mem(src), mem(dst), tick=tick))
            elif op == "address":
                tracker.process(flows.address_dep(mem(src), mem(dst), tick=tick))
            elif op == "control":
                tracker.process(
                    flows.control_dep((mem(src),), mem(dst), tick=tick)
                )
            else:
                tracker.process(flows.clear(mem(dst), tick=tick))
        ground_truth: dict = {}
        for loc in tracker.shadow.tainted_locations():
            for tag in tracker.shadow.tags_at(loc):
                ground_truth[tag.key] = ground_truth.get(tag.key, 0) + 1
        assert tracker.counter.snapshot() == ground_truth
        # pollution equals unweighted entry count with unit weights
        assert tracker.pollution() == tracker.shadow.total_entries()
