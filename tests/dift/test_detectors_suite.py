"""Tests for the extended detector suite."""

import pytest

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.detector import ConfluenceDetector
from repro.dift.detectors import (
    AggregationDetector,
    DetectorSuite,
    SequenceDetector,
)
from repro.dift.shadow import ShadowMemory, mem
from repro.dift.tags import Tag, TagTypes
from repro.dift.tracker import DIFTTracker

NET1 = Tag(TagTypes.NETFLOW, 1)
NET2 = Tag(TagTypes.NETFLOW, 2)
NET3 = Tag(TagTypes.NETFLOW, 3)
EXPORT = Tag(TagTypes.EXPORT_TABLE, 1)


class TestSequenceDetector:
    def detector(self):
        return SequenceDetector([TagTypes.NETFLOW, TagTypes.EXPORT_TABLE])

    def test_fires_in_order(self):
        shadow = ShadowMemory(m_prov=4)
        detector = self.detector()
        shadow.add_tag(mem(0), NET1)
        assert detector.check(shadow, mem(0), tick=1) is None
        shadow.add_tag(mem(0), EXPORT)
        alert = detector.check(shadow, mem(0), tick=2)
        assert alert is not None
        assert detector.detected_bytes == 1

    def test_blocks_out_of_order(self):
        shadow = ShadowMemory(m_prov=4)
        detector = self.detector()
        shadow.add_tag(mem(0), EXPORT)
        detector.check(shadow, mem(0), tick=1)  # export arrives first
        shadow.add_tag(mem(0), NET1)
        assert detector.check(shadow, mem(0), tick=2) is None

    def test_alerts_once_per_location(self):
        shadow = ShadowMemory(m_prov=4)
        detector = self.detector()
        shadow.add_tag(mem(0), NET1)
        detector.check(shadow, mem(0), tick=0)
        shadow.add_tag(mem(0), EXPORT)
        assert detector.check(shadow, mem(0), tick=1) is not None
        assert detector.check(shadow, mem(0), tick=2) is None

    def test_reset(self):
        shadow = ShadowMemory(m_prov=4)
        detector = self.detector()
        shadow.add_tag(mem(0), NET1)
        detector.check(shadow, mem(0), tick=0)
        shadow.add_tag(mem(0), EXPORT)
        detector.check(shadow, mem(0), tick=1)
        detector.reset()
        assert detector.alerts == []
        # after reset, both types are already present: arrival order is
        # re-learned from the current contents in one call (both "arrive"
        # together in required order)
        assert detector.check(shadow, mem(0), tick=2) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceDetector(["netflow"])
        with pytest.raises(ValueError):
            SequenceDetector(["a", "a"])


class TestAggregationDetector:
    def test_fires_at_threshold(self):
        shadow = ShadowMemory(m_prov=8)
        detector = AggregationDetector(TagTypes.NETFLOW, threshold=3)
        shadow.add_tag(mem(0), NET1)
        shadow.add_tag(mem(0), NET2)
        assert detector.check(shadow, mem(0)) is None
        shadow.add_tag(mem(0), NET3)
        assert detector.check(shadow, mem(0)) is not None

    def test_other_types_do_not_count(self):
        shadow = ShadowMemory(m_prov=8)
        detector = AggregationDetector(TagTypes.NETFLOW, threshold=2)
        shadow.add_tag(mem(0), NET1)
        shadow.add_tag(mem(0), EXPORT)
        assert detector.check(shadow, mem(0)) is None

    def test_scan(self):
        shadow = ShadowMemory(m_prov=8)
        detector = AggregationDetector(TagTypes.NETFLOW, threshold=2)
        for address in (0, 1):
            shadow.add_tag(mem(address), NET1)
            shadow.add_tag(mem(address), NET2)
        assert len(detector.scan(shadow)) == 2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AggregationDetector("netflow", threshold=1)


class TestDetectorSuite:
    def suite(self):
        return DetectorSuite(
            [
                ConfluenceDetector(),
                AggregationDetector(TagTypes.NETFLOW, threshold=2),
            ]
        )

    def test_members_all_polled(self):
        shadow = ShadowMemory(m_prov=8)
        suite = self.suite()
        shadow.add_tag(mem(0), NET1)
        shadow.add_tag(mem(0), NET2)
        shadow.add_tag(mem(0), EXPORT)
        suite.check(shadow, mem(0), tick=5)
        # confluence AND aggregation both fired on the same location
        assert suite.detected_locations == 2
        assert len(suite.alerts) == 2

    def test_tracker_integration(self):
        params = MitosParams(R=1 << 16, M_prov=8, tau_scale=1.0)
        tracker = DIFTTracker(
            params, PropagateAllPolicy(), detector=self.suite()
        )
        tracker.process(flows.insert(mem(0), NET1, tick=0))
        tracker.process(flows.insert(mem(0), NET2, tick=1))
        assert tracker.detector.detected_bytes == 1  # aggregation fired

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            DetectorSuite([])

    def test_reset_clears_all(self):
        shadow = ShadowMemory(m_prov=8)
        suite = self.suite()
        shadow.add_tag(mem(0), NET1)
        shadow.add_tag(mem(0), NET2)
        suite.check(shadow, mem(0))
        suite.reset()
        assert suite.alerts == []
        assert suite.detected_locations == 0
