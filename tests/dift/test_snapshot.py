"""Tests for tracker snapshot/restore (checkpointing)."""

import pytest

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.provenance import SchedulingPolicy
from repro.dift.shadow import mem, reg
from repro.dift.snapshot import (
    SnapshotError,
    load_snapshot,
    restore_tracker,
    save_snapshot,
    snapshot_tracker,
)
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.workloads.attack import InMemoryAttack
from repro.workloads.calibration import benchmark_params


def make_tracker(m_prov: int = 4) -> DIFTTracker:
    params = MitosParams(R=1 << 16, M_prov=m_prov, tau_scale=1.0)
    return DIFTTracker(params, PropagateAllPolicy())


NET = Tag("netflow", 1)
FILE = Tag("file", 1)


class TestSnapshotRoundTrip:
    def test_state_restored_exactly(self):
        source = make_tracker()
        source.process(flows.insert(mem(0), NET, tick=0))
        source.process(flows.insert(mem(0), FILE, tick=1))
        source.process(flows.insert(reg("r1"), NET, tick=2))
        source.process(flows.copy(mem(0), ("file", (3, 7)), tick=3))

        target = make_tracker()
        restore_tracker(target, snapshot_tracker(source))
        assert target.counter.snapshot() == source.counter.snapshot()
        for location in source.shadow.tainted_locations():
            assert target.shadow.tags_at(location) == source.shadow.tags_at(
                location
            )
        assert target.stats.ticks == source.stats.ticks

    def test_provenance_order_preserved(self):
        """FIFO behaviour after restore must match the live run."""
        source = make_tracker(m_prov=2)
        tags = [Tag("netflow", i) for i in (1, 2)]
        for tag in tags:
            source.process(flows.insert(mem(0), tag, tick=0))
        target = make_tracker(m_prov=2)
        restore_tracker(target, snapshot_tracker(source))
        # adding a third tag must evict netflow#1 (the FIFO head) in both
        third = Tag("netflow", 3)
        source.process(flows.insert(mem(0), third, tick=5))
        target.process(flows.insert(mem(0), third, tick=5))
        assert source.shadow.tags_at(mem(0)) == target.shadow.tags_at(mem(0))

    def test_checkpointed_replay_equals_full_replay(self):
        """Replay prefix -> snapshot -> restore -> suffix == full replay."""
        recording = InMemoryAttack(
            variant="reverse_tcp", seed=0, payload_bytes=64, imports=8,
            noise_bytes=96, noise_rounds=2,
        ).record()
        events = list(recording)
        split = len(events) // 2
        params = benchmark_params(
            crossover_copies=400.0, pollution_fraction=0.003
        )
        full = DIFTTracker(params, PropagateAllPolicy())
        full.process_many(events)

        prefix = DIFTTracker(params, PropagateAllPolicy())
        prefix.process_many(events[:split])
        resumed = DIFTTracker(params, PropagateAllPolicy())
        restore_tracker(resumed, snapshot_tracker(prefix))
        resumed.process_many(events[split:])
        assert resumed.counter.snapshot() == full.counter.snapshot()

    def test_file_round_trip(self, tmp_path):
        source = make_tracker()
        source.process(flows.insert(mem(9), NET, tick=0))
        path = save_snapshot(source, tmp_path / "ckpt.json.gz")
        target = make_tracker()
        load_snapshot(target, path)
        assert target.shadow.tags_at(mem(9)) == (NET,)

    def test_plain_json_file(self, tmp_path):
        source = make_tracker()
        source.process(flows.insert(mem(9), NET, tick=0))
        path = save_snapshot(source, tmp_path / "ckpt.json")
        assert path.read_text().startswith("{")
        target = make_tracker()
        load_snapshot(target, path)
        assert target.counter.copies(NET) == 1


class TestFullStateEquality:
    """Every observable facet of tracker state survives a round trip."""

    def workload_tracker(self) -> DIFTTracker:
        recording = InMemoryAttack(
            variant="reverse_tcp", seed=3, payload_bytes=96, imports=12,
            noise_bytes=128, noise_rounds=3,
        ).record()
        params = benchmark_params(
            crossover_copies=400.0, pollution_fraction=0.003
        )
        tracker = DIFTTracker(params, PropagateAllPolicy())
        tracker.process_many(recording)
        return tracker

    def restored_copy(self, source: DIFTTracker) -> DIFTTracker:
        target = DIFTTracker(source.params, PropagateAllPolicy())
        restore_tracker(target, snapshot_tracker(source))
        return target

    def test_tainted_location_set_identical(self):
        source = self.workload_tracker()
        target = self.restored_copy(source)
        assert sorted(target.shadow.tainted_locations(), key=repr) == sorted(
            source.shadow.tainted_locations(), key=repr
        )

    def test_provenance_lists_identical_in_order(self):
        source = self.workload_tracker()
        target = self.restored_copy(source)
        for location in source.shadow.tainted_locations():
            assert target.shadow.tags_at(location) == source.shadow.tags_at(
                location
            )

    def test_pollution_counters_identical(self):
        source = self.workload_tracker()
        target = self.restored_copy(source)
        assert target.counter.snapshot() == source.counter.snapshot()
        assert target.counter.total_entries() == source.counter.total_entries()
        assert target.pollution() == pytest.approx(source.pollution())

    def test_retention_values_identical(self):
        """Copy counts drive tag_retention_value; both must agree per tag."""
        source = self.workload_tracker()
        target = self.restored_copy(source)
        seen = set()
        for location in source.shadow.tainted_locations():
            seen.update(source.shadow.tags_at(location))
        assert seen
        for tag in seen:
            assert target.tag_retention_value(tag) == pytest.approx(
                source.tag_retention_value(tag)
            )

    def test_file_round_trip_full_equality(self, tmp_path):
        source = self.workload_tracker()
        path = save_snapshot(source, tmp_path / "full.json.gz")
        target = DIFTTracker(source.params, PropagateAllPolicy())
        load_snapshot(target, path)
        assert target.counter.snapshot() == source.counter.snapshot()
        for location in source.shadow.tainted_locations():
            assert target.shadow.tags_at(location) == source.shadow.tags_at(
                location
            )
        assert target.pollution() == pytest.approx(source.pollution())


class TestSnapshotValidation:
    def test_m_prov_mismatch_rejected(self):
        source = make_tracker(m_prov=4)
        snapshot = snapshot_tracker(source)
        with pytest.raises(SnapshotError, match="M_prov"):
            restore_tracker(make_tracker(m_prov=8), snapshot)

    def test_scheduling_mismatch_rejected(self):
        source = make_tracker()
        snapshot = snapshot_tracker(source)
        params = MitosParams(R=1 << 16, M_prov=4, tau_scale=1.0)
        other = DIFTTracker(
            params, PropagateAllPolicy(), scheduling=SchedulingPolicy.LRU
        )
        with pytest.raises(SnapshotError, match="scheduling"):
            restore_tracker(other, snapshot)

    def test_version_mismatch_rejected(self):
        snapshot = snapshot_tracker(make_tracker())
        snapshot["version"] = 99
        with pytest.raises(SnapshotError, match="version"):
            restore_tracker(make_tracker(), snapshot)

    def test_malformed_locations_rejected(self):
        snapshot = snapshot_tracker(make_tracker())
        snapshot["locations"] = [{"bogus": 1}]
        with pytest.raises(SnapshotError, match="malformed"):
            restore_tracker(make_tracker(), snapshot)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("not json{{")
        with pytest.raises(SnapshotError, match="JSON"):
            load_snapshot(make_tracker(), path)
