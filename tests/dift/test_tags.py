"""Tests for repro.dift.tags."""

import pytest

from repro.dift.tags import Tag, TagAllocator, TagTypes


class TestTag:
    def test_key(self):
        assert Tag("netflow", 3).key == ("netflow", 3)

    def test_equality_and_hash(self):
        assert Tag("file", 1) == Tag("file", 1)
        assert hash(Tag("file", 1)) == hash(Tag("file", 1))
        assert Tag("file", 1) != Tag("file", 2)
        assert Tag("file", 1) != Tag("netflow", 1)

    def test_ordering(self):
        assert Tag("a", 1) < Tag("a", 2) < Tag("b", 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Tag("", 1)
        with pytest.raises(ValueError):
            Tag("netflow", 0)


class TestAllocator:
    def test_indices_increment_per_type(self):
        alloc = TagAllocator()
        assert alloc.fresh("netflow").index == 1
        assert alloc.fresh("netflow").index == 2
        assert alloc.fresh("file").index == 1

    def test_origin_dedup(self):
        alloc = TagAllocator()
        a = alloc.fresh(TagTypes.NETFLOW, origin=("10.0.0.1", 443))
        b = alloc.fresh(TagTypes.NETFLOW, origin=("10.0.0.1", 443))
        c = alloc.fresh(TagTypes.NETFLOW, origin=("10.0.0.2", 443))
        assert a is b
        assert a != c

    def test_same_origin_different_types_distinct(self):
        alloc = TagAllocator()
        a = alloc.fresh(TagTypes.NETFLOW, origin="x")
        b = alloc.fresh(TagTypes.FILE, origin="x")
        assert a != b
        assert a.index == 1 and b.index == 1

    def test_origin_recorded(self):
        alloc = TagAllocator()
        tag = alloc.fresh(TagTypes.FILE, origin=14)
        assert alloc.origin_of(tag) == 14
        anonymous = alloc.fresh(TagTypes.FILE)
        assert alloc.origin_of(anonymous) is None

    def test_minted_counts(self):
        alloc = TagAllocator()
        alloc.fresh("netflow")
        alloc.fresh("netflow")
        alloc.fresh("file")
        assert alloc.minted("netflow") == 2
        assert alloc.minted("process") == 0
        assert alloc.all_minted() == {"netflow": 2, "file": 1}
