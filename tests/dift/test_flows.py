"""Tests for repro.dift.flows."""

import pytest

from repro.dift import flows
from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag


class TestFlowKind:
    def test_direct_indirect_partition(self):
        assert FlowKind.COPY.is_direct
        assert FlowKind.COMPUTE.is_direct
        assert FlowKind.ADDRESS_DEP.is_indirect
        assert FlowKind.CONTROL_DEP.is_indirect
        assert not FlowKind.INSERT.is_direct
        assert not FlowKind.INSERT.is_indirect
        assert not FlowKind.CLEAR.is_indirect


class TestValidation:
    def test_insert_requires_tag(self):
        with pytest.raises(ValueError):
            FlowEvent(FlowKind.INSERT, mem(0))

    def test_non_insert_rejects_tag(self):
        with pytest.raises(ValueError):
            FlowEvent(FlowKind.COPY, mem(0), sources=(mem(1),), tag=Tag("t", 1))

    def test_direct_flows_require_sources(self):
        with pytest.raises(ValueError):
            FlowEvent(FlowKind.COPY, mem(0))
        with pytest.raises(ValueError):
            FlowEvent(FlowKind.COMPUTE, mem(0))


class TestConstructors:
    def test_insert(self):
        tag = Tag("netflow", 1)
        event = flows.insert(mem(5), tag, tick=7, context="net.recv")
        assert event.kind is FlowKind.INSERT
        assert event.tag == tag
        assert event.tick == 7
        assert event.context == "net.recv"

    def test_copy(self):
        event = flows.copy(reg("r1"), mem(5), tick=1)
        assert event.kind is FlowKind.COPY
        assert event.sources == (reg("r1"),)
        assert event.destination == mem(5)

    def test_compute(self):
        event = flows.compute((reg("r1"), reg("r2")), reg("r3"))
        assert event.kind is FlowKind.COMPUTE
        assert len(event.sources) == 2

    def test_address_dep(self):
        event = flows.address_dep(reg("t3"), mem(0x7FFFFFF8), context="sw")
        assert event.kind is FlowKind.ADDRESS_DEP
        assert event.sources == (reg("t3"),)

    def test_control_dep(self):
        event = flows.control_dep((reg("r1"),), mem(0))
        assert event.kind is FlowKind.CONTROL_DEP

    def test_clear(self):
        event = flows.clear(mem(0))
        assert event.kind is FlowKind.CLEAR
        assert event.sources == ()
