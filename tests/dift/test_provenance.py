"""Tests for repro.dift.provenance."""

import pytest

from repro.dift.provenance import ProvenanceList, SchedulingPolicy
from repro.dift.tags import Tag


def tags(n: int, tag_type: str = "netflow") -> list:
    return [Tag(tag_type, i + 1) for i in range(n)]


class TestBasics:
    def test_empty_list(self):
        plist = ProvenanceList(3)
        assert len(plist) == 0
        assert plist.free_slots == 3
        assert not plist.full
        assert plist.tags() == ()

    def test_add_and_membership(self):
        plist = ProvenanceList(3)
        tag = Tag("netflow", 1)
        outcome = plist.add(tag)
        assert outcome.added and outcome.present and outcome.dropped is None
        assert tag in plist
        assert list(plist) == [tag]

    def test_duplicate_add_is_noop(self):
        plist = ProvenanceList(3)
        tag = Tag("netflow", 1)
        plist.add(tag)
        outcome = plist.add(tag)
        assert outcome.present and not outcome.added
        assert len(plist) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ProvenanceList(0)

    def test_remove(self):
        plist = ProvenanceList(3)
        tag = Tag("file", 1)
        plist.add(tag)
        assert plist.remove(tag)
        assert not plist.remove(tag)
        assert len(plist) == 0

    def test_clear_returns_dropped(self):
        plist = ProvenanceList(5)
        for tag in tags(3):
            plist.add(tag)
        dropped = plist.clear()
        assert len(dropped) == 3
        assert len(plist) == 0


class TestFifoEviction:
    def test_drop_head_when_full(self):
        plist = ProvenanceList(2, SchedulingPolicy.FIFO)
        t1, t2, t3 = tags(3)
        plist.add(t1)
        plist.add(t2)
        outcome = plist.add(t3)
        assert outcome.added
        assert outcome.dropped == t1
        assert plist.tags() == (t2, t3)

    def test_order_is_insertion_order(self):
        plist = ProvenanceList(10)
        expected = tags(5)
        for tag in expected:
            plist.add(tag)
        assert list(plist.tags()) == expected

    def test_fifo_readd_does_not_refresh(self):
        plist = ProvenanceList(2, SchedulingPolicy.FIFO)
        t1, t2, t3 = tags(3)
        plist.add(t1)
        plist.add(t2)
        plist.add(t1)  # no-op under FIFO
        outcome = plist.add(t3)
        assert outcome.dropped == t1


class TestLruEviction:
    def test_touch_refreshes_recency(self):
        plist = ProvenanceList(2, SchedulingPolicy.LRU)
        t1, t2, t3 = tags(3)
        plist.add(t1)
        plist.add(t2)
        plist.touch(t1)  # t2 is now least recently used
        outcome = plist.add(t3)
        assert outcome.dropped == t2
        assert t1 in plist

    def test_readd_refreshes_recency(self):
        plist = ProvenanceList(2, SchedulingPolicy.LRU)
        t1, t2, t3 = tags(3)
        plist.add(t1)
        plist.add(t2)
        plist.add(t1)  # refresh under LRU
        outcome = plist.add(t3)
        assert outcome.dropped == t2

    def test_touch_noop_under_fifo(self):
        plist = ProvenanceList(2, SchedulingPolicy.FIFO)
        t1, t2 = tags(2)
        plist.add(t1)
        plist.add(t2)
        plist.touch(t1)
        assert plist.tags() == (t1, t2)


class TestRejectPolicy:
    def test_full_list_rejects_newcomer(self):
        plist = ProvenanceList(1, SchedulingPolicy.REJECT)
        t1, t2 = tags(2)
        plist.add(t1)
        outcome = plist.add(t2)
        assert not outcome.present and not outcome.added
        assert plist.tags() == (t1,)

    def test_existing_tag_still_present(self):
        plist = ProvenanceList(1, SchedulingPolicy.REJECT)
        t1 = Tag("netflow", 1)
        plist.add(t1)
        outcome = plist.add(t1)
        assert outcome.present and not outcome.added
