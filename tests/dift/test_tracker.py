"""Tests for repro.dift.tracker."""


from repro.core.params import MitosParams
from repro.core.policy import (
    MitosPolicy,
    PropagateAllPolicy,
    PropagateNonePolicy,
)
from repro.dift import flows
from repro.dift.detector import ConfluenceDetector
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag, TagTypes
from repro.dift.tracker import DIFTTracker


def params(**kwargs) -> MitosParams:
    defaults = dict(R=1 << 20, M_prov=4, tau_scale=1.0)
    defaults.update(kwargs)
    return MitosParams(**defaults)


def make_tracker(policy=None, **tracker_kwargs) -> DIFTTracker:
    p = params()
    return DIFTTracker(p, policy or PropagateAllPolicy(), **tracker_kwargs)


NET1 = Tag(TagTypes.NETFLOW, 1)
NET2 = Tag(TagTypes.NETFLOW, 2)
FILE1 = Tag(TagTypes.FILE, 1)
EXPORT1 = Tag(TagTypes.EXPORT_TABLE, 1)


class TestInsertAndClear:
    def test_insert_places_tag(self):
        tracker = make_tracker()
        tracker.process(flows.insert(mem(0), NET1))
        assert tracker.shadow.tags_at(mem(0)) == (NET1,)
        assert tracker.stats.inserts == 1
        assert tracker.counter.copies(NET1) == 1

    def test_clear_untaints(self):
        tracker = make_tracker()
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.clear(mem(0)))
        assert not tracker.shadow.is_tainted(mem(0))
        assert tracker.stats.clears == 1

    def test_tick_tracked(self):
        tracker = make_tracker()
        tracker.process(flows.insert(mem(0), NET1, tick=41))
        assert tracker.stats.ticks == 42


class TestDirectFlows:
    def test_copy_replaces_destination(self):
        tracker = make_tracker()
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.insert(mem(1), FILE1))
        tracker.process(flows.copy(mem(0), mem(1)))
        assert tracker.shadow.tags_at(mem(1)) == (NET1,)
        assert tracker.stats.dfp_copy == 1

    def test_copy_from_untainted_untaints(self):
        tracker = make_tracker()
        tracker.process(flows.insert(mem(1), FILE1))
        tracker.process(flows.copy(mem(0), mem(1)))
        assert not tracker.shadow.is_tainted(mem(1))

    def test_compute_unions_operands(self):
        tracker = make_tracker()
        tracker.process(flows.insert(reg("r1"), NET1))
        tracker.process(flows.insert(reg("r2"), FILE1))
        tracker.process(flows.compute((reg("r1"), reg("r2")), reg("r3")))
        assert set(tracker.shadow.tags_at(reg("r3"))) == {NET1, FILE1}
        assert tracker.stats.dfp_compute == 1

    def test_direct_flows_bypass_policy(self):
        tracker = make_tracker(policy=PropagateNonePolicy())
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.copy(mem(0), mem(1)))
        assert tracker.shadow.tags_at(mem(1)) == (NET1,)


class TestIndirectFlows:
    def test_address_dep_respects_none_policy(self):
        tracker = make_tracker(policy=PropagateNonePolicy())
        tracker.process(flows.insert(reg("t3"), NET1))
        tracker.process(flows.address_dep(reg("t3"), mem(8)))
        assert not tracker.shadow.is_tainted(mem(8))
        assert tracker.stats.ifp_address == 1
        assert tracker.stats.ifp_blocked == 1

    def test_address_dep_with_all_policy(self):
        tracker = make_tracker()
        tracker.process(flows.insert(reg("t3"), NET1))
        tracker.process(flows.address_dep(reg("t3"), mem(8)))
        assert tracker.shadow.tags_at(mem(8)) == (NET1,)
        assert tracker.stats.ifp_propagated == 1

    def test_control_dep_counted_separately(self):
        tracker = make_tracker()
        tracker.process(flows.insert(reg("r1"), NET1))
        tracker.process(flows.control_dep((reg("r1"),), mem(4)))
        assert tracker.stats.ifp_control == 1
        assert tracker.stats.ifp_address == 0

    def test_candidates_exclude_tags_already_present(self):
        tracker = make_tracker()
        tracker.process(flows.insert(reg("t3"), NET1))
        tracker.process(flows.insert(mem(8), NET1))
        tracker.process(flows.address_dep(reg("t3"), mem(8)))
        # NET1 already on destination: no candidates, nothing counted
        assert tracker.stats.ifp_candidates == 0

    def test_candidates_deduplicated_across_sources(self):
        tracker = make_tracker()
        tracker.process(flows.insert(reg("r1"), NET1))
        tracker.process(flows.insert(reg("r2"), NET1))
        tracker.process(flows.control_dep((reg("r1"), reg("r2")), mem(0)))
        assert tracker.stats.ifp_candidates == 1

    def test_mitos_policy_blocks_under_pressure(self):
        p = params(tau=1.0, tau_scale=1e9)
        policy = MitosPolicy(p)
        tracker = DIFTTracker(p, policy)
        # build up copies so the undertainting marginal is weak
        for i in range(50):
            tracker.process(flows.insert(mem(i), NET1))
        tracker.process(flows.insert(reg("t3"), NET1))
        tracker.process(flows.address_dep(reg("t3"), mem(1000)))
        assert not tracker.shadow.is_tainted(mem(1000))

    def test_mitos_policy_pollution_is_live(self):
        p = params()
        policy = MitosPolicy(p)
        tracker = DIFTTracker(p, policy)
        tracker.process(flows.insert(mem(0), NET1))
        assert policy.engine.current_pollution() == tracker.pollution() == 1.0


class TestDirectViaPolicy:
    def test_direct_flows_also_filtered(self):
        """Section V-C mode: is_DFP_or_IFP routes everything to Alg. 2."""
        tracker = make_tracker(
            policy=PropagateNonePolicy(), direct_via_policy=True
        )
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.copy(mem(0), mem(1)))
        assert not tracker.shadow.is_tainted(mem(1))
        assert tracker.stats.dfp_copy == 1

    def test_copy_does_not_clear_destination_in_policy_mode(self):
        tracker = make_tracker(direct_via_policy=True)
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.insert(mem(1), FILE1))
        tracker.process(flows.copy(mem(0), mem(1)))
        assert set(tracker.shadow.tags_at(mem(1))) == {NET1, FILE1}


class TestDetectorIntegration:
    def test_alert_on_confluence(self):
        detector = ConfluenceDetector()
        tracker = make_tracker(detector=detector)
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.insert(mem(0), EXPORT1))
        assert tracker.stats.alerts == 1
        assert detector.detected_bytes == 1

    def test_no_alert_single_type(self):
        detector = ConfluenceDetector()
        tracker = make_tracker(detector=detector)
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.insert(mem(0), NET2))
        assert tracker.stats.alerts == 0


class TestObserver:
    def test_observer_called_on_ifp(self):
        seen = []
        tracker = make_tracker(
            ifp_observer=lambda e, c, d, s, p: seen.append((e.kind, len(c), len(s), p))
        )
        tracker.process(flows.insert(reg("t3"), NET1))
        tracker.process(flows.address_dep(reg("t3"), mem(8)))
        assert len(seen) == 1
        kind, n_cands, n_selected, pollution = seen[0]
        assert n_cands == 1 and n_selected == 1
        assert pollution == 1.0

    def test_observer_not_called_without_candidates(self):
        seen = []
        tracker = make_tracker(ifp_observer=lambda *a: seen.append(a))
        tracker.process(flows.address_dep(reg("t3"), mem(8)))
        assert seen == []


class TestReset:
    def test_reset_restores_clean_state(self):
        detector = ConfluenceDetector()
        p = params()
        policy = MitosPolicy(p)
        tracker = DIFTTracker(p, policy, detector=detector)
        tracker.process(flows.insert(mem(0), NET1))
        tracker.process(flows.insert(mem(0), EXPORT1))
        tracker.reset()
        assert tracker.pollution() == 0.0
        assert tracker.stats.inserts == 0
        assert detector.detected_bytes == 0
        # pollution source must be rebound to the fresh counter
        tracker.process(flows.insert(mem(1), NET1))
        assert policy.engine.current_pollution() == 1.0
