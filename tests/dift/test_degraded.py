"""Tests for graceful degradation: shed-lowest-utility-tags near N_R."""

import pytest

from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker


def make_tracker(degrade_at=0.5, R=0.01, M_prov=10, ifp_observer=None):
    # N_R = R * M_prov: keep it tiny so tests hit the budget quickly
    params = MitosParams(R=R, M_prov=M_prov)
    return DIFTTracker(
        params=params,
        policy=PropagateAllPolicy(),
        degrade_at=degrade_at,
        ifp_observer=ifp_observer,
    ), params


def fill(tracker, tag, locations):
    for location in locations:
        tracker.process(flows.insert(location, tag))


class TestConstruction:
    def test_rejects_out_of_range(self):
        params = MitosParams()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                DIFTTracker(
                    params=params,
                    policy=PropagateAllPolicy(),
                    degrade_at=bad,
                )

    def test_disabled_by_default(self):
        tracker, _ = make_tracker(degrade_at=None)
        assert tracker._degrade_limit is None


class TestDegradation:
    def test_entries_bounded_by_budget(self):
        params = MitosParams(R=2.0, M_prov=10)  # N_R = 20
        tracker = DIFTTracker(
            params=params, policy=PropagateAllPolicy(), degrade_at=0.5
        )
        # push 100 single-tag locations through: without degradation the
        # shadow would hold 100 entries; the budget is 10
        for i in range(100):
            tracker.process(flows.insert(mem(i), Tag("process", 1 + i)))
        assert tracker.counter.total_entries() <= 10
        assert tracker.stats.degradations > 0
        assert tracker.stats.shed_entries > 0

    def test_without_degradation_grows_unbounded(self):
        tracker, _ = make_tracker(degrade_at=None)
        for i in range(100):
            tracker.process(flows.insert(mem(i), Tag("process", 1 + i)))
        assert tracker.counter.total_entries() == 100
        assert tracker.stats.degradations == 0

    def test_sheds_lowest_retention_value_first(self):
        """Saturated tags (many copies) go before rare ones."""
        params = MitosParams(R=2.0, M_prov=10)  # N_R = 20, budget 10
        tracker = DIFTTracker(
            params=params, policy=PropagateAllPolicy(), degrade_at=0.5
        )
        rare = Tag("netflow", 1)
        tracker.process(flows.insert(mem(0), rare))
        # one saturated tag on many locations: lowest per-copy value
        for i in range(1, 30):
            tracker.process(flows.insert(mem(i), Tag("process", 1)))
        assert tracker.counter.total_entries() <= 10
        # the rare netflow tag survived the shed
        assert rare in tracker.shadow.tags_at(mem(0))
        assert tracker.counter.copies(rare) == 1

    def test_degradation_event_on_observer(self):
        notices = []

        def observer(event, candidates, details, selected, pollution):
            if event.context == "dift.degraded":
                notices.append((event, pollution))

        params = MitosParams(R=2.0, M_prov=10)
        tracker = DIFTTracker(
            params=params,
            policy=PropagateAllPolicy(),
            degrade_at=0.5,
            ifp_observer=observer,
        )
        for i in range(40):
            tracker.process(flows.insert(mem(i), Tag("process", 1 + i)))
        assert notices
        event, pollution = notices[0]
        assert event.kind is flows.FlowKind.CLEAR
        assert event.destination == ("sys", "degraded")
        assert event.meta["shed_entries"] > 0
        assert event.meta["limit"] == 10
        assert event.meta["entries_after"] <= 10
        assert pollution > 0

    def test_stats_counters_recorded(self):
        params = MitosParams(R=2.0, M_prov=10)
        tracker = DIFTTracker(
            params=params, policy=PropagateAllPolicy(), degrade_at=0.5
        )
        for i in range(40):
            tracker.process(flows.insert(mem(i), Tag("process", 1 + i)))
        stats = tracker.stats.as_dict()
        assert stats["degradations"] == tracker.stats.degradations > 0
        assert stats["shed_entries"] == tracker.stats.shed_entries > 0
        # shed entries are also counted as drops and propagation work
        assert tracker.stats.drops >= tracker.stats.shed_entries

    def test_reset_clears_degraded_state(self):
        params = MitosParams(R=2.0, M_prov=10)
        tracker = DIFTTracker(
            params=params, policy=PropagateAllPolicy(), degrade_at=0.5
        )
        for i in range(40):
            tracker.process(flows.insert(mem(i), Tag("process", 1 + i)))
        tracker.reset()
        assert tracker.counter.total_entries() == 0
        assert tracker.stats.degradations == 0
        # the limit survives the reset (it is configuration)
        assert tracker._degrade_limit == 10
