"""Tests for repro.dift.detector."""

import pytest

from repro.dift.detector import ConfluenceDetector
from repro.dift.shadow import ShadowMemory, mem, reg
from repro.dift.tags import Tag, TagTypes


NET = Tag(TagTypes.NETFLOW, 1)
EXPORT = Tag(TagTypes.EXPORT_TABLE, 1)
FILE = Tag(TagTypes.FILE, 1)


class TestCheck:
    def test_fires_on_required_confluence(self):
        shadow = ShadowMemory(m_prov=4)
        detector = ConfluenceDetector()
        shadow.add_tag(mem(0), NET)
        assert detector.check(shadow, mem(0)) is None
        shadow.add_tag(mem(0), EXPORT)
        alert = detector.check(shadow, mem(0), tick=9)
        assert alert is not None
        assert alert.tick == 9
        assert set(alert.tags) == {NET, EXPORT}

    def test_each_location_alerts_once(self):
        shadow = ShadowMemory(m_prov=4)
        detector = ConfluenceDetector()
        shadow.add_tag(mem(0), NET)
        shadow.add_tag(mem(0), EXPORT)
        assert detector.check(shadow, mem(0)) is not None
        assert detector.check(shadow, mem(0)) is None
        assert len(detector.alerts) == 1

    def test_extra_types_do_not_block(self):
        shadow = ShadowMemory(m_prov=4)
        detector = ConfluenceDetector()
        shadow.add_tag(mem(0), FILE)
        shadow.add_tag(mem(0), NET)
        shadow.add_tag(mem(0), EXPORT)
        assert detector.check(shadow, mem(0)) is not None

    def test_custom_required_types(self):
        shadow = ShadowMemory(m_prov=4)
        detector = ConfluenceDetector(frozenset({TagTypes.FILE}))
        shadow.add_tag(mem(0), FILE)
        assert detector.check(shadow, mem(0)) is not None

    def test_empty_required_types_rejected(self):
        with pytest.raises(ValueError):
            ConfluenceDetector(frozenset())


class TestScanAndMetrics:
    def test_scan_sweeps_all_locations(self):
        shadow = ShadowMemory(m_prov=4)
        detector = ConfluenceDetector()
        for address in range(3):
            shadow.add_tag(mem(address), NET)
            shadow.add_tag(mem(address), EXPORT)
        shadow.add_tag(mem(99), NET)  # netflow only: no alert
        fired = detector.scan(shadow)
        assert len(fired) == 3
        assert detector.detected_bytes == 3

    def test_detected_bytes_counts_memory_only(self):
        shadow = ShadowMemory(m_prov=4)
        detector = ConfluenceDetector()
        shadow.add_tag(reg("r1"), NET)
        shadow.add_tag(reg("r1"), EXPORT)
        detector.check(shadow, reg("r1"))
        assert detector.detected_locations == 1
        assert detector.detected_bytes == 0

    def test_reset(self):
        shadow = ShadowMemory(m_prov=4)
        detector = ConfluenceDetector()
        shadow.add_tag(mem(0), NET)
        shadow.add_tag(mem(0), EXPORT)
        detector.check(shadow, mem(0))
        detector.reset()
        assert detector.alerts == []
        assert detector.detected_bytes == 0
        # location can alert again after reset
        assert detector.check(shadow, mem(0)) is not None
