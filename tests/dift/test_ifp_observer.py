"""The ``ifp_observer`` contract the obs layer builds on.

Pins two tracker behaviors:

* when the policy does not handle the flow kind, the observer still fires,
  with ``details=None`` and an empty selection (the hard-wired block), and
* the pollution passed to the observer is measured *before* propagation
  (the Eq. 8 signal the decision actually saw), not after.
"""

from repro.core.policy import KindFilteredPolicy, MitosPolicy, PropagateAllPolicy
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.workloads.calibration import benchmark_params

NET = Tag("netflow", 1)


class RecordingObserver:
    def __init__(self):
        self.calls = []

    def __call__(self, event, candidates, details, selected, pollution):
        self.calls.append(
            {
                "event": event,
                "candidates": list(candidates),
                "details": details,
                "selected": list(selected),
                "pollution": pollution,
            }
        )


def seed_events():
    """Taint mem(0), spread to r1: r1 then feeds indirect flows."""
    return [
        flows.insert(mem(0), NET, tick=0),
        flows.copy(mem(0), reg("r1"), tick=1),
    ]


class TestUnhandledKind:
    def test_observer_fires_with_none_details_and_empty_selection(self):
        observer = RecordingObserver()
        policy = KindFilteredPolicy(
            PropagateAllPolicy(), allowed_kinds={"address_dep"}
        )
        tracker = DIFTTracker(
            benchmark_params(), policy, ifp_observer=observer
        )
        tracker.process_many(seed_events())
        tracker.process(flows.control_dep((reg("r1"),), mem(9), tick=2))
        assert len(observer.calls) == 1
        call = observer.calls[0]
        assert call["details"] is None
        assert call["selected"] == []
        assert len(call["candidates"]) == 1
        assert call["candidates"][0].key == NET
        # the hard-wired block is fully accounted as blocked
        assert tracker.stats.ifp_blocked == 1
        assert not tracker.shadow.is_tainted(mem(9))

    def test_no_observer_call_without_candidates(self):
        observer = RecordingObserver()
        policy = KindFilteredPolicy(
            PropagateAllPolicy(), allowed_kinds={"address_dep"}
        )
        tracker = DIFTTracker(
            benchmark_params(), policy, ifp_observer=observer
        )
        # r9 untainted: no candidates, no decision, no observer call
        tracker.process(flows.control_dep((reg("r9"),), mem(9), tick=0))
        assert observer.calls == []


class TestPollutionOrdering:
    def test_pollution_measured_before_propagation(self):
        observer = RecordingObserver()
        params = benchmark_params()
        tracker = DIFTTracker(
            params, MitosPolicy(params), ifp_observer=observer
        )
        tracker.process_many(seed_events())
        pollution_before = tracker.pollution()
        tracker.process(flows.address_dep(reg("r1"), mem(9), tick=2))
        assert len(observer.calls) == 1
        call = observer.calls[0]
        # rare tag: MITOS propagates, growing pollution past the observed value
        assert call["selected"] == [NET]
        assert call["pollution"] == pollution_before
        assert tracker.pollution() > call["pollution"]

    def test_pollution_before_propagation_propagate_all(self):
        observer = RecordingObserver()
        tracker = DIFTTracker(
            benchmark_params(), PropagateAllPolicy(), ifp_observer=observer
        )
        tracker.process_many(seed_events())
        pollution_before = tracker.pollution()
        tracker.process(flows.address_dep(reg("r1"), mem(9), tick=2))
        assert observer.calls[0]["pollution"] == pollution_before
        assert tracker.pollution() == pollution_before + 1.0
