"""Tests for repro.dift.stats."""

import pytest

from repro.dift.stats import TagCopyCounter, TrackerStats
from repro.dift.tags import Tag


class TestTagCopyCounter:
    def test_increment_decrement(self):
        counter = TagCopyCounter()
        tag = Tag("netflow", 1)
        counter.increment(tag)
        counter.increment(tag)
        assert counter.copies(tag) == 2
        counter.decrement(tag)
        assert counter.copies(tag) == 1

    def test_decrement_below_zero_raises(self):
        counter = TagCopyCounter()
        with pytest.raises(ValueError):
            counter.decrement(Tag("netflow", 1))

    def test_zero_count_removed_from_snapshot(self):
        counter = TagCopyCounter()
        tag = Tag("file", 1)
        counter.increment(tag)
        counter.decrement(tag)
        assert counter.snapshot() == {}
        assert counter.live_tags() == 0

    def test_total_entries(self):
        counter = TagCopyCounter()
        counter.increment(Tag("netflow", 1))
        counter.increment(Tag("netflow", 2))
        counter.increment(Tag("file", 1))
        assert counter.total_entries() == 3
        assert counter.type_total("netflow") == 2
        assert counter.type_total("process") == 0

    def test_weighted_pollution(self):
        counter = TagCopyCounter()
        for _ in range(3):
            counter.increment(Tag("netflow", 1))
        counter.increment(Tag("file", 1))
        pollution = counter.weighted_pollution({"netflow": 2.0})
        assert pollution == pytest.approx(2.0 * 3 + 1.0 * 1)

    def test_weighted_pollution_default_weight(self):
        counter = TagCopyCounter()
        counter.increment(Tag("exotic", 1))
        assert counter.weighted_pollution({}, default_weight=5.0) == 5.0

    def test_per_type_counts(self):
        counter = TagCopyCounter()
        counter.increment(Tag("netflow", 1))
        counter.increment(Tag("netflow", 2))
        counter.increment(Tag("file", 1))
        grouped = counter.per_type_counts()
        assert set(grouped) == {"netflow", "file"}
        assert grouped["netflow"] == {("netflow", 1): 1, ("netflow", 2): 1}

    def test_copies_by_key(self):
        counter = TagCopyCounter()
        counter.increment(Tag("netflow", 7))
        assert counter.copies_by_key(("netflow", 7)) == 1
        assert counter.copies_by_key(("netflow", 8)) == 0


class TestTrackerStats:
    def test_ifp_total(self):
        stats = TrackerStats(ifp_address=3, ifp_control=4)
        assert stats.ifp_total == 7

    def test_ifp_propagation_rate(self):
        stats = TrackerStats(ifp_candidates=10, ifp_propagated=4)
        assert stats.ifp_propagation_rate == pytest.approx(0.4)

    def test_ifp_propagation_rate_empty(self):
        assert TrackerStats().ifp_propagation_rate == 0.0

    def test_context_notes(self):
        stats = TrackerStats()
        stats.note_context("sw")
        stats.note_context("sw")
        stats.note_context("lw")
        assert stats.by_context == {"sw": 2, "lw": 1}

    def test_as_dict_keys(self):
        payload = TrackerStats().as_dict()
        assert "propagation_ops" in payload
        assert "ifp_candidates" in payload
        assert all(isinstance(v, (int, float)) for v in payload.values())
