"""Tests for repro.dift.shadow."""

import pytest

from repro.dift.provenance import SchedulingPolicy
from repro.dift.shadow import (
    ENTRY_SIZE_BYTES,
    LOCATION_OVERHEAD_BYTES,
    ShadowMemory,
    mem,
    nic,
    reg,
)
from repro.dift.tags import Tag


def tags(n: int, tag_type: str = "netflow") -> list:
    return [Tag(tag_type, i + 1) for i in range(n)]


class TestLocations:
    def test_location_constructors(self):
        assert mem(0x7FFFFFF8) == ("mem", 0x7FFFFFF8)
        assert reg("t0") == ("reg", "t0")
        assert nic(12) == ("nic", 12)


class TestQueries:
    def test_untainted_location(self):
        shadow = ShadowMemory(m_prov=3)
        assert shadow.tags_at(mem(0)) == ()
        assert not shadow.is_tainted(mem(0))
        assert shadow.free_slots(mem(0)) == 3

    def test_add_and_query(self):
        shadow = ShadowMemory(m_prov=3)
        tag = Tag("netflow", 1)
        shadow.add_tag(mem(0), tag)
        assert shadow.tags_at(mem(0)) == (tag,)
        assert shadow.is_tainted(mem(0))
        assert shadow.free_slots(mem(0)) == 2

    def test_invalid_m_prov(self):
        with pytest.raises(ValueError):
            ShadowMemory(m_prov=0)


class TestCounterSync:
    def test_add_increments_counter(self):
        shadow = ShadowMemory(m_prov=3)
        tag = Tag("netflow", 1)
        shadow.add_tag(mem(0), tag)
        shadow.add_tag(mem(1), tag)
        assert shadow.counter.copies(tag) == 2

    def test_duplicate_add_does_not_double_count(self):
        shadow = ShadowMemory(m_prov=3)
        tag = Tag("netflow", 1)
        shadow.add_tag(mem(0), tag)
        shadow.add_tag(mem(0), tag)
        assert shadow.counter.copies(tag) == 1

    def test_eviction_decrements_counter(self):
        shadow = ShadowMemory(m_prov=1)
        t1, t2 = tags(2)
        shadow.add_tag(mem(0), t1)
        shadow.add_tag(mem(0), t2)  # evicts t1
        assert shadow.counter.copies(t1) == 0
        assert shadow.counter.copies(t2) == 1

    def test_remove_and_clear_decrement(self):
        shadow = ShadowMemory(m_prov=3)
        t1, t2 = tags(2)
        shadow.add_tag(mem(0), t1)
        shadow.add_tag(mem(0), t2)
        shadow.remove_tag(mem(0), t1)
        assert shadow.counter.copies(t1) == 0
        shadow.clear_location(mem(0))
        assert shadow.counter.copies(t2) == 0
        assert shadow.total_entries() == 0

    def test_counter_matches_scan(self):
        """n[t,i] must equal the number of locations holding {t,i}."""
        shadow = ShadowMemory(m_prov=2)
        all_tags = tags(4)
        shadow.add_tag(mem(0), all_tags[0])
        shadow.add_tag(mem(0), all_tags[1])
        shadow.add_tag(mem(0), all_tags[2])  # evicts all_tags[0]
        shadow.add_tag(mem(1), all_tags[0])
        shadow.add_tag(reg("r1"), all_tags[3])
        for tag in all_tags:
            ground_truth = sum(
                1
                for loc in shadow.tainted_locations()
                if tag in shadow.tags_at(loc)
            )
            assert shadow.counter.copies(tag) == ground_truth


class TestReplaceAndUnion:
    def test_replace_tags_copy_semantics(self):
        shadow = ShadowMemory(m_prov=3)
        t1, t2, t3 = tags(3)
        shadow.add_tag(mem(0), t1)
        shadow.add_tag(mem(1), t2)
        shadow.add_tag(mem(1), t3)
        added, dropped = shadow.replace_tags(mem(1), shadow.tags_at(mem(0)))
        assert shadow.tags_at(mem(1)) == (t1,)
        assert added == 1
        assert dropped == 2

    def test_replace_with_empty_untaints(self):
        shadow = ShadowMemory(m_prov=3)
        shadow.add_tag(mem(0), Tag("file", 1))
        shadow.replace_tags(mem(0), ())
        assert not shadow.is_tainted(mem(0))

    def test_union_into_merges_without_duplicates(self):
        shadow = ShadowMemory(m_prov=5)
        t1, t2, t3 = tags(3)
        shadow.add_tag(mem(0), t1)
        shadow.add_tag(mem(0), t2)
        shadow.add_tag(mem(1), t2)
        shadow.add_tag(mem(1), t3)
        shadow.add_tag(mem(2), t3)  # destination already has t3
        added, _ = shadow.union_into([mem(0), mem(1)], mem(2))
        assert set(shadow.tags_at(mem(2))) == {t1, t2, t3}
        assert added == 2

    def test_union_respects_capacity(self):
        shadow = ShadowMemory(m_prov=2)
        source_tags = tags(4)
        for i, tag in enumerate(source_tags):
            shadow.add_tag(mem(i), tag)
        shadow.union_into([mem(i) for i in range(4)], mem(99))
        assert len(shadow.tags_at(mem(99))) == 2


class TestFootprint:
    def test_empty_footprint_zero(self):
        assert ShadowMemory(m_prov=3).footprint_bytes() == 0

    def test_footprint_formula(self):
        shadow = ShadowMemory(m_prov=3)
        t1, t2 = tags(2)
        shadow.add_tag(mem(0), t1)
        shadow.add_tag(mem(0), t2)
        shadow.add_tag(mem(1), t1)
        assert shadow.footprint_bytes() == (
            3 * ENTRY_SIZE_BYTES + 2 * LOCATION_OVERHEAD_BYTES
        )

    def test_tainted_count_and_entries(self):
        shadow = ShadowMemory(m_prov=3)
        t1, t2 = tags(2)
        shadow.add_tag(mem(0), t1)
        shadow.add_tag(mem(0), t2)
        shadow.add_tag(reg("r0"), t1)
        assert shadow.tainted_count() == 2
        assert shadow.total_entries() == 3


class TestScheduling:
    def test_lru_shadow_uses_lru_lists(self):
        shadow = ShadowMemory(m_prov=2, scheduling=SchedulingPolicy.LRU)
        t1, t2, t3 = tags(3)
        shadow.add_tag(mem(0), t1)
        shadow.add_tag(mem(0), t2)
        shadow.add_tag(mem(0), t1)  # refresh t1
        shadow.add_tag(mem(0), t3)  # should evict t2
        assert t1 in shadow.tags_at(mem(0))
        assert t2 not in shadow.tags_at(mem(0))
