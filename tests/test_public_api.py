"""The documented public API is importable from the package roots."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_headline_exports(self):
        assert repro.MitosParams
        assert repro.MitosEngine
        assert repro.decide_single and repro.decide_multi
        assert repro.MitosPolicy and repro.PropagateNonePolicy

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.adaptive",
            "repro.dift",
            "repro.dift.confluence",
            "repro.isa",
            "repro.isa.disassembler",
            "repro.replay",
            "repro.faros",
            "repro.workloads",
            "repro.distributed",
            "repro.hardware",
            "repro.analysis",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_module_imports(self, module):
        assert importlib.import_module(module)

    def test_all_lists_resolve(self):
        for module_name in (
            "repro",
            "repro.core",
            "repro.dift",
            "repro.isa",
            "repro.replay",
            "repro.faros",
            "repro.workloads",
            "repro.distributed",
            "repro.hardware",
            "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_readme_quickstart_snippet_runs(self):
        from repro.core.params import MitosParams
        from repro.core.policy import MitosPolicy
        from repro.dift import DIFTTracker, TagAllocator, TagTypes, flows
        from repro.dift.shadow import mem, reg

        params = MitosParams(
            alpha=1.5, beta=2.0, tau=1.0, R=1 << 16, M_prov=10
        )
        tracker = DIFTTracker(params, MitosPolicy(params))
        tag = TagAllocator().fresh(TagTypes.NETFLOW, origin=("10.0.0.1", 443))
        tracker.process(flows.insert(mem(0x100), tag))
        tracker.process(flows.copy(mem(0x100), reg("r1")))
        tracker.process(flows.address_dep(reg("r1"), mem(0x200)))
        assert isinstance(tracker.shadow.tags_at(mem(0x200)), tuple)
