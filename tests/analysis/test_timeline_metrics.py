"""Tests for repro.analysis.timeline and repro.analysis.metrics."""

import pytest

from repro.analysis.metrics import collect_run_metrics
from repro.analysis.timeline import DecisionTimeline
from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy, PropagateAllPolicy
from repro.dift import flows
from repro.dift.detector import ConfluenceDetector
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag, TagTypes
from repro.dift.tracker import DIFTTracker

NET = Tag(TagTypes.NETFLOW, 1)
FILE = Tag(TagTypes.FILE, 1)
EXPORT = Tag(TagTypes.EXPORT_TABLE, 1)


def params(**kw) -> MitosParams:
    defaults = dict(R=1 << 16, M_prov=4, tau_scale=1.0)
    defaults.update(kw)
    return MitosParams(**defaults)


class TestDecisionTimeline:
    def tracked(self, policy):
        timeline = DecisionTimeline()
        tracker = DIFTTracker(
            params(), policy, ifp_observer=timeline.observer
        )
        return timeline, tracker

    def test_records_mitos_details(self):
        p = params()
        timeline, tracker = self.tracked(MitosPolicy(p))
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.address_dep(reg("r1"), mem(5), tick=1))
        assert len(timeline) == 1
        point = timeline.points[0]
        assert point.tag_type == TagTypes.NETFLOW
        assert point.under_marginal < 0
        assert point.marginal == pytest.approx(
            point.under_marginal + point.over_marginal
        )
        assert point.propagated
        assert point.decision_value == 1

    def test_records_baseline_without_details(self):
        timeline, tracker = self.tracked(PropagateAllPolicy())
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.address_dep(reg("r1"), mem(5), tick=1))
        point = timeline.points[0]
        assert point.under_marginal == 0.0
        assert point.propagated

    def test_series_shapes(self):
        p = params()
        timeline, tracker = self.tracked(MitosPolicy(p))
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.insert(reg("r2"), FILE, tick=1))
        tracker.process(
            flows.control_dep((reg("r1"), reg("r2")), mem(3), tick=2)
        )
        ticks, decisions = timeline.decision_series()
        assert len(ticks) == len(decisions) == 2
        assert set(decisions) <= {1, -1}
        m_ticks, unders, overs = timeline.marginal_series()
        assert len(m_ticks) == len(unders) == len(overs) == 2

    def test_rate_by_type(self):
        p = params()
        timeline, tracker = self.tracked(MitosPolicy(p))
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.address_dep(reg("r1"), mem(1), tick=1))
        rates = timeline.rate_by_type()
        assert rates == {TagTypes.NETFLOW: 1.0}

    def test_counts_and_reset(self):
        p = params()
        timeline, tracker = self.tracked(MitosPolicy(p))
        tracker.process(flows.insert(reg("r1"), NET, tick=0))
        tracker.process(flows.address_dep(reg("r1"), mem(1), tick=1))
        assert timeline.propagated_count + timeline.blocked_count == 1
        timeline.reset()
        assert len(timeline) == 0
        assert timeline.propagation_rate == 0.0


class TestCollectRunMetrics:
    def test_metrics_reflect_tracker_state(self):
        detector = ConfluenceDetector()
        tracker = DIFTTracker(params(), PropagateAllPolicy(), detector=detector)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        tracker.process(flows.insert(mem(0), EXPORT, tick=1))
        tracker.process(flows.insert(mem(1), NET, tick=2))
        metrics = collect_run_metrics(tracker, wall_seconds=1.5)
        assert metrics.wall_seconds == 1.5
        assert metrics.total_entries == 3
        assert metrics.tainted_locations == 2
        assert metrics.live_tags == 2
        assert metrics.detected_bytes == 1
        assert metrics.per_type_entries == {
            TagTypes.NETFLOW: 2, TagTypes.EXPORT_TABLE: 1,
        }
        assert metrics.footprint_bytes > 0
        assert 0 <= metrics.copy_jain <= 1

    def test_detected_bytes_override(self):
        tracker = DIFTTracker(params(), PropagateAllPolicy())
        metrics = collect_run_metrics(tracker, detected_bytes=42)
        assert metrics.detected_bytes == 42

    def test_as_dict_complete(self):
        tracker = DIFTTracker(params(), PropagateAllPolicy())
        payload = collect_run_metrics(tracker).as_dict()
        assert "propagation_ops" in payload
        assert "copy_mse" in payload
        assert payload["ifp_propagation_rate"] == 0.0
