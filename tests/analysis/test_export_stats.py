"""Tests for repro.analysis.export and repro.analysis.stats."""

import csv
import json
from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.analysis.export import rows_to_csv, series_to_csv, to_json
from repro.analysis.stats import (
    repeat_over_seeds,
    summarize,
    summarize_metrics,
)


@dataclass
class Inner:
    name: str
    value: float


@dataclass
class Outer:
    items: List[Inner] = field(default_factory=list)
    table: Dict[str, int] = field(default_factory=dict)
    odd: float = float("nan")


class TestJsonExport:
    def test_dataclass_tree(self, tmp_path):
        result = Outer(items=[Inner("a", 1.5)], table={"x": 2})
        path = to_json(result, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["items"][0] == {"name": "a", "value": 1.5}
        assert payload["table"] == {"x": 2}
        assert payload["odd"] is None  # NaN has no JSON spelling

    def test_infinity_stringified(self, tmp_path):
        path = to_json({"v": float("inf")}, tmp_path / "inf.json")
        assert json.loads(path.read_text())["v"] == "inf"

    def test_tuples_and_sets(self, tmp_path):
        path = to_json({"t": (1, 2), "s": {3}}, tmp_path / "seq.json")
        payload = json.loads(path.read_text())
        assert payload["t"] == [1, 2]
        assert payload["s"] == [3]

    def test_bytes_hex(self, tmp_path):
        path = to_json({"b": b"\x01\xff"}, tmp_path / "b.json")
        assert json.loads(path.read_text())["b"] == "01ff"

    def test_parent_dirs_created(self, tmp_path):
        path = to_json({"x": 1}, tmp_path / "deep" / "dir" / "x.json")
        assert path.exists()


class TestCsvExport:
    def test_rows(self, tmp_path):
        path = rows_to_csv(["a", "b"], [[1, 2], [3, 4]], tmp_path / "t.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_series(self, tmp_path):
        path = series_to_csv(
            [0, 1], [5.0, 6.0], tmp_path / "s.csv", x_label="tau", y_label="rate"
        )
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["tau", "rate"]
        assert len(rows) == 3

    def test_series_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            series_to_csv([1], [1, 2], tmp_path / "bad.csv")


class TestSummarize:
    def test_known_values(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary.mean == 4.0
        assert summary.std == pytest.approx(2.0)
        assert summary.minimum == 2.0
        assert summary.maximum == 6.0
        assert summary.n == 3

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.ci95_half_width == 0.0

    def test_ci_shrinks_with_n(self):
        narrow = summarize([1.0, 2.0] * 50)
        wide = summarize([1.0, 2.0])
        assert narrow.ci95_half_width < wide.ci95_half_width

    def test_ci_brackets_mean(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        low, high = summary.ci95
        assert low <= summary.mean <= high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRepeatOverSeeds:
    def test_per_metric_summaries(self):
        def run(seed: int):
            return {"detected": float(seed), "ops": 10.0 * seed}

        summaries = repeat_over_seeds(run, [1, 2, 3])
        assert summaries["detected"].mean == 2.0
        assert summaries["ops"].mean == 20.0

    def test_missing_metrics_tolerated(self):
        samples = [{"a": 1.0, "b": 2.0}, {"a": 3.0}]
        summaries = summarize_metrics(samples)
        assert summaries["a"].n == 2
        assert summaries["b"].n == 1

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            repeat_over_seeds(lambda seed: {}, [])

    def test_real_experiment_stability(self):
        """Quick attack detection is seed-stable in direction."""
        from repro.faros import FarosSystem, mitos_config, stock_faros_config
        from repro.workloads.attack import InMemoryAttack
        from repro.workloads.calibration import benchmark_params

        params = benchmark_params(
            crossover_copies=400.0, pollution_fraction=0.003
        )

        def run(seed: int):
            recording = InMemoryAttack(
                variant="reverse_https", seed=seed, payload_bytes=96,
                imports=12, noise_bytes=192, noise_rounds=4,
            ).record()
            faros = FarosSystem(stock_faros_config(params))
            mitos = FarosSystem(mitos_config(params, all_flows=True))
            return {
                "faros_detected": faros.replay(recording).metrics.detected_bytes,
                "mitos_detected": mitos.replay(recording).metrics.detected_bytes,
            }

        summaries = repeat_over_seeds(run, [0, 1, 2])
        assert summaries["mitos_detected"].minimum > summaries[
            "faros_detected"
        ].maximum
