"""Tests for the ASCII plotting helpers."""

import math

import pytest

from repro.analysis.plot import ascii_plot, decision_stripe, multi_series_plot


class TestAsciiPlot:
    def test_contains_marker_and_labels(self):
        text = ascii_plot([0, 1, 2], [0.0, 5.0, 10.0], title="T")
        assert text.startswith("T")
        assert "*" in text
        assert "10" in text  # y max label
        assert "0 .. 2" in text  # x range footer

    def test_extremes_placed_at_edges(self):
        text = ascii_plot([0, 1], [0.0, 1.0], width=20, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        assert "*" in rows[0]  # max in the top row
        assert "*" in rows[-1]  # min in the bottom row

    def test_constant_series(self):
        text = ascii_plot([0, 1, 2], [5.0, 5.0, 5.0])
        assert "*" in text

    def test_non_finite_points_dropped(self):
        text = ascii_plot([0, 1, 2], [1.0, math.inf, float("nan")])
        assert "*" in text

    def test_all_non_finite(self):
        assert "(no finite points)" in ascii_plot([0], [math.nan])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_plot([1], [1, 2])

    def test_too_small_grid(self):
        with pytest.raises(ValueError):
            ascii_plot([1], [1], width=5)

    def test_axis_labels(self):
        text = ascii_plot([0, 1], [0, 1], y_label="cost", x_label="n")
        assert "[y: cost]" in text
        assert "(n)" in text


class TestMultiSeries:
    def test_distinct_markers_and_legend(self):
        text = multi_series_plot(
            [
                ("alpha=1", [0, 1, 2], [3, 2, 1]),
                ("alpha=2", [0, 1, 2], [5, 3, 0]),
            ]
        )
        assert "* = alpha=1" in text
        assert "o = alpha=2" in text
        assert "o" in text and "*" in text

    def test_empty(self):
        assert "(no finite points)" in multi_series_plot([("s", [], [])])

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_series_plot([("s", [1], [1, 2])])


class TestDecisionStripe:
    def test_pure_regions(self):
        ticks = list(range(100))
        decisions = [1] * 50 + [-1] * 50
        text = decision_stripe(ticks, decisions, width=20)
        stripe = text.splitlines()[0]
        assert "^" in stripe[:10]
        assert "v" in stripe[10:]

    def test_mixed_region(self):
        ticks = [0, 0, 0, 0]
        decisions = [1, -1, 1, -1]
        text = decision_stripe(ticks, decisions, width=10)
        assert "~" in text

    def test_empty(self):
        assert "(no decisions)" in decision_stripe([], [])

    def test_mismatch(self):
        with pytest.raises(ValueError):
            decision_stripe([1], [])

    def test_legend_line(self):
        text = decision_stripe([0, 1], [1, 1])
        assert "^=propagated" in text
