"""Tests for TaintBochs-style tag-lifetime analysis."""


from repro.analysis.lifetime import LifetimeMonitor
from repro.core.params import MitosParams
from repro.core.policy import PropagateAllPolicy, PropagateNonePolicy
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker

NET = Tag("netflow", 1)
FILE = Tag("file", 1)


def make_tracker(m_prov: int = 2) -> DIFTTracker:
    params = MitosParams(R=1 << 16, M_prov=m_prov, tau_scale=1.0)
    return DIFTTracker(params, PropagateAllPolicy())


class TestBirthDeathHooks:
    def test_birth_on_first_copy_only(self):
        tracker = make_tracker()
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=5))
        tracker.process(flows.insert(mem(1), NET, tick=6))
        assert monitor.births() == 1

    def test_death_on_last_copy(self):
        tracker = make_tracker()
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        tracker.process(flows.insert(mem(1), NET, tick=1))
        tracker.process(flows.clear(mem(0), tick=2))
        assert monitor.deaths() == 0  # one copy still alive
        tracker.process(flows.clear(mem(1), tick=3))
        assert monitor.deaths() == 1

    def test_rebirth_opens_new_span(self):
        tracker = make_tracker()
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        tracker.process(flows.clear(mem(0), tick=1))
        tracker.process(flows.insert(mem(0), NET, tick=10))
        assert monitor.births() == 2
        assert monitor.deaths() == 1
        assert NET.key in monitor.alive_tags()

    def test_eviction_counts_as_death(self):
        tracker = make_tracker(m_prov=1)
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        tracker.process(flows.insert(mem(0), FILE, tick=1))  # evicts NET
        assert monitor.deaths() == 1
        assert NET.key not in monitor.alive_tags()


class TestLifetimes:
    def test_lifetime_lengths(self):
        tracker = make_tracker()
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        tracker.process(flows.clear(mem(0), tick=9))
        lifetimes = monitor.lifetimes()
        assert lifetimes[NET.key] == 9

    def test_open_span_measured_to_now(self):
        tracker = make_tracker()
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        # timestamps use the tracker's elapsed-ticks clock (event tick + 1)
        assert monitor.lifetimes(now_tick=50)[NET.key] == 49

    def test_summary_and_by_type(self):
        tracker = make_tracker()
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        tracker.process(flows.insert(mem(1), FILE, tick=0))
        summary = monitor.summary(now_tick=10)
        assert summary.n == 2
        by_type = monitor.by_type(now_tick=10)
        assert set(by_type) == {"netflow", "file"}

    def test_empty_summary(self):
        monitor = LifetimeMonitor(make_tracker())
        assert monitor.summary().n == 0

    def test_render(self):
        tracker = make_tracker()
        monitor = LifetimeMonitor(tracker)
        tracker.process(flows.insert(mem(0), NET, tick=0))
        text = monitor.render(now_tick=5)
        assert "tag lifetimes" in text
        assert "netflow" in text
        assert "still alive 1" in text


class TestPolicyEffectOnLifetimes:
    def test_blocking_policies_shorten_history_reach(self):
        """Without IFP the netflow tag gains no copies beyond the source;
        with IFP its copy population (and survival odds under churn) grow."""
        params = MitosParams(R=1 << 16, M_prov=1, tau_scale=1.0)
        events = [flows.insert(mem(0), NET, tick=0)]
        events.append(flows.address_dep(mem(0), mem(1), tick=1))
        events.append(flows.address_dep(mem(0), mem(2), tick=2))
        # churn: overwrite the original source byte
        events.append(flows.insert(mem(0), FILE, tick=3))

        with_ifp = DIFTTracker(params, PropagateAllPolicy())
        monitor_with = LifetimeMonitor(with_ifp)
        with_ifp.process_many(events)

        without = DIFTTracker(params, PropagateNonePolicy())
        monitor_without = LifetimeMonitor(without)
        without.process_many(events)

        # DFP-only: the single netflow copy was evicted -> tag is dead
        assert NET.key not in monitor_without.alive_tags()
        # with IFP the propagated copies outlive the source byte
        assert NET.key in monitor_with.alive_tags()
