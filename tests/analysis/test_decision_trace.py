"""Tests for decision-trace summarization (the tracelog backend)."""

import pytest

from repro.analysis.decision_trace import (
    DecisionTraceSummary,
    format_decision_trace_summary,
    summarize_decision_trace,
    summarize_decision_trace_file,
)


def record(tick, kind="address_dep", pollution=1.0, candidates=()):
    return {
        "tick": tick,
        "kind": kind,
        "context": "lw",
        "dest": "mem:0x10",
        "pollution": pollution,
        "free_slots": 4,
        "has_details": True,
        "candidates": list(candidates),
        "propagated": [c["tag"] for c in candidates if c["propagated"]],
        "blocked": sum(1 for c in candidates if not c["propagated"]),
    }


def candidate(tag="netflow:1", tag_type="netflow", propagated=True):
    return {
        "tag": tag,
        "type": tag_type,
        "copies": 1,
        "marginal": -0.5,
        "under": -0.6,
        "over": 0.1,
        "propagated": propagated,
    }


def sample_records():
    return [
        record(
            0,
            pollution=1.0,
            candidates=[candidate(), candidate("fs:1", "filesystem", False)],
        ),
        record(
            10,
            kind="control_dep",
            pollution=2.0,
            candidates=[candidate("fs:2", "filesystem", False)],
        ),
        record(99, pollution=5.0, candidates=[candidate("netflow:2")]),
    ]


class TestSummarize:
    def test_empty_trace(self):
        summary = summarize_decision_trace([])
        assert summary.events == 0
        assert summary.propagation_rate == 0.0
        assert "no decision records" in format_decision_trace_summary(summary)

    def test_totals(self):
        summary = summarize_decision_trace(sample_records())
        assert summary.events == 3
        assert summary.candidates == 4
        assert summary.propagated == 2
        assert summary.blocked == 2
        assert summary.propagation_rate == 0.5
        assert summary.by_kind == {"address_dep": 2, "control_dep": 1}

    def test_blocked_by_type(self):
        summary = summarize_decision_trace(sample_records())
        assert summary.blocked_by_type == {"filesystem": 2}
        assert summary.propagated_by_type == {"netflow": 2}
        assert summary.top_blocked_types() == [("filesystem", 2)]

    def test_pollution_trajectory(self):
        summary = summarize_decision_trace(sample_records())
        assert summary.pollution_first == 1.0
        assert summary.pollution_last == 5.0
        assert summary.pollution_min == 1.0
        assert summary.pollution_max == 5.0

    def test_windows_partition_the_tick_span(self):
        summary = summarize_decision_trace(sample_records(), windows=2)
        assert len(summary.windows) == 2
        assert summary.windows[0].start_tick == 0
        assert summary.windows[-1].end_tick == 99
        assert sum(w.events for w in summary.windows) == 3
        # first window holds ticks 0 and 10; second only tick 99
        assert summary.windows[0].events == 2
        assert summary.windows[1].events == 1

    def test_window_rates(self):
        summary = summarize_decision_trace(sample_records(), windows=2)
        assert summary.windows[0].propagation_rate == pytest.approx(1 / 3)
        assert summary.windows[1].propagation_rate == 1.0

    def test_single_tick_trace(self):
        summary = summarize_decision_trace(
            [record(5, candidates=[candidate()])], windows=10
        )
        assert len(summary.windows) == 1
        assert summary.windows[0].start_tick == 5
        assert summary.windows[0].end_tick == 5

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            summarize_decision_trace([], windows=0)


class TestFormat:
    def test_renders_all_sections(self):
        text = format_decision_trace_summary(
            summarize_decision_trace(sample_records()), title="t"
        )
        assert "3 IFP events" in text
        assert "propagation rate / pollution over time" in text
        assert "top blocked tag types" in text
        assert "filesystem" in text
        assert "pollution trajectory" in text


class TestFile:
    def test_summarize_file_gzip(self, tmp_path):
        import gzip
        import json

        path = tmp_path / "d.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            for row in sample_records():
                handle.write(json.dumps(row) + "\n")
        summary = summarize_decision_trace_file(path)
        assert isinstance(summary, DecisionTraceSummary)
        assert summary.events == 3
