"""Tests for repro.analysis.lineage."""


from repro.analysis.lineage import LineageGraph, undertainting_of
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.replay.record import Recording

NET = Tag("netflow", 1)
FILE = Tag("file", 1)


def rec(*events) -> Recording:
    return Recording(events=list(events))


class TestDirectLineage:
    def test_copy_chain(self):
        recording = rec(
            flows.insert(mem(0), NET, tick=0),
            flows.copy(mem(0), reg("r1"), tick=1),
            flows.copy(reg("r1"), mem(5), tick=2),
        )
        lineage = LineageGraph.from_recording(recording)
        hits = lineage.sources_of(mem(5))
        assert [hit.tag for hit in hits] == [NET]
        assert hits[0].hops == 2

    def test_copy_severs_old_history(self):
        recording = rec(
            flows.insert(mem(5), FILE, tick=0),
            flows.insert(mem(0), NET, tick=1),
            flows.copy(mem(0), mem(5), tick=2),  # replaces FILE history
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.taint_ground_truth(mem(5)) == {NET}

    def test_compute_unions_operands_and_history(self):
        recording = rec(
            flows.insert(reg("r1"), NET, tick=0),
            flows.insert(reg("r2"), FILE, tick=1),
            flows.compute((reg("r1"), reg("r2")), reg("r3"), tick=2),
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.taint_ground_truth(reg("r3")) == {NET, FILE}

    def test_clear_severs_history(self):
        recording = rec(
            flows.insert(mem(0), NET, tick=0),
            flows.clear(mem(0), tick=1),
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.taint_ground_truth(mem(0)) == set()

    def test_insert_keeps_prior_history(self):
        recording = rec(
            flows.insert(mem(0), NET, tick=0),
            flows.insert(mem(0), FILE, tick=1),
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.taint_ground_truth(mem(0)) == {NET, FILE}


class TestIndirectLineage:
    def address_dep_recording(self) -> Recording:
        return rec(
            flows.insert(reg("r1"), NET, tick=0),
            flows.insert(mem(8), FILE, tick=1),
            flows.address_dep(reg("r1"), mem(8), tick=2),
        )

    def test_indirect_included_by_default(self):
        lineage = LineageGraph.from_recording(self.address_dep_recording())
        assert lineage.taint_ground_truth(mem(8)) == {NET, FILE}

    def test_indirect_excluded_shows_dfp_only_view(self):
        lineage = LineageGraph.from_recording(
            self.address_dep_recording(), include_indirect=False
        )
        assert lineage.taint_ground_truth(mem(8)) == {FILE}

    def test_indirect_carries_existing_history(self):
        recording = rec(
            flows.insert(mem(8), FILE, tick=0),
            flows.insert(reg("r1"), NET, tick=1),
            flows.address_dep(reg("r1"), mem(8), tick=2),
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.taint_ground_truth(mem(8)) == {FILE, NET}


class TestQueries:
    def test_explain_returns_path(self):
        recording = rec(
            flows.insert(mem(0), NET, tick=0),
            flows.copy(mem(0), reg("r1"), tick=1),
            flows.copy(reg("r1"), mem(5), tick=2),
        )
        lineage = LineageGraph.from_recording(recording)
        path = lineage.explain(mem(5), NET)
        assert len(path) == 3
        assert path[0][0] == mem(0)
        assert path[-1][0] == mem(5)

    def test_explain_unreachable_is_empty(self):
        recording = rec(
            flows.insert(mem(0), NET, tick=0),
            flows.insert(mem(1), FILE, tick=1),
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.explain(mem(1), NET) == []
        assert lineage.explain(mem(99), NET) == []

    def test_influence_of(self):
        recording = rec(
            flows.insert(mem(0), NET, tick=0),
            flows.copy(mem(0), reg("r1"), tick=1),
            flows.copy(reg("r1"), mem(5), tick=2),
            flows.insert(mem(9), FILE, tick=3),
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.influence_of(NET) == {mem(0), reg("r1"), mem(5)}
        assert lineage.influence_of(FILE) == {mem(9)}

    def test_sources_of_untouched_location(self):
        lineage = LineageGraph.from_recording(rec())
        assert lineage.sources_of(mem(0)) == []

    def test_counts(self):
        recording = rec(
            flows.insert(mem(0), NET, tick=0),
            flows.copy(mem(0), mem(1), tick=1),
        )
        lineage = LineageGraph.from_recording(recording)
        assert lineage.node_count == 2
        assert lineage.edge_count == 1
        assert lineage.events_applied == 2


class TestUndertainting:
    def test_dfp_only_tracker_misses_indirect_flows(self):
        from repro.core.params import MitosParams
        from repro.core.policy import PropagateNonePolicy
        from repro.dift.tracker import DIFTTracker

        recording = rec(
            flows.insert(reg("r1"), NET, tick=0),
            flows.address_dep(reg("r1"), mem(8), tick=1),
        )
        tracker = DIFTTracker(
            MitosParams(R=1 << 16, M_prov=4, tau_scale=1.0),
            PropagateNonePolicy(),
        )
        tracker.process_many(list(recording))
        missing = undertainting_of(recording, tracker.shadow, [mem(8)])
        assert missing == {mem(8): {NET}}

    def test_propagate_all_tracker_matches_ground_truth(self):
        from repro.core.params import MitosParams
        from repro.core.policy import PropagateAllPolicy
        from repro.dift.tracker import DIFTTracker

        recording = rec(
            flows.insert(reg("r1"), NET, tick=0),
            flows.address_dep(reg("r1"), mem(8), tick=1),
            flows.copy(mem(8), mem(9), tick=2),
        )
        tracker = DIFTTracker(
            MitosParams(R=1 << 16, M_prov=4, tau_scale=1.0),
            PropagateAllPolicy(),
        )
        tracker.process_many(list(recording))
        missing = undertainting_of(
            recording, tracker.shadow, [mem(8), mem(9)]
        )
        assert missing == {}

    def test_full_program_ground_truth(self):
        """Lineage agrees with propagate-all on the Fig. 1 kernel."""
        from repro.core.params import MitosParams
        from repro.core.policy import PropagateAllPolicy
        from repro.dift.tracker import DIFTTracker
        from repro.isa.machine import Machine
        from repro.isa.programs import lookup_table_translate
        from repro.replay.record import record_machine

        recording = Recording()
        recording.append(flows.insert(mem(0x100), NET, tick=0))
        machine = Machine(
            lookup_table_translate(0x100, 0x200, 0x400, 1), start_tick=1
        )
        program_events = record_machine(machine)
        recording.extend(program_events.events)

        tracker = DIFTTracker(
            MitosParams(R=1 << 16, M_prov=10, tau_scale=1.0),
            PropagateAllPolicy(),
        )
        tracker.process_many(list(recording))
        lineage = LineageGraph.from_recording(recording)
        truth = lineage.taint_ground_truth(mem(0x400))
        held = set(tracker.shadow.tags_at(mem(0x400)))
        assert truth == held == {NET}
