"""Tests for repro.analysis.reporting and repro.analysis.sweep."""

import pytest

from repro.analysis.reporting import format_mapping, format_series, format_table
from repro.analysis.sweep import ParameterSweep
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.faros import mitos_config
from repro.replay.record import Recording
from repro.workloads.calibration import benchmark_params


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["bb", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "a" in lines[3]
        assert "2.500" in lines[4]

    def test_float_precision(self):
        text = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in text

    def test_scientific_for_extremes(self):
        text = format_table(["x"], [[1e9], [1e-7]])
        assert "e+" in text or "E+" in text
        assert "e-" in text or "E-" in text

    def test_nan_rendered(self):
        assert "nan" in format_table(["x"], [[float("nan")]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_short_series_full(self):
        text = format_series("s", [1, 2, 3], [4, 5, 6])
        assert "(3 points)" in text

    def test_long_series_downsampled(self):
        xs = list(range(100))
        text = format_series("s", xs, xs, max_points=10)
        assert "(100 points)" in text
        # far fewer rendered rows than input points
        assert len(text.splitlines()) < 20

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1, 2], [1])

    def test_mapping(self):
        text = format_mapping("m", {"k": 1.0})
        assert "k" in text and "m" in text


class TestParameterSweep:
    def recording(self) -> Recording:
        tag = Tag("netflow", 1)
        events = [flows.insert(mem(i), tag, tick=i) for i in range(5)]
        events.append(flows.copy(mem(0), reg("r0"), tick=5))
        events.append(flows.address_dep(reg("r0"), mem(9), tick=6))
        return Recording(events=events)

    def test_sweep_tau(self):
        sweep = ParameterSweep(self.recording(), mitos_config)
        result = sweep.run("tau", [0.0, 1.0], benchmark_params())
        assert result.parameter == "tau"
        assert result.values() == [0.0, 1.0]
        series = result.series("total_entries")
        assert len(series) == 2
        assert all(entries > 0 for _, entries in series)

    def test_grid_runs_each_parameter(self):
        sweep = ParameterSweep(self.recording(), mitos_config)
        grid = {"tau": [0.5], "alpha": [1.0, 2.0]}
        results = sweep.run_grid(grid, benchmark_params())
        assert set(results) == {"tau", "alpha"}
        assert len(results["alpha"].points) == 2

    def test_invalid_parameter_raises(self):
        sweep = ParameterSweep(self.recording(), mitos_config)
        with pytest.raises(TypeError):
            sweep.run("bogus_param", [1], benchmark_params())
