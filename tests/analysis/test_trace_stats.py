"""Tests for repro.analysis.trace_stats."""

import pytest

from repro.analysis.trace_stats import (
    TraceSummary,
    format_trace_summary,
    summarize_recording,
)
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.replay.record import Recording


def build_recording() -> Recording:
    net = Tag("netflow", 1)
    file_tag = Tag("file", 1)
    events = [
        flows.insert(mem(0), net, tick=0, context="in"),
        flows.insert(mem(0), net, tick=1, context="in"),  # same tag again
        flows.insert(mem(1), file_tag, tick=2, context="in"),
        flows.copy(mem(0), reg("r1"), tick=3, context="lb"),
        flows.copy(mem(0), reg("r1"), tick=4, context="lb"),
        flows.address_dep(reg("r1"), mem(2), tick=5, context="sw"),
        flows.control_dep((reg("r1"),), mem(3), tick=6),
        flows.clear(reg("r1"), tick=7, context="movi"),
    ]
    return Recording(events=events)


class TestSummarize:
    def test_counts(self):
        summary = summarize_recording(build_recording())
        assert summary.events == 8
        assert summary.duration_ticks == 8
        assert summary.kind_counts["insert"] == 3
        assert summary.kind_counts["copy"] == 2
        assert summary.context_counts["lb"] == 2

    def test_distinct_tags_counts_births_once(self):
        summary = summarize_recording(build_recording())
        assert summary.distinct_tags == 2
        assert summary.tag_births_by_type == {"netflow": 1, "file": 1}

    def test_indirect_fraction(self):
        summary = summarize_recording(build_recording())
        # flows: 2 copies + 1 address + 1 control = 4; indirect = 2
        assert summary.indirect_fraction == pytest.approx(0.5)

    def test_indirect_fraction_empty(self):
        assert TraceSummary().indirect_fraction == 0.0

    def test_hottest_destinations(self):
        summary = summarize_recording(build_recording(), top_k=2)
        assert len(summary.hottest_destinations) == 2
        (top_location, top_count) = summary.hottest_destinations[0]
        assert top_count == 3  # reg r1: two copies + one clear
        assert "r1" in top_location

    def test_top_k_zero(self):
        summary = summarize_recording(build_recording(), top_k=0)
        assert summary.hottest_destinations == []

    def test_negative_top_k_rejected(self):
        with pytest.raises(ValueError):
            summarize_recording(build_recording(), top_k=-1)

    def test_empty_recording(self):
        summary = summarize_recording(Recording())
        assert summary.events == 0
        assert summary.distinct_destinations == 0


class TestFormat:
    def test_render_contains_sections(self):
        text = format_trace_summary(summarize_recording(build_recording()))
        assert "trace summary" in text
        assert "flow mix" in text
        assert "taint sources" in text
        assert "hottest destinations" in text

    def test_render_empty(self):
        text = format_trace_summary(summarize_recording(Recording()))
        assert "trace summary" in text
        assert "taint sources" not in text
