"""ClusterRouter unit tests: retries, degradation, re-resolution.

No sockets here: endpoints come from :class:`StaticEndpoints` (or a
mutable fake), ``ServeClient`` is monkeypatched with an in-memory fake,
and the backoff sleep is captured instead of slept -- the router's
retry/degrade state machine is exercised deterministically.
"""

import pytest

import repro.cluster.router as router_module
from repro.cluster.router import (
    RETRYABLE_CODES,
    ClusterRouter,
    StaticEndpoints,
    degraded_clear,
)
from repro.cluster.supervisor import Endpoint
from repro.serve.client import ServeClientError
from repro.serve.protocol import format_location, parse_location
from repro.serve.server import HashRing


def endpoint(shard, generation=1, port=7000):
    return Endpoint(
        shard=shard,
        host="127.0.0.1",
        port=port + shard,
        admin_port=port + 100 + shard,
        generation=generation,
    )


class FakeClient:
    """Scripted stand-in for ServeClient: pops one reply per request."""

    def __init__(self, host, port, timeout=5.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.script = []
        self.requests = []
        self.closed = False

    def request(self, payload):
        self.requests.append(payload)
        if self.script:
            action = self.script.pop(0)
            if isinstance(action, Exception):
                raise action
            return action
        return {"ok": True, "id": payload.get("id")}

    def close(self):
        self.closed = True


class MutableEndpoints:
    """An endpoint table tests can edit mid-flight (failover stand-in)."""

    def __init__(self, endpoints):
        self.table = list(endpoints)

    @property
    def shards(self):
        return len(self.table)

    def endpoint(self, index):
        return self.table[index]


class ClientFactory:
    """Builds FakeClients; can refuse connections like a dead server."""

    def __init__(self):
        self.created = []
        self.fail_connect = False

    def __call__(self, host, port, timeout=5.0, wire_format="ndjson"):
        if self.fail_connect:
            raise OSError("connection refused")
        client = FakeClient(host, port, timeout)
        self.created.append(client)
        return client


@pytest.fixture
def clients(monkeypatch):
    factory = ClientFactory()
    monkeypatch.setattr(router_module, "ServeClient", factory)
    return factory


def make_router(endpoints, **overrides):
    sleeps = []
    settings = dict(
        timeout=1.0, max_retries=3, backoff=0.05, backoff_max=1.0,
        sleep=sleeps.append,
    )
    settings.update(overrides)
    router = ClusterRouter(endpoints, **settings)
    return router, sleeps


DECIDE = {
    "op": "decide",
    "dest": "mem:0x10",
    "free_slots": 2,
    "candidates": [
        {"type": "netflow", "index": 1, "copies": 3},
        {"type": "file", "index": 9, "copies": 1},
    ],
    "kind": "address_dep",
    "tick": 0,
    "id": 42,
}


class TestDegradedClear:
    def test_decide_shape_mirrors_a_real_response(self):
        response = degraded_clear(dict(DECIDE), shard=2)
        assert response["ok"] is True
        assert response["degraded"] is True
        assert response["shard"] == 2
        assert response["id"] == 42
        assert response["propagated"] == []
        rows = response["decisions"]
        assert [row["tag"] for row in rows] == ["netflow:1", "file:9"]
        for row in rows:
            # CLEAR with null marginals: no policy state was consulted
            assert row["propagate"] is False
            assert row["marginal"] is None
            assert row["under"] is None
            assert row["over"] is None

    def test_non_decide_marks_not_applied(self):
        response = degraded_clear({"op": "apply", "id": 7}, shard=0)
        assert response["degraded"] is True
        assert response["applied"] is False
        assert "decisions" not in response


class TestRouting:
    def test_shard_for_normalizes_like_the_server(self):
        router, _ = make_router(StaticEndpoints([endpoint(0), endpoint(1)]))
        ring = HashRing(2)
        for dest in ("mem:0x10", "reg:r6", "mem:0xff"):
            normalized = format_location(parse_location(dest))
            assert router.shard_for(dest) == ring.shard_for(normalized)

    def test_happy_path_returns_the_response(self, clients):
        endpoints = StaticEndpoints([endpoint(0), endpoint(1)])
        router, sleeps = make_router(endpoints)
        response = router.request("mem:0x10", dict(DECIDE))
        assert response == {"ok": True, "id": 42}
        assert sleeps == []
        assert router.stats()["retries"] == 0
        assert len(clients.created) == 1

    def test_retryable_code_retries_then_succeeds(self, clients):
        endpoints = StaticEndpoints([endpoint(0)])
        router, sleeps = make_router(endpoints)
        router.request("mem:0x10", dict(DECIDE))
        fake = clients.created[0]
        fake.script = [
            {"ok": False, "error": "overloaded", "id": 1},
            {"ok": False, "error": "shutting-down", "id": 1},
            {"ok": True, "id": 1},
        ]
        response = router.request("mem:0x10", {"op": "ping", "id": 1})
        assert response["ok"] is True
        # exponential backoff: 0.05, then 0.1
        assert sleeps == [0.05, 0.1]
        assert router.stats()["degraded"] == 0

    def test_terminal_error_returned_without_retry(self, clients):
        endpoints = StaticEndpoints([endpoint(0)])
        router, sleeps = make_router(endpoints)
        router.request("mem:0x10", dict(DECIDE))
        fake = clients.created[0]
        fake.script = [{"ok": False, "error": "bad-request", "id": 9}]
        response = router.request("mem:0x10", {"op": "ping", "id": 9})
        assert response["error"] == "bad-request"
        assert sleeps == []

    def test_connection_loss_drops_client_and_degrades(self, clients):
        endpoints = StaticEndpoints([endpoint(0)])
        router, sleeps = make_router(endpoints, max_retries=2)
        router.request("mem:0x10", dict(DECIDE))
        first = clients.created[0]
        first.script = [ConnectionResetError()]
        # the cached client dies and every reconnect is refused: the
        # retry budget exhausts and the router degrades, never raises
        clients.fail_connect = True
        response = router.request("mem:0x10", dict(DECIDE))
        assert response["degraded"] is True
        assert response["ok"] is True
        assert first.closed
        assert len(sleeps) == 2
        stats = router.stats()
        assert stats["degraded"] == 1
        assert stats["degraded_by_shard"] == {router.shard_for("mem:0x10"): 1}

    def test_client_protocol_error_degrades(self, clients):
        # ServeClientError is a RuntimeError, not an OSError: the router
        # must treat it as a transport failure, not let it escape
        router, _ = make_router(
            StaticEndpoints([endpoint(0)]), max_retries=0
        )
        router.request("mem:0x10", dict(DECIDE))
        clients.created[0].script = [
            ServeClientError("bad-response", "oversized", {})
        ]
        clients.fail_connect = True
        response = router.request("mem:0x10", dict(DECIDE))
        assert response["degraded"] is True

    def test_no_endpoint_degrades_without_raising(self):
        router, sleeps = make_router(
            StaticEndpoints([None, None]), max_retries=3
        )
        response = router.request("mem:0x10", dict(DECIDE))
        assert response["degraded"] is True
        assert len(sleeps) == 3  # every retry backed off

    def test_backoff_is_capped(self):
        router, sleeps = make_router(
            StaticEndpoints([None]),
            max_retries=6, backoff=0.1, backoff_max=0.4,
        )
        router.request("mem:0x10", dict(DECIDE))
        assert sleeps == [0.1, 0.2, 0.4, 0.4, 0.4, 0.4]

    def test_generation_bump_reconnects(self, clients):
        table = MutableEndpoints([endpoint(0, generation=1)])
        router, _ = make_router(table)
        router.request("mem:0x10", dict(DECIDE))
        old = clients.created[0]
        # failover: same shard, new port, bumped generation
        table.table[0] = endpoint(0, generation=2, port=8000)
        router.request("mem:0x10", dict(DECIDE))
        assert old.closed
        fresh = clients.created[1]
        assert fresh.port == 8000
        assert len(clients.created) == 2

    def test_mid_retry_recovery_uses_the_new_endpoint(self, clients):
        table = MutableEndpoints([None])
        recovered = endpoint(0, generation=2, port=9000)

        def sleep(_delay):
            table.table[0] = recovered  # shard comes back during backoff

        router = ClusterRouter(
            table, timeout=1.0, max_retries=2, backoff=0.01, sleep=sleep
        )
        response = router.request("mem:0x10", dict(DECIDE))
        assert response == {"ok": True, "id": 42}
        assert clients.created[0].port == 9000

    def test_retryable_codes_are_the_documented_set(self):
        assert RETRYABLE_CODES == {"overloaded", "shutting-down"}

    def test_close_closes_cached_clients(self, clients):
        router, _ = make_router(StaticEndpoints([endpoint(0)]))
        router.request("mem:0x10", dict(DECIDE))
        router.close()
        assert all(client.closed for client in clients.created)
