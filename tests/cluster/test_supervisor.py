"""ClusterSupervisor tests on the thread backend.

The thread backend runs real :class:`MitosServer` instances (real
sockets, real admin plane, real checkpoints) inside this process, so
supervision is exercised against the genuine article without process
spawn latency.  The monitor interval is set high and ``check_once()``
driven by hand wherever determinism matters.
"""

import json
import urllib.request

import pytest

from repro.cluster.supervisor import ClusterSupervisor
from repro.options import ClusterOptions
from repro.serve.client import ServeClient


def cluster_options(**overrides) -> ClusterOptions:
    defaults = dict(
        shards=2,
        quick_calibration=True,
        health_interval=30.0,  # monitor effectively off; tests drive it
        restart_backoff=0.0,
        gossip_interval=None,
        boot_timeout=60.0,
    )
    defaults.update(overrides)
    return ClusterOptions(**defaults)


def admin_get(endpoint, path):
    url = f"http://{endpoint.host}:{endpoint.admin_port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def supervisor():
    with ClusterSupervisor(cluster_options(), backend="thread") as sup:
        yield sup


class TestLifecycle:
    def test_start_publishes_every_endpoint(self, supervisor):
        endpoints = supervisor.endpoints()
        assert len(endpoints) == 2
        for index, endpoint in enumerate(endpoints):
            assert endpoint is not None
            assert endpoint.shard == index
            assert endpoint.generation == 1

    def test_shards_answer_on_their_published_ports(self, supervisor):
        for endpoint in supervisor.endpoints():
            with ServeClient(endpoint.host, endpoint.port) as client:
                assert client.ping()["pong"] is True

    def test_probe_sees_ready(self, supervisor):
        for handle in supervisor.handles:
            assert supervisor.probe(handle) is True

    def test_status_shape(self, supervisor):
        status = supervisor.status()
        assert status["backend"] == "thread"
        assert status["shards"] == 2
        assert status["ready"] == 2
        assert status["failed"] == 0
        assert len(status["endpoints"]) == 2

    def test_wait_all_ready_when_already_ready(self, supervisor):
        assert supervisor.wait_all_ready(timeout=5)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ClusterSupervisor(cluster_options(), backend="fork")


class TestFailover:
    def test_kill_then_check_once_recovers_with_new_generation(self):
        options = cluster_options(shards=2)
        with ClusterSupervisor(options, backend="thread") as sup:
            before = sup.endpoint(1)
            sup.kill_shard(1, hard=True)
            # hard kill = abort: the server thread dies, check_once sees
            # the "process" gone and restarts it from its checkpoint dir
            sup.check_once()
            after = sup.endpoint(1)
            assert after is not None
            assert after.generation == before.generation + 1
            assert sup.restarts == [0, 1]
            assert len(sup.failovers) == 1
            assert sup.failovers[0] > 0
            # untouched shard is untouched
            assert sup.endpoint(0).generation == 1
            with ServeClient(after.host, after.port) as client:
                assert client.ping()["pong"] is True

    def test_restart_budget_exhaustion_marks_failed(self):
        options = cluster_options(shards=1, max_restarts=0)
        with ClusterSupervisor(options, backend="thread") as sup:
            sup.kill_shard(0, hard=True)
            sup.check_once()
            assert sup.failed == [True]
            assert sup.endpoint(0) is None
            assert sup.status()["failed"] == 1
            # a failed shard is skipped thereafter, not respawned
            sup.check_once()
            assert sup.restarts == [1]


class TestGossip:
    def test_round_delivers_beliefs_to_every_peer(self):
        options = cluster_options(shards=3)
        with ClusterSupervisor(options, backend="thread") as sup:
            delivered = sup.gossip_round()
            # 3 live shards, each hears the 2 others
            assert delivered == 6
            assert sup.gossip_sent == 6
            assert sup.gossip_dropped == 0
            for endpoint in sup.endpoints():
                stats = admin_get(endpoint, "/stats")
                shard_stats = stats["shards"][0]
                assert shard_stats["peer_beliefs"] == 2
                assert stats["gossip_received"] == 2

    def test_total_loss_drops_everything(self):
        options = cluster_options(shards=2, gossip_loss_rate=1.0)
        with ClusterSupervisor(options, backend="thread") as sup:
            assert sup.gossip_round() == 0
            assert sup.gossip_dropped == 2
            assert sup.gossip_sent == 0

    def test_seeded_loss_is_deterministic(self):
        counts = []
        for _ in range(2):
            options = cluster_options(
                shards=3, gossip_loss_rate=0.5, gossip_seed=11
            )
            with ClusterSupervisor(options, backend="thread") as sup:
                counts.append((sup.gossip_round(), sup.gossip_dropped))
        assert counts[0] == counts[1]
