"""Live-fleet gossip-interval sweep (``bench-cluster --sweep-gossip``).

The sweep mirrors the simulation's agreement-vs-gossip-interval curve on
a real fleet: per interval it boots fresh shards with the background
gossip pump off, strips the explicit pollution from every offline
decision (so shards decide from their *believed* local + gossiped
estimate), and pumps ``gossip_round()`` manually every N decisions.
"""

import pytest

from repro.cluster import run_gossip_sweep, write_gossip_bench
from repro.experiments.common import experiment_params
from repro.options import ClusterOptions
from repro.serve.loadgen import collect_offline_decisions
from repro.cluster.harness import spread_destinations
from tests.serve.test_loadgen import ifp_recording


@pytest.fixture(scope="module")
def offline():
    params = experiment_params(quick=True)
    return spread_destinations(
        collect_offline_decisions(ifp_recording(), params)
    )


def options_factory(interval):
    return ClusterOptions(
        shards=2,
        quick_calibration=True,
        gossip_interval=None,  # the sweep pumps rounds manually
        gossip_seed=0,
        checkpoint_every=1 << 30,
    )


class TestGossipSweep:
    def test_sweep_records_agreement_and_recall(self, offline):
        sweep = run_gossip_sweep(
            offline, [2, 8], options_factory, backend="thread"
        )
        assert [point["gossip_every"] for point in sweep] == [2, 8]
        for point in sweep:
            assert point["errors"] == 0
            assert point["decisions"] == len(offline)
            assert 0.0 <= point["agreement"] <= 1.0
            assert 0.0 <= point["recall"] <= 1.0
            assert point["gossip_rounds"] > 0
            assert point["recalled"] <= point["oracle_positives"]
        # a tighter cadence can never run fewer rounds
        assert sweep[0]["gossip_rounds"] >= sweep[1]["gossip_rounds"]

    def test_lossy_gossip_drops_are_counted(self, offline):
        def lossy(interval):
            options = options_factory(interval)
            options.gossip_loss_rate = 1.0  # fully partitioned
            return options

        sweep = run_gossip_sweep(
            offline[:32], [4], lossy, backend="thread"
        )
        # gossip_sent counts deliveries: a fully-partitioned fleet
        # delivers nothing and charges every message to the drop counter
        assert sweep[0]["gossip_dropped"] > 0
        assert sweep[0]["gossip_sent"] == 0

    def test_interval_must_be_positive(self, offline):
        with pytest.raises(ValueError, match="interval"):
            run_gossip_sweep(offline, [0], options_factory)

    def test_factory_must_disable_background_gossip(self, offline):
        with pytest.raises(ValueError, match="gossip_interval"):
            run_gossip_sweep(
                offline,
                [4],
                lambda interval: ClusterOptions(
                    shards=2, quick_calibration=True, gossip_interval=0.5
                ),
            )

    def test_write_gossip_bench_document(self, offline, tmp_path):
        import json

        sweep = run_gossip_sweep(
            offline[:32], [8], options_factory, backend="thread"
        )
        path = write_gossip_bench(
            tmp_path / "BENCH_cluster.json",
            sweep,
            shards=2,
            backend="thread",
            recording_events=123,
            extra={"quick": True},
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["benchmark"] == "cluster-gossip"
        assert document["intervals"] == [8]
        assert document["agreement"] == [sweep[0]["agreement"]]
        assert document["recall"] == [sweep[0]["recall"]]
        assert document["quick"] is True
