"""Tests for the fault-tolerant multi-process cluster."""
