"""Kill-and-recover harness tests (satellite: SIGKILL under loadgen).

The scenario the issue pins: a shard is killed mid-load, the router
degrades the dead shard's destinations instead of erroring, the
supervisor restarts the shard from its checkpoint, and the re-issued
decisions match the single-process oracle field-for-field.  The thread
backend keeps the fast deterministic variant; one process-backend test
does it with a real SIGKILL.
"""

import pytest

from repro.cluster import (
    ClusterRouter,
    ClusterSupervisor,
    run_cluster_load,
    spread_destinations,
    write_cluster_bench,
)
from repro.experiments.common import experiment_params
from repro.faults.crashes import CrashEvent, CrashSchedule
from repro.options import ClusterOptions
from repro.serve.loadgen import collect_offline_decisions
from tests.serve.test_loadgen import ifp_recording


@pytest.fixture(scope="module")
def offline():
    params = experiment_params(quick=True)
    return spread_destinations(
        collect_offline_decisions(ifp_recording(), params)
    )


class TestSpreadDestinations:
    def test_destinations_become_unique(self, offline):
        dests = [decision.request["dest"] for decision in offline]
        assert len(set(dests)) == len(dests)

    def test_expectations_survive_verbatim(self):
        params = experiment_params(quick=True)
        original = collect_offline_decisions(ifp_recording(), params)
        spread = spread_destinations(original)
        assert len(spread) == len(original)
        for before, after in zip(original, spread):
            assert after.expected == before.expected
            untouched = {
                k: v for k, v in after.request.items() if k != "dest"
            }
            assert untouched == {
                k: v for k, v in before.request.items() if k != "dest"
            }


def targeted_schedule(router, offline, at_request):
    """Kill the shard owning the traffic at ``at_request``."""
    victim = router.shard_for(str(offline[at_request].request["dest"]))
    return CrashSchedule([CrashEvent(at_request=at_request, shard=victim)])


class TestKillAndRecover:
    def test_degrade_then_recover_matches_oracle(self, offline, tmp_path):
        # slow the failover (restart_backoff) past the router's retry
        # budget so the outage window is observable as degraded answers
        options = ClusterOptions(
            shards=3,
            quick_calibration=True,
            checkpoint_every=4,
            health_interval=0.05,
            restart_backoff=0.4,
            gossip_interval=None,
        )
        with ClusterSupervisor(options, backend="thread") as supervisor:
            with ClusterRouter.for_supervisor(
                supervisor, max_retries=2, backoff=0.01, backoff_max=0.02
            ) as router:
                crashes = targeted_schedule(router, offline, at_request=5)
                result = run_cluster_load(
                    supervisor, router, offline, crashes=crashes
                )
        assert result.requests == len(offline)
        assert result.errors == 0
        # the kill targeted the shard owning request 5: at least that
        # request degraded, and only the killed shard's keys ever did
        assert result.degraded >= 1
        assert result.degraded_out_of_range == 0
        assert result.unrecovered == 0
        assert result.mismatches == []
        assert result.matched
        assert result.shards_killed == list(crashes.shards_hit())
        assert result.restarts >= 1
        assert result.failover_seconds
        # final answers agree with the single-process oracle completely
        assert result.tally.agreement == 1.0
        assert result.tally.total > 0
        report = write_cluster_bench(
            tmp_path / "BENCH_cluster.json",
            result,
            shards=3,
            backend="thread",
            recording_events=len(ifp_recording()),
        )
        text = report.read_text()
        assert '"benchmark": "cluster"' in text
        assert '"agreement": 1.0' in text

    def test_crash_free_run_is_pure_parity(self, offline):
        options = ClusterOptions(
            shards=2, quick_calibration=True, gossip_interval=None
        )
        with ClusterSupervisor(options, backend="thread") as supervisor:
            with ClusterRouter.for_supervisor(supervisor) as router:
                result = run_cluster_load(supervisor, router, offline)
        assert result.matched
        assert result.degraded == 0
        assert result.restarts == 0
        assert result.tally.agreement == 1.0


class TestProcessBackendSigkill:
    def test_real_sigkill_recovers_from_checkpoint(self, offline):
        options = ClusterOptions(
            shards=2,
            quick_calibration=True,
            checkpoint_every=4,
            health_interval=0.1,
            restart_backoff=0.05,
        )
        with ClusterSupervisor(options, backend="process") as supervisor:
            with ClusterRouter.for_supervisor(supervisor) as router:
                crashes = targeted_schedule(router, offline, at_request=5)
                result = run_cluster_load(
                    supervisor, router, offline, crashes=crashes
                )
            status = supervisor.status()
        assert result.matched
        assert result.errors == 0
        assert result.unrecovered == 0
        assert result.degraded_out_of_range == 0
        assert result.tally.agreement == 1.0
        assert result.restarts == 1
        # a process respawn is never instant: the SIGKILLed shard's
        # requests degraded during the interpreter restart
        assert result.degraded >= 1
        assert status["failed"] == 0
        assert status["ready"] == 2
