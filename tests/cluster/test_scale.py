"""Scale sweep tests: ring partitioning, efficiency math, CPU pinning.

``run_scale_sweep`` is what ``mitos-repro bench-cluster --sweep-shards``
runs at full size: boot a process fleet per shard count, drive every
shard concurrently from its own loadgen worker, and record aggregate
decisions/s with parity and oracle agreement attached.  The smoke test
here runs the real thing at the smallest useful size (one process
shard); the rest pins the report document, the validation, and the
best-effort affinity helper without booting anything.
"""

import json
import os

import pytest

from repro.cluster.harness import (
    run_scale_sweep,
    spread_destinations,
    write_scale_bench,
)
from repro.cluster.supervisor import ProcessShard
from repro.options import ClusterOptions
from repro.serve.loadgen import collect_offline_decisions

from tests.serve.test_loadgen import ifp_recording


@pytest.fixture(scope="module")
def offline():
    from repro.experiments.common import experiment_params

    return spread_destinations(
        collect_offline_decisions(
            ifp_recording(), experiment_params(quick=True)
        )
    )


class TestRunScaleSweep:
    def test_rejects_non_positive_counts(self, offline):
        with pytest.raises(ValueError):
            run_scale_sweep(
                offline, [0], lambda count: ClusterOptions(shards=count)
            )

    def test_single_shard_smoke(self, offline):
        # the real pipeline at the smallest size: one process shard,
        # one loadgen worker, full parity + agreement accounting
        sweep = run_scale_sweep(
            offline,
            [1],
            lambda count: ClusterOptions(
                shards=count,
                quick_calibration=True,
                gossip_interval=None,
                pin_cpus=False,
            ),
            window=8,
        )
        (entry,) = sweep
        assert entry["shards"] == 1
        assert entry["driven_shards"] == 1
        assert entry["requests"] == len(offline)
        assert entry["matched"] is True
        assert entry["agreement"] == 1.0
        assert entry["speedup_vs_base"] == 1.0
        assert entry["scaling_efficiency"] == 1.0
        assert entry["per_shard"][0]["worker"] == 0


class TestWriteScaleBench:
    def _sweep(self):
        return [
            {
                "shards": 1,
                "matched": True,
                "decisions_per_second": 100.0,
                "speedup_vs_base": 1.0,
                "scaling_efficiency": 1.0,
            },
            {
                "shards": 4,
                "matched": True,
                "decisions_per_second": 300.0,
                "speedup_vs_base": 3.0,
                "scaling_efficiency": 0.75,
            },
        ]

    def test_report_document(self, tmp_path):
        path = write_scale_bench(
            tmp_path / "BENCH_scale.json",
            self._sweep(),
            recording_events=50,
            wire_format="binary",
            window=256,
            extra={"quick": True},
        )
        report = json.loads(path.read_text())
        assert report["benchmark"] == "scale"
        assert report["shard_counts"] == [1, 4]
        assert report["matched"] is True
        assert report["recording_events"] == 50
        assert report["wire_format"] == "binary"
        assert report["window"] == 256
        assert report["quick"] is True
        assert report["sweep"][1]["scaling_efficiency"] == 0.75

    def test_any_unmatched_point_fails_the_report(self, tmp_path):
        sweep = self._sweep()
        sweep[1]["matched"] = False
        path = write_scale_bench(
            tmp_path / "scale.json",
            sweep,
            recording_events=50,
            wire_format="binary",
            window=64,
        )
        assert json.loads(path.read_text())["matched"] is False


class TestCpuPinning:
    def _shard(self, index=0, pin=True):
        return ProcessShard(index, ClusterOptions(shards=4, pin_cpus=pin))

    @pytest.mark.skipif(
        not hasattr(os, "sched_setaffinity"),
        reason="no sched_setaffinity on this platform",
    )
    def test_round_robin_over_available_cpus(self, monkeypatch):
        pinned = {}
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        monkeypatch.setattr(
            os,
            "sched_setaffinity",
            lambda pid, cpus: pinned.setdefault(pid, set(cpus)),
        )
        for index in range(6):
            self._shard(index)._pin_cpu(1000 + index)
        assert pinned == {
            1000: {0}, 1001: {1}, 1002: {2},
            1003: {3}, 1004: {0}, 1005: {1},
        }

    @pytest.mark.skipif(
        not hasattr(os, "sched_setaffinity"),
        reason="no sched_setaffinity on this platform",
    )
    def test_disabled_and_single_cpu_are_noops(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            os, "sched_setaffinity", lambda *a: calls.append(a)
        )
        self._shard(pin=False)._pin_cpu(1)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        self._shard(pin=True)._pin_cpu(1)
        assert calls == []

    @pytest.mark.skipif(
        not hasattr(os, "sched_setaffinity"),
        reason="no sched_setaffinity on this platform",
    )
    def test_oserror_is_swallowed(self, monkeypatch):
        # the child can exit (or the container can forbid affinity)
        # between spawn and pin; startup must not care
        monkeypatch.setattr(os, "cpu_count", lambda: 4)

        def boom(pid, cpus):
            raise OSError("no such process")

        monkeypatch.setattr(os, "sched_setaffinity", boom)
        self._shard()._pin_cpu(424242)
