"""Canary decision-diff tests.

The acceptance criterion from the issue: a live canary run with a
shifted tau must report a nonzero number of decision flips, and that
number must **exactly** match an offline replay diff of the same two
parameter sets over the same decision stream.  Explicit-mode requests
are pure functions of the request, so the equality is exact, not
statistical.
"""

import json

import pytest

from repro.experiments.common import experiment_params, network_recording
from repro.options import ServeOptions
from repro.serve.canary import (
    CanaryShard,
    mirrors,
    offline_decision_diff,
)
from repro.serve.protocol import parse_request
from repro.serve.server import MitosServer, ServerThread
from repro.serve.loadgen import collect_offline_decisions, run_load

SHIFTED_TAU = 0.05


@pytest.fixture(scope="module")
def offline():
    recording = network_recording(seed=0, quick=True)
    params = experiment_params(quick=True)
    return collect_offline_decisions(recording, params)


class TestMirrors:
    def test_deterministic(self):
        for key in ("mem:0x10", "mem:0x20", "reg:r3"):
            assert mirrors(key, 0.5, seed=7) == mirrors(key, 0.5, seed=7)

    def test_extremes(self):
        assert mirrors("mem:0x10", 1.0) is True
        assert mirrors("mem:0x10", 0.0) is False

    def test_fraction_roughly_respected(self):
        keys = [f"mem:{i:#x}" for i in range(2000)]
        hit = sum(mirrors(k, 0.25) for k in keys)
        assert 0.15 < hit / len(keys) < 0.35

    def test_seed_changes_the_sample(self):
        keys = [f"mem:{i:#x}" for i in range(500)]
        a = [mirrors(k, 0.5, seed=0) for k in keys]
        b = [mirrors(k, 0.5, seed=1) for k in keys]
        assert a != b


class TestCanaryShard:
    def _shard(self, fraction=1.0, tau=SHIFTED_TAU, **kwargs):
        from repro.faros.config import FarosConfig

        params = experiment_params(quick=True, tau=tau)
        config = FarosConfig(params=params, policy="mitos", label="canary")
        return CanaryShard(
            0,
            params=params,
            policy_factory=config.build_policy,
            fraction=fraction,
            **kwargs,
        )

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            self._shard(fraction=1.5)

    def test_identical_params_never_flip(self, offline):
        canary = self._shard(tau=1.0)  # primary's tau
        for decision in offline:
            request = parse_request(
                json.dumps(dict(decision.request, id=1)).encode()
            )
            flipped = canary.observe(
                request, decision.expected["propagated"]
            )
            assert flipped is False
        assert canary.flips == 0
        assert canary.mirrored == len(offline)

    def test_flip_tail_is_bounded(self, offline):
        canary = self._shard(flip_tail=4)
        for decision in offline:
            request = parse_request(
                json.dumps(dict(decision.request, id=1)).encode()
            )
            canary.observe(request, decision.expected["propagated"])
        assert canary.flips > 4
        records = canary.flip_records()
        assert len(records) == 4
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        assert canary.flip_records(since_seq=seqs[-1]) == []

    def test_stats_payload_shape(self):
        payload = self._shard().stats_payload()
        for key in (
            "shard", "fraction", "mirrored", "flips",
            "shadow_pollution", "shadow_live_tags",
        ):
            assert key in payload, key

    def test_shadow_error_counts_as_flip_without_raising(self, offline):
        canary = self._shard()
        canary.shadow = None  # any observe() now explodes internally
        request = parse_request(
            json.dumps(dict(offline[0].request, id=1)).encode()
        )
        flipped = canary.observe(request, offline[0].expected["propagated"])
        assert flipped is True
        (record,) = canary.flip_records()
        assert "error" in record


class TestServeOptionsValidation:
    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            ServeOptions(canary_fraction=-0.1)
        with pytest.raises(ValueError):
            ServeOptions(canary_fraction=1.1)

    def test_overrides_require_fraction(self):
        with pytest.raises(ValueError):
            ServeOptions(canary_tau=0.5)
        ServeOptions(canary_fraction=0.5, canary_tau=0.5)  # fine

    def test_canary_off_by_default(self):
        server = MitosServer(ServeOptions(port=0, quick_calibration=True))
        assert server.canaries is None
        assert "canary" not in server.stats()


class TestLiveCanaryMatchesOfflineDiff:
    """The issue's acceptance bar: live flips == offline replay diff."""

    def test_full_mirror_flips_match_offline_diff(self, offline):
        options = ServeOptions(
            port=0,
            shards=2,
            quick_calibration=True,
            canary_fraction=1.0,
            canary_tau=SHIFTED_TAU,
        )
        with ServerThread(options) as thread:
            result = run_load(thread.host, thread.port, offline, window=64)
            assert result.matched  # canary never perturbs the primary
            stats = thread.server.stats()
        mirrored = sum(c["mirrored"] for c in stats["canary"])
        live_flips = sum(c["flips"] for c in stats["canary"])
        assert mirrored == len(offline)

        shifted = experiment_params(quick=True, tau=SHIFTED_TAU)
        offline_flips, flipped_indices = offline_decision_diff(
            offline, shifted
        )
        assert offline_flips > 0  # the shifted tau must actually diverge
        assert live_flips == offline_flips
        assert len(flipped_indices) == offline_flips

    def test_partial_mirror_counts_only_mirrored_requests(self, offline):
        # the quick recording decides at a single destination, so spread
        # the captured requests over many synthetic destinations to give
        # the per-destination hash something to partition
        from repro.faros.config import FarosConfig

        params = experiment_params(quick=True, tau=SHIFTED_TAU)
        config = FarosConfig(params=params, policy="mitos", label="canary")
        canary = CanaryShard(
            0,
            params=params,
            policy_factory=config.build_policy,
            fraction=0.5,
        )
        for index, decision in enumerate(offline):
            payload = dict(decision.request, id=1, dest=f"mem:{index:#x}")
            canary.observe(
                parse_request(json.dumps(payload).encode()),
                decision.expected["propagated"],
            )
        assert 0 < canary.mirrored < len(offline)
        assert canary.flips <= canary.mirrored
