"""Tests for the ``mitos-repro top`` terminal client.

:func:`repro.serve.top.render` is pure (two snapshots in, one screen of
text out), so most coverage runs on synthetic snapshots; one end-to-end
test drives the real ``/events`` stream of a live observed server.
"""

import io

import pytest

from repro.cli import main as cli_main
from repro.options import ServeOptions
from repro.serve.loadgen import collect_offline_decisions, run_load
from repro.serve.server import ServerThread
from repro.serve.top import iter_events, render, run_top
from repro.experiments.common import experiment_params, network_recording


def snapshot(
    seq=1,
    uptime=10.0,
    requests=1000,
    responses=990,
    decide_buckets=None,
    canary=None,
    canary_flips=(),
    decisions=None,
):
    stats = {
        "uptime_seconds": uptime,
        "draining": False,
        "requests": requests,
        "responses": responses,
        "errors": 1,
        "overloaded": 2,
        "retries": 3,
        "inflight": 4,
        "queue_depths": [5, 6],
        "shards": [
            {"pollution": 1.25, "live_tags": 3},
            {"pollution": 0.75, "live_tags": 2},
        ],
    }
    if canary is not None:
        stats["canary"] = canary
    snap = {
        "seq": seq,
        "uptime_seconds": uptime,
        "stats": stats,
        "pollution": 2.0,
    }
    if decide_buckets is not None:
        snap["metrics"] = {
            "histograms": {
                "serve.decide_us": {"buckets": decide_buckets},
            },
        }
    if canary_flips:
        snap["canary_flips"] = list(canary_flips)
    if decisions is not None:
        snap["decisions"] = decisions
    return snap


class TestRender:
    def test_first_frame_uses_lifetime_rates(self):
        screen = render(snapshot(uptime=10.0, requests=1000))
        assert "req/s     100.0" in screen
        assert "inflight 4" in screen
        assert "queues 5 6" in screen
        assert "pollution 2.000" in screen
        assert "per-shard [1.250 0.750]" in screen

    def test_rates_come_from_deltas(self):
        previous = snapshot(uptime=10.0, requests=1000, responses=990)
        current = snapshot(
            seq=2, uptime=12.0, requests=1400, responses=1390
        )
        screen = render(current, previous)
        assert "req/s     200.0" in screen
        assert "resp/s     200.0" in screen

    def test_latency_rows_from_bucket_deltas(self):
        previous = snapshot(decide_buckets={"le_100": 0, "le_inf": 0})
        current = snapshot(
            seq=2,
            uptime=11.0,
            decide_buckets={"le_100": 100, "le_inf": 0},
        )
        screen = render(current, previous)
        assert "latency (this interval)" in screen
        assert "decide" in screen
        assert "p50" in screen and "p99" in screen

    def test_no_latency_panel_without_metrics(self):
        assert "latency" not in render(snapshot())

    def test_canary_panel(self):
        canary = [
            {"shard": 0, "fraction": 0.5, "mirrored": 40, "flips": 3},
            {"shard": 1, "fraction": 0.5, "mirrored": 38, "flips": 1},
        ]
        flips = [
            {
                "seq": 4, "shard": 0, "dest": "mem:0x10",
                "primary": ["netflow:1"], "canary": [],
            },
        ]
        screen = render(snapshot(canary=canary, canary_flips=flips))
        assert "canary fraction=0.5" in screen
        assert "mirrored 78" in screen and "flips 4" in screen
        assert "flip #4 shard 0 mem:0x10" in screen

    def test_decision_window_count(self):
        screen = render(snapshot(decisions=[{}, {}, {}]))
        assert "decisions in window: 3" in screen

    def test_draining_flag_surfaces(self):
        snap = snapshot()
        snap["stats"]["draining"] = True
        assert "DRAINING" in render(snap)


@pytest.fixture(scope="module")
def observed_server():
    options = ServeOptions(
        port=0,
        admin_port=0,
        shards=2,
        quick_calibration=True,
        observe=True,
        canary_fraction=1.0,
        canary_tau=0.05,
    )
    with ServerThread(options, options.observability()) as thread:
        recording = network_recording(seed=0, quick=True)
        offline = collect_offline_decisions(
            recording, experiment_params(quick=True)
        )
        run_load(thread.host, thread.port, offline, window=64)
        yield thread


class TestLive:
    def test_iter_events_streams_snapshots(self, observed_server):
        snaps = list(
            iter_events(
                "127.0.0.1",
                observed_server.admin_port,
                interval=0.05,
                count=2,
            )
        )
        assert [s["seq"] for s in snaps] == [1, 2]
        assert snaps[0]["stats"]["requests"] > 0

    def test_run_top_renders_live_frames(self, observed_server):
        out = io.StringIO()
        code = run_top(
            "127.0.0.1",
            observed_server.admin_port,
            interval=0.05,
            count=2,
            out=out,
            clear=False,
        )
        assert code == 0
        text = out.getvalue()
        assert text.count("mitos-repro top") == 2
        assert "canary fraction=1.0" in text

    def test_cli_top_subcommand(self, observed_server, capsys):
        code = cli_main(
            [
                "top",
                "--port", str(observed_server.admin_port),
                "--interval", "0.05",
                "--count", "1",
                "--no-clear",
            ]
        )
        assert code == 0
        assert "mitos-repro top" in capsys.readouterr().out

    def test_connection_refused_exits_nonzero(self):
        out = io.StringIO()
        code = run_top("127.0.0.1", 1, interval=0.05, count=1, out=out)
        assert code == 1
