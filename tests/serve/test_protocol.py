"""Wire-protocol unit tests: parsing, validation, structured errors.

Every rejection must surface as a :class:`ProtocolError` with one of the
documented codes -- the server turns those into error *responses*, so a
precise code here is what keeps a malformed client request from ever
tearing a connection down.
"""

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    ApplyRequest,
    ControlRequest,
    DecideRequest,
    GossipRequest,
    ProtocolError,
    encode_message,
    error_response,
    format_location,
    ok_response,
    parse_location,
    parse_request,
)


def _line(**payload) -> str:
    return json.dumps(payload)


def _code_of(line) -> str:
    with pytest.raises(ProtocolError) as excinfo:
        parse_request(line)
    assert excinfo.value.code in ERROR_CODES
    return excinfo.value.code


class TestLocations:
    def test_mem_round_trips_as_hex(self):
        assert format_location(("mem", 0x4800)) == "mem:0x4800"
        assert parse_location("mem:0x4800") == ("mem", 0x4800)

    def test_mem_decimal_and_hex_agree(self):
        assert parse_location("mem:18432") == parse_location("mem:0x4800")

    def test_nic_parses_as_integer(self):
        assert parse_location("nic:3") == ("nic", 3)

    def test_other_kinds_keep_string_values(self):
        assert parse_location("reg:r11") == ("reg", "r11")
        assert format_location(("reg", "r11")) == "reg:r11"

    @pytest.mark.parametrize("bad", ["mem", "mem:", ":5", "mem:zz"])
    def test_malformed_locations_rejected(self, bad):
        with pytest.raises(ProtocolError) as excinfo:
            parse_location(bad)
        assert excinfo.value.code == "bad-request"


class TestControlOps:
    @pytest.mark.parametrize("op", ["ping", "stats", "checkpoint"])
    def test_bare_ops_parse(self, op):
        request = parse_request(_line(op=op, id=9))
        assert isinstance(request, ControlRequest)
        assert request.op == op and request.id == 9

    def test_control_rejects_extra_fields(self):
        assert _code_of(_line(op="ping", shard=3)) == "unknown-field"


class TestGossipParsing:
    def test_valid_gossip_parses(self):
        request = parse_request(
            _line(op="gossip", id=4, peer=2, pollution=7.5)
        )
        assert isinstance(request, GossipRequest)
        assert request.id == 4
        assert request.peer == 2
        assert request.pollution == 7.5

    def test_integer_pollution_coerced_to_float(self):
        request = parse_request(_line(op="gossip", peer=0, pollution=3))
        assert request.pollution == 3.0
        assert isinstance(request.pollution, float)

    def test_missing_fields_rejected(self):
        assert _code_of(_line(op="gossip", peer=1)) == "bad-request"
        assert _code_of(_line(op="gossip", pollution=1.0)) == "bad-request"

    def test_invalid_peer_rejected(self):
        assert _code_of(
            _line(op="gossip", peer=-1, pollution=1.0)
        ) == "bad-request"
        assert _code_of(
            _line(op="gossip", peer=True, pollution=1.0)
        ) == "bad-request"
        assert _code_of(
            _line(op="gossip", peer="2", pollution=1.0)
        ) == "bad-request"

    def test_invalid_pollution_rejected(self):
        assert _code_of(
            _line(op="gossip", peer=0, pollution=-0.5)
        ) == "bad-request"
        assert _code_of(
            _line(op="gossip", peer=0, pollution=True)
        ) == "bad-request"
        assert _code_of(
            _line(op="gossip", peer=0, pollution="high")
        ) == "bad-request"

    def test_extra_fields_rejected(self):
        assert _code_of(
            _line(op="gossip", peer=0, pollution=1.0, shard=2)
        ) == "unknown-field"


class TestDecideParsing:
    def _decide(self, **overrides):
        payload = {
            "op": "decide",
            "id": 7,
            "dest": "mem:0x10",
            "kind": "address_dep",
            "free_slots": 3,
            "pollution": 12.5,
            "tick": 4,
            "context": "lw",
            "candidates": [
                {"type": "netflow", "index": 1, "copies": 4},
                {"type": "file", "index": 2},
            ],
        }
        payload.update(overrides)
        return payload

    def test_explicit_mode_fields(self):
        request = parse_request(json.dumps(self._decide()))
        assert isinstance(request, DecideRequest)
        assert request.destination == ("mem", 0x10)
        assert request.free_slots == 3
        assert request.pollution == 12.5
        assert request.kind == "address_dep"
        assert request.tick == 4 and request.context == "lw"
        first, second = request.candidates
        assert (first.tag_type, first.index, first.copies) == ("netflow", 1, 4)
        # omitted copies mean "use the shard's live count"
        assert second.copies is None

    def test_stateful_mode_omits_pollution(self):
        request = parse_request(json.dumps(self._decide(pollution=None)))
        assert request.pollution is None

    def test_integer_pollution_coerced_to_float(self):
        request = parse_request(json.dumps(self._decide(pollution=12)))
        assert request.pollution == 12.0 and isinstance(
            request.pollution, float
        )

    def test_defaults_for_optional_fields(self):
        request = parse_request(
            _line(op="decide", dest="mem:1", free_slots=0, candidates=[])
        )
        assert request.kind == "address_dep"
        assert request.tick == 0 and request.context == ""
        assert request.candidates == ()

    def test_bytes_input_accepted(self):
        request = parse_request(json.dumps(self._decide()).encode())
        assert isinstance(request, DecideRequest)

    @pytest.mark.parametrize(
        "overrides, code",
        [
            ({"dest": 5}, "bad-request"),
            ({"free_slots": -1}, "bad-request"),
            ({"free_slots": "3"}, "bad-request"),
            ({"free_slots": True}, "bad-request"),
            ({"kind": "copy"}, "bad-request"),
            ({"pollution": -1.0}, "bad-request"),
            ({"pollution": "high"}, "bad-request"),
            ({"pollution": True}, "bad-request"),
            ({"tick": "now"}, "bad-request"),
            ({"context": 3}, "bad-request"),
            ({"surprise": 1}, "unknown-field"),
            ({"candidates": "netflow:1"}, "bad-request"),
        ],
    )
    def test_bad_decide_fields(self, overrides, code):
        assert _code_of(json.dumps(self._decide(**overrides))) == code

    def test_missing_free_slots(self):
        payload = self._decide()
        del payload["free_slots"]
        assert _code_of(json.dumps(payload)) == "bad-request"

    @pytest.mark.parametrize(
        "candidate",
        [
            "netflow:1",
            {"type": "netflow"},
            {"index": 1},
            {"type": "", "index": 1},
            {"type": "netflow", "index": "1"},
            {"type": "netflow", "index": True},
            {"type": "netflow", "index": 1, "copies": -1},
            {"type": "netflow", "index": 1, "copies": 1.5},
            {"type": "netflow", "index": 1, "copies": True},
            {"type": "netflow", "index": 1, "weight": 2},
        ],
    )
    def test_bad_candidates(self, candidate):
        line = json.dumps(self._decide(candidates=[candidate]))
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code in ("bad-request", "unknown-field")
        # the diagnosis names the offending candidate or the missing field
        if excinfo.value.code == "bad-request":
            message = excinfo.value.message
            assert (
                "candidates[0]" in message
                or "missing required field" in message
            )


class TestApplyParsing:
    def test_insert_with_tag(self):
        request = parse_request(
            _line(
                op="apply", id=1, kind="insert", dest="mem:0x20",
                tag=["netflow", 3], tick=2, context="socket_read",
            )
        )
        assert isinstance(request, ApplyRequest)
        assert request.kind == "insert"
        assert request.tag == ("netflow", 3)
        assert request.sources == ()

    def test_copy_with_sources(self):
        request = parse_request(
            _line(op="apply", kind="copy", dest="mem:2", sources=["mem:1"])
        )
        assert request.sources == (("mem", 1),)

    @pytest.mark.parametrize(
        "overrides, code",
        [
            ({"kind": "teleport"}, "bad-request"),
            ({"dest": 9}, "bad-request"),
            ({"sources": "mem:1"}, "bad-request"),
            ({"sources": [3]}, "bad-request"),
            ({"tag": ["netflow"]}, "bad-request"),
            ({"tag": ["netflow", "one"]}, "bad-request"),
            ({"tag": ["netflow", True]}, "bad-request"),
            ({"extra": 1}, "unknown-field"),
        ],
    )
    def test_bad_apply_fields(self, overrides, code):
        payload = {"op": "apply", "kind": "copy", "dest": "mem:2"}
        payload.update(overrides)
        assert _code_of(json.dumps(payload)) == code

    def test_missing_dest(self):
        assert _code_of(_line(op="apply", kind="copy")) == "bad-request"


class TestFraming:
    def test_invalid_json(self):
        assert _code_of("{not json") == "bad-json"

    def test_non_object_request(self):
        assert _code_of('["decide"]') == "bad-request"

    def test_missing_op(self):
        assert _code_of(_line(id=1)) == "bad-request"

    def test_unknown_op(self):
        assert _code_of(_line(op="divine")) == "unknown-op"

    def test_oversized_frame(self):
        frame = b'{"op":"ping","pad":"' + b"x" * MAX_FRAME_BYTES + b'"}'
        assert _code_of(frame) == "frame-too-large"

    def test_non_utf8_bytes(self):
        assert _code_of(b'{"op": "ping\xff"}') == "bad-json"


class TestResponses:
    def test_encode_message_is_one_lf_line(self):
        frame = encode_message(ok_response(3, pong=True))
        assert frame.endswith(b"\n") and frame.count(b"\n") == 1
        assert json.loads(frame) == {"id": 3, "ok": True, "pong": True}

    def test_error_response_shape(self):
        payload = error_response(4, "overloaded", "queue full")
        assert payload == {
            "id": 4, "ok": False, "error": "overloaded",
            "message": "queue full",
        }

    def test_error_codes_are_closed(self):
        with pytest.raises(ValueError):
            error_response(1, "popcorn", "nope")
        with pytest.raises(ValueError):
            ProtocolError("popcorn", "nope")

    def test_floats_round_trip_exactly(self):
        # json round-trips IEEE doubles bit-exactly: the offline-parity
        # comparison relies on this
        value = -0.12345678901234567
        frame = encode_message(ok_response(1, marginal=value))
        assert json.loads(frame)["marginal"] == value
