"""Fused columnar decision-plane property tests.

``DecisionShard.decide_rows`` gathers every explicit row of a drain --
across requests and connections -- into one
:func:`repro.vector.kernel.decide_rows_batch` call;
``_decide_rows_scalar`` is the sequential per-row reference.  The
batching is only legal if it is *invisible*: same response bytes, same
post-batch tracker state, same checkpoint document, no matter where the
batch boundaries land or how connections interleave.  These tests
generate randomized request streams and require exactly that, for both
the exact-exponent kernel (beta = 2.0) and the memo tail (beta = 2.5),
and cross-check the binary frames field-for-field against the NDJSON
``decide`` path.
"""

import json
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import MitosParams
from repro.dift.snapshot import snapshot_tracker
from repro.faros.config import FarosConfig
from repro.serve.protocol import (
    S_LEN,
    decode_response_frame,
    parse_location,
    parse_request,
)
from repro.serve.shard import DecisionShard

TAG_TYPES = ("netflow", "file")
DESTS = ("mem:0x40", "mem:0x41", "mem:0x80", "reg:rax")
KINDS = ("address_dep", "control_dep")


def make_shard(params, columnar_min_cands=None, checkpoint_path=None):
    config = FarosConfig(params=params, policy="mitos", label="prop")
    shard = DecisionShard(
        0,
        params=params,
        policy_factory=config.build_policy,
        checkpoint_path=checkpoint_path,
    )
    if columnar_min_cands is not None:
        shard.columnar_min_cands = columnar_min_cands
    return shard


def build_rows(specs, conns):
    """Row tuples in the binary parser's shape, one conn per stream."""
    rows = []
    for rid, (conn_i, dest, control, free, pollution, cands) in enumerate(
        specs
    ):
        row_cands = tuple(
            (ti, TAG_TYPES[ti], index, copies) for ti, index, copies in cands
        )
        rows.append(
            (
                conns[conn_i], rid, parse_location(dest),
                1 if control else 0, rid, "prop", free, pollution, row_cands,
            )
        )
    return rows


def drive(shard, specs, bundles, fused):
    """Feed the stream through the shard in ``bundles``-sized drains."""
    conns = [SimpleNamespace(out=bytearray()) for _ in range(3)]
    rows = build_rows(specs, conns)
    start = 0
    turn = 0
    while start < len(rows):
        size = bundles[turn % len(bundles)]
        turn += 1
        batch = rows[start:start + size]
        start += size
        if fused:
            shard.decide_rows(batch)
        else:
            shard._decide_rows_scalar(batch)
    return [bytes(conn.out) for conn in conns]


def tracker_state(shard):
    return json.dumps(snapshot_tracker(shard.tracker), sort_keys=True)


def decode_frames(buffer):
    """Split one connection's output buffer into decoded response dicts."""
    responses = []
    pos = 0
    while pos < len(buffer):
        (length,) = S_LEN.unpack_from(buffer, pos)
        pos += S_LEN.size
        responses.append(
            decode_response_frame(buffer[pos:pos + length], TAG_TYPES)
        )
        pos += length
    return responses


# one row: (connection, destination, control-dep?, free_slots,
#           pollution-or-None, [(type index, tag index, copies-or-None)])
candidates = st.lists(
    st.tuples(
        st.integers(0, len(TAG_TYPES) - 1),
        st.integers(1, 5),
        st.one_of(st.none(), st.integers(0, 8)),
    ),
    max_size=6,
)
row_specs = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.sampled_from(DESTS),
        st.booleans(),
        st.integers(0, 4),
        st.one_of(
            st.none(),
            st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
        ),
        candidates,
    ),
    min_size=1,
    max_size=40,
)
bundle_specs = st.lists(st.integers(1, 7), min_size=1, max_size=8)


class TestFusedEqualsSequential:
    """The tentpole invariant: batching is bit-invisible."""

    @pytest.mark.parametrize("beta", [2.0, 2.5])
    @settings(max_examples=30, deadline=None)
    @given(specs=row_specs, bundles=bundle_specs)
    def test_bytes_and_state_identical(self, beta, specs, bundles):
        params = MitosParams(beta=beta)
        fused = make_shard(params, columnar_min_cands=0)
        scalar = make_shard(params)
        fused_out = drive(fused, specs, bundles, fused=True)
        scalar_out = drive(scalar, specs, bundles, fused=False)
        assert fused_out == scalar_out
        assert tracker_state(fused) == tracker_state(scalar)
        assert (
            fused.tracker.stats.to_payload()
            == scalar.tracker.stats.to_payload()
        )
        assert fused.requests_applied == scalar.requests_applied
        assert fused.decisions_served == scalar.decisions_served

    @settings(max_examples=15, deadline=None)
    @given(specs=row_specs, bundles=bundle_specs)
    def test_batch_boundaries_never_matter(self, specs, bundles):
        # same fused path, two different drain partitions: one request
        # per drain vs the drawn bundle sizes
        params = MitosParams()
        one_by_one = make_shard(params, columnar_min_cands=0)
        bundled = make_shard(params, columnar_min_cands=0)
        single = drive(one_by_one, specs, [1], fused=True)
        batched = drive(bundled, specs, bundles, fused=True)
        assert single == batched
        assert tracker_state(one_by_one) == tracker_state(bundled)

    @settings(max_examples=15, deadline=None)
    @given(specs=row_specs, bundles=bundle_specs)
    def test_checkpoints_identical_across_partitions(
        self, tmp_path_factory, specs, bundles
    ):
        tmp_path = tmp_path_factory.mktemp("ckpt")
        params = MitosParams()
        fused = make_shard(
            params,
            columnar_min_cands=0,
            checkpoint_path=tmp_path / "fused.json",
        )
        scalar = make_shard(
            params, checkpoint_path=tmp_path / "scalar.json"
        )
        # a cadence that lands mid-drain for most drawn bundle sizes
        fused.checkpoint_every = 3
        scalar.checkpoint_every = 3
        drive(fused, specs, bundles, fused=True)
        drive(scalar, specs, bundles, fused=False)
        assert fused.checkpoints_written == scalar.checkpoints_written
        if fused.checkpoints_written:
            assert (
                (tmp_path / "fused.json").read_text()
                == (tmp_path / "scalar.json").read_text()
            )


class TestFormatParity:
    """Binary fused frames decode to the NDJSON path's exact response."""

    @settings(max_examples=15, deadline=None)
    @given(specs=row_specs, bundles=bundle_specs)
    def test_fused_frames_match_ndjson_decide(self, specs, bundles):
        params = MitosParams()
        fused = make_shard(params, columnar_min_cands=0)
        ndjson = make_shard(params)
        fused_out = drive(fused, specs, bundles, fused=True)
        decoded = {}
        for buffer in fused_out:
            for response in decode_frames(buffer):
                decoded[response["id"]] = response
        for rid, (_, dest, control, free, pollution, cands) in enumerate(
            specs
        ):
            payload = {
                "op": "decide",
                "id": rid,
                "dest": dest,
                "kind": KINDS[1 if control else 0],
                "tick": rid,
                "context": "prop",
                "free_slots": free,
                "pollution": pollution,
                "candidates": [
                    {"type": TAG_TYPES[ti], "index": index}
                    if copies is None
                    else {
                        "type": TAG_TYPES[ti],
                        "index": index,
                        "copies": copies,
                    }
                    for ti, index, copies in cands
                ],
            }
            response = ndjson.decide(parse_request(json.dumps(payload)))
            got = decoded[rid]
            assert got["propagated"] == response["propagated"]
            assert got["decisions"] == response["decisions"]
        assert tracker_state(fused) == tracker_state(ndjson)


class TestScalarRouting:
    """Rows the kernel cannot batch run per-row at their drain position."""

    def _specs(self):
        return [
            (0, "mem:0x40", False, 2, 10.0, [(0, 1, 4), (1, 2, 1)]),
            # stateful: pollution read from the live tracker
            (1, "mem:0x41", True, 2, None, [(0, 1, None)]),
            (0, "mem:0x40", False, 1, 3.5, [(0, 3, 0), (1, 2, 2)]),
        ]

    def test_mixed_drain_matches_reference(self):
        params = MitosParams()
        fused = make_shard(params, columnar_min_cands=0)
        scalar = make_shard(params)
        assert drive(fused, self._specs(), [3], fused=True) == drive(
            scalar, self._specs(), [3], fused=False
        )
        assert tracker_state(fused) == tracker_state(scalar)

    def test_invalid_tag_index_bails_wholesale(self):
        # tag index 0 is invalid on the wire; the fused scan must hand
        # the whole drain to the scalar path, which answers that row
        # with the structured bad-request error and the rest normally
        specs = self._specs() + [(2, "mem:0x80", False, 2, 1.0, [(0, 0, 1)])]
        params = MitosParams()
        fused = make_shard(params, columnar_min_cands=0)
        scalar = make_shard(params)
        assert drive(fused, specs, [4], fused=True) == drive(
            scalar, specs, [4], fused=False
        )
        assert tracker_state(fused) == tracker_state(scalar)

    def test_small_drains_skip_the_kernel(self, monkeypatch):
        params = MitosParams()
        shard = make_shard(params)  # default columnar_min_cands = 48
        calls = []
        original = DecisionShard._decide_rows_scalar
        monkeypatch.setattr(
            DecisionShard,
            "_decide_rows_scalar",
            lambda self, rows: calls.append(len(rows))
            or original(self, rows),
        )
        drive(shard, self._specs(), [3], fused=False)
        calls.clear()
        drive(shard, self._specs(), [3], fused=True)
        # 5 explicit candidates < 48: the whole drain went sequential
        assert calls == [3]
