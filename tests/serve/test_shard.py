"""DecisionShard unit tests: explicit/stateful modes, checkpoints.

The load generator pins the end-to-end offline-equivalence story; these
tests pin the shard in isolation -- the decision a shard serves for an
explicit-mode request must be field-for-field the decision the offline
scalar code makes from the same inputs, and a checkpointed shard must
restore to byte-identical tracker state.
"""

import json

import pytest

from repro.core.decision import TagCandidate, decide_multi
from repro.core.params import MitosParams
from repro.dift.snapshot import snapshot_tracker
from repro.dift.tags import Tag
from repro.faros.config import FarosConfig
from repro.serve.protocol import ProtocolError, parse_request
from repro.serve.shard import DecisionShard, shard_error

PARAMS = MitosParams()


def make_shard(index=0, checkpoint_path=None, observer=None):
    config = FarosConfig(params=PARAMS, policy="mitos", label="test")
    return DecisionShard(
        index,
        params=PARAMS,
        policy_factory=config.build_policy,
        checkpoint_path=checkpoint_path,
        ifp_observer=observer,
    )


def decide_line(**overrides):
    payload = {
        "op": "decide",
        "id": 1,
        "dest": "mem:0x40",
        "kind": "address_dep",
        "free_slots": 2,
        "pollution": 10.0,
        "candidates": [
            {"type": "netflow", "index": 1, "copies": 4},
            {"type": "file", "index": 2, "copies": 1},
            {"type": "netflow", "index": 3, "copies": 0},
        ],
    }
    payload.update(overrides)
    return json.dumps(payload)


def apply_line(**overrides):
    payload = {"op": "apply", "kind": "insert", "dest": "mem:0x1",
               "tag": ["netflow", 1]}
    payload.update(overrides)
    return json.dumps(payload)


class TestExplicitMode:
    def test_matches_offline_decide_multi(self):
        shard = make_shard()
        response = shard.decide(parse_request(decide_line()))
        offline = decide_multi(
            [
                TagCandidate(Tag("netflow", 1), "netflow", 4),
                TagCandidate(Tag("file", 2), "file", 1),
                TagCandidate(Tag("netflow", 3), "netflow", 0),
            ],
            free_slots=2,
            pollution=10.0,
            params=PARAMS,
        )
        assert response["ok"] is True and response["shard"] == 0
        assert len(response["decisions"]) == 3
        for row, decision in zip(response["decisions"], offline.decisions):
            tag = decision.candidate.key
            assert row["tag"] == f"{tag.type}:{tag.index}"
            assert row["copies"] == decision.candidate.copies
            assert row["marginal"] == decision.marginal
            assert row["under"] == decision.under_marginal
            assert row["over"] == decision.over_marginal
            assert row["propagate"] == decision.propagate
        assert response["propagated"] == [
            f"{d.candidate.key.type}:{d.candidate.key.index}"
            for d in offline.decisions
            if d.propagate
        ]

    def test_free_slots_cap_respected(self):
        shard = make_shard()
        response = shard.decide(
            parse_request(decide_line(free_slots=1))
        )
        assert len(response["propagated"]) <= 1

    def test_zero_copy_candidate_ranks_first(self):
        # under_marginal(0) is -inf: blocking a tag with no copies left
        # loses its whole provenance, so it always propagates first
        shard = make_shard()
        response = shard.decide(parse_request(decide_line()))
        first = response["decisions"][0]
        assert first["tag"] == "netflow:3" and first["copies"] == 0
        assert first["under"] == float("-inf")
        assert first["propagate"] is True

    def test_empty_candidates(self):
        shard = make_shard()
        response = shard.decide(parse_request(decide_line(candidates=[])))
        assert response["propagated"] == [] and response["decisions"] == []

    def test_granted_propagations_update_shard_state(self):
        shard = make_shard()
        before = shard.tracker.shadow.tainted_count()
        response = shard.decide(parse_request(decide_line()))
        assert len(response["propagated"]) > 0
        assert shard.tracker.shadow.tainted_count() > before
        assert shard.decisions_served == 1
        assert shard.requests_applied == 1


class TestStatefulMode:
    def test_copies_filled_from_live_tracker(self):
        shard = make_shard()
        # three taints of netflow:1 -> its live copy count is 3
        for address in ("mem:0x1", "mem:0x2", "mem:0x3"):
            shard.apply(parse_request(apply_line(dest=address)))
        request = parse_request(
            decide_line(
                pollution=None,
                candidates=[{"type": "netflow", "index": 1}],
            )
        )
        response = shard.decide(request)
        (row,) = response["decisions"]
        assert row["copies"] == 3

    def test_unknown_tag_counts_zero_copies(self):
        shard = make_shard()
        response = shard.decide(
            parse_request(
                decide_line(
                    pollution=None,
                    candidates=[{"type": "netflow", "index": 42}],
                )
            )
        )
        assert response["decisions"][0]["copies"] == 0

    def test_successive_decides_observe_propagations(self):
        shard = make_shard()
        shard.apply(parse_request(apply_line()))
        stateful = {
            "pollution": None,
            "candidates": [{"type": "netflow", "index": 1}],
        }
        first = shard.decide(parse_request(decide_line(**stateful)))
        second = shard.decide(parse_request(decide_line(**stateful)))
        if first["propagated"]:
            # the grant raised netflow:1's copy count for the next request
            assert (
                second["decisions"][0]["copies"]
                > first["decisions"][0]["copies"]
            )

    def test_apply_rejects_invalid_tag(self):
        shard = make_shard()
        with pytest.raises(ProtocolError) as excinfo:
            shard.apply(parse_request(apply_line(tag=["netflow", 0])))
        assert excinfo.value.code == "bad-request"

    def test_shard_error_shape(self):
        error = ProtocolError("bad-request", "nope")
        assert shard_error(7, error) == {
            "id": 7, "ok": False, "error": "bad-request", "message": "nope",
        }


class TestCheckpointRestore:
    def _drive(self, shard):
        for i in range(1, 6):
            shard.apply(parse_request(apply_line(dest=f"mem:{i:#x}")))
        shard.decide(parse_request(decide_line()))
        shard.decide(
            parse_request(
                decide_line(
                    dest="mem:0x80",
                    pollution=None,
                    candidates=[{"type": "netflow", "index": 1}],
                )
            )
        )

    def test_restore_is_byte_identical(self, tmp_path):
        path = tmp_path / "shard-0.ckpt.json"
        original = make_shard(checkpoint_path=path)
        self._drive(original)
        original.write_checkpoint()
        assert original.checkpoints_written == 1

        restored = make_shard(checkpoint_path=path)
        assert restored.restore() is True
        assert restored.requests_applied == original.requests_applied
        assert json.dumps(
            snapshot_tracker(restored.tracker), sort_keys=True
        ) == json.dumps(snapshot_tracker(original.tracker), sort_keys=True)
        assert (
            restored.tracker.stats.to_payload()
            == original.tracker.stats.to_payload()
        )

    def test_restored_shard_decides_identically(self, tmp_path):
        path = tmp_path / "shard-0.ckpt.json"
        original = make_shard(checkpoint_path=path)
        self._drive(original)
        original.write_checkpoint()
        restored = make_shard(checkpoint_path=path)
        restored.restore()
        probe = decide_line(
            dest="mem:0x90",
            pollution=None,
            candidates=[{"type": "netflow", "index": 1}],
        )
        assert original.decide(parse_request(probe)) == restored.decide(
            parse_request(probe)
        )

    def test_restore_without_file_is_noop(self, tmp_path):
        shard = make_shard(checkpoint_path=tmp_path / "missing.json")
        assert shard.restore() is False
        assert shard.requests_applied == 0

    def test_checkpoint_without_path_refused(self):
        shard = make_shard()
        with pytest.raises(ProtocolError) as excinfo:
            shard.write_checkpoint()
        assert excinfo.value.code == "bad-request"

    def test_periodic_checkpoint_cadence(self, tmp_path):
        path = tmp_path / "shard-0.ckpt.json"
        shard = make_shard(checkpoint_path=path)
        shard.checkpoint_every = 3
        for i in range(1, 7):
            shard.apply(parse_request(apply_line(dest=f"mem:{i:#x}")))
        # requests 3 and 6 hit the cadence
        assert shard.checkpoints_written == 2
        assert path.exists()


class TestIntrospection:
    def test_stats_payload_keys(self):
        shard = make_shard(index=3)
        shard.decide(parse_request(decide_line()))
        payload = shard.stats_payload()
        assert payload["shard"] == 3
        assert payload["requests_applied"] == 1
        assert payload["decisions_served"] == 1
        assert payload["pollution"] == shard.tracker.pollution()
        assert "tracker" in payload and "live_tags" in payload

    def test_observer_sees_served_decisions(self):
        seen = []

        def observer(event, candidates, details, selected, pollution):
            seen.append((event.kind.value, len(candidates), pollution))

        shard = make_shard(observer=observer)
        shard.decide(parse_request(decide_line()))
        assert seen == [("address_dep", 3, 10.0)]


class TestGossipBeliefs:
    def test_believed_pollution_sums_local_and_peers(self):
        shard = make_shard()
        local = shard.tracker.pollution()
        assert shard.believed_pollution() == local
        shard.receive_gossip(1, 4.0)
        shard.receive_gossip(2, 2.5)
        assert shard.believed_pollution() == local + 6.5

    def test_last_write_wins_per_peer(self):
        shard = make_shard()
        shard.receive_gossip(1, 4.0)
        shard.receive_gossip(1, 1.0)
        assert shard.peer_pollution == {1: 1.0}

    def test_stats_payload_reports_beliefs(self):
        shard = make_shard()
        shard.receive_gossip(5, 3.0)
        payload = shard.stats_payload()
        assert payload["peer_beliefs"] == 1
        assert payload["believed_pollution"] == pytest.approx(
            payload["pollution"] + 3.0
        )

    def test_stateful_decide_uses_believed_pollution(self):
        # two identical shards; one believes a peer carries pollution --
        # the explicit-pollution request must ignore the belief, the
        # stateful request must consult it
        isolated = make_shard()
        believing = make_shard()
        believing.receive_gossip(1, 50.0)
        explicit = decide_line()
        assert isolated.decide(parse_request(explicit)) == believing.decide(
            parse_request(decide_line())
        )
        stateful = dict(
            json.loads(decide_line()), pollution=None, id=2
        )
        isolated_response = isolated.decide(
            parse_request(json.dumps(stateful))
        )
        believing_response = believing.decide(
            parse_request(json.dumps(stateful))
        )
        # the belief shifts the Eq. 8 pollution term, so the marginals
        # must differ (decisions may or may not flip)
        assert isolated_response != believing_response

    def test_beliefs_not_checkpointed(self, tmp_path):
        path = tmp_path / "shard.ckpt.json"
        shard = make_shard(checkpoint_path=path)
        shard.receive_gossip(1, 9.0)
        shard.decide(parse_request(decide_line()))
        shard.write_checkpoint()
        restored = make_shard(checkpoint_path=path)
        assert restored.restore() is True
        assert restored.peer_pollution == {}


class TestRestoreFallback:
    def _checkpoint_twice(self, path):
        shard = make_shard(checkpoint_path=path)
        shard.decide(parse_request(decide_line(dest="mem:0x10")))
        shard.write_checkpoint()
        shard.decide(parse_request(decide_line(dest="mem:0x20", id=2)))
        shard.write_checkpoint()
        return shard

    def test_corrupt_latest_falls_back_to_prev(self, tmp_path):
        path = tmp_path / "shard.ckpt.json"
        self._checkpoint_twice(path)
        path.write_text('{"torn')  # the crash landed mid-write
        restored = make_shard(checkpoint_path=path)
        assert restored.restore() is True
        # the .prev file carries the state as of the first checkpoint
        assert restored.requests_applied == 1
        fallback = restored.restore_fallback
        assert fallback is not None
        assert fallback.path == path

    def test_intact_latest_wins_and_keeps_no_fallback(self, tmp_path):
        path = tmp_path / "shard.ckpt.json"
        self._checkpoint_twice(path)
        restored = make_shard(checkpoint_path=path)
        assert restored.restore() is True
        assert restored.requests_applied == 2
        assert restored.restore_fallback is None

    def test_both_damaged_starts_fresh(self, tmp_path):
        from repro.replay.checkpoint import previous_checkpoint_path

        path = tmp_path / "shard.ckpt.json"
        self._checkpoint_twice(path)
        path.write_text("not json")
        previous_checkpoint_path(path).write_text("also not json")
        restored = make_shard(checkpoint_path=path)
        assert restored.restore() is False
        assert restored.requests_applied == 0
        assert restored.restore_fallback is not None
