"""Multi-process load generation: merged accounting, agreement, trend.

``run_load_processes`` is the multi-core face of the load generator --
one worker process per target, a barrier before any clock starts, and
``sum(requests) / max(elapsed)`` as the honest aggregate.  These tests
drive miniature fleets (two workers against one in-process server) and
pin the merge arithmetic, the per-worker parity reporting, the live
oracle-agreement tally, and the ``results/bench_trend.jsonl`` appender.
"""

import json

import pytest

from repro.serve.loadgen import (
    LoadResult,
    append_bench_trend,
    collect_offline_decisions,
    observe_agreement,
    run_load,
    run_load_processes,
)
from repro.serve.server import ServerThread

from tests.serve.test_loadgen import ifp_recording


@pytest.fixture(scope="module")
def offline():
    from repro.experiments.common import experiment_params

    return collect_offline_decisions(
        ifp_recording(), experiment_params(quick=True)
    )


def serve_options(shards=1):
    from repro.options import ServeOptions

    return ServeOptions(port=0, shards=shards, quick_calibration=True)


class TestObserveAgreement:
    def _expected(self):
        return {
            "decisions": [
                {"tag": "netflow:1", "propagate": True},
                {"tag": "file:2", "propagate": False},
            ]
        }

    def test_perfect_agreement(self):
        assert observe_agreement(self._expected(), self._expected()) == (2, 2)

    def test_flipped_bit_counts_against(self):
        response = {
            "decisions": [
                {"tag": "netflow:1", "propagate": False},
                {"tag": "file:2", "propagate": False},
            ]
        }
        assert observe_agreement(self._expected(), response) == (1, 2)

    def test_missing_tag_agrees_only_with_block(self):
        # an absent row reads as propagate=False: it agrees with an
        # oracle block and disagrees with an oracle propagate
        assert observe_agreement(self._expected(), {"decisions": []}) == (
            1,
            2,
        )

    def test_empty_expectation_is_vacuous(self):
        assert observe_agreement({}, {"decisions": []}) == (0, 0)


class TestAgreementAccounting:
    def test_run_load_tallies_agreement(self, offline):
        with ServerThread(serve_options()) as thread:
            result = run_load(
                thread.host, thread.port, offline, window=8
            )
        assert result.matched
        candidates = sum(
            len(d.expected["decisions"]) for d in offline
        )
        assert result.agreement_total == candidates
        assert result.agreement_hits == candidates
        assert result.agreement == 1.0
        assert result.summary()["agreement"] == 1.0
        assert result.summary()["agreement_candidates"] == candidates

    def test_empty_result_agreement_is_vacuously_one(self):
        assert LoadResult().agreement == 1.0


class TestRunLoadProcesses:
    def test_rejects_empty_targets(self):
        with pytest.raises(ValueError):
            run_load_processes([])

    @pytest.mark.parametrize("wire_format", ["ndjson", "binary"])
    def test_two_workers_one_server(self, offline, wire_format):
        slices = [offline[0::2], offline[1::2]]
        with ServerThread(serve_options(shards=2)) as thread:
            merged, per_worker = run_load_processes(
                [
                    (thread.host, thread.port, slices[0]),
                    (thread.host, thread.port, slices[1]),
                ],
                wire_format=wire_format,
                window=4,
            )
        assert merged.requests == len(offline)
        assert merged.matched
        assert merged.agreement == 1.0
        assert len(merged.latencies_us) == len(offline)
        # aggregate rate is sum(requests) / slowest window: it can never
        # exceed the sum of the per-worker rates
        assert merged.decisions_per_second <= sum(
            report["decisions_per_second"] for report in per_worker
        ) * (1.0 + 1e-9)
        assert [report["worker"] for report in per_worker] == [0, 1]
        for report, expect in zip(per_worker, slices):
            assert report["requests"] == len(expect)
            assert report["matched"] is True

    def test_worker_mismatches_surface_in_merge(self, offline):
        import copy

        tampered = copy.deepcopy(list(offline))
        tampered[1].expected["propagated"] = ["netflow:999"]
        with ServerThread(serve_options()) as thread:
            merged, per_worker = run_load_processes(
                [
                    (thread.host, thread.port, tampered[0::2]),
                    (thread.host, thread.port, tampered[1::2]),
                ],
                window=4,
            )
        assert not merged.matched
        assert per_worker[1]["matched"] is False
        assert per_worker[0]["matched"] is True

    def test_worker_failure_raises(self, offline):
        # port 1 refuses connections: the worker must abort the barrier
        # and the parent must surface the failure instead of hanging
        with pytest.raises(RuntimeError, match="worker"):
            run_load_processes(
                [("127.0.0.1", 1, offline[:2])], window=2
            )

    def test_open_loop_widens_the_window(self, offline):
        with ServerThread(serve_options()) as thread:
            merged, _ = run_load_processes(
                [(thread.host, thread.port, offline)],
                window=1,
                open_loop=True,
            )
        assert merged.matched and merged.requests == len(offline)


class TestBenchTrend:
    def test_appends_jsonl_records(self, tmp_path):
        path = tmp_path / "results" / "bench_trend.jsonl"
        append_bench_trend(path, {"benchmark": "serve", "dps": 1.0})
        append_bench_trend(path, {"benchmark": "scale", "dps": 2.0})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["benchmark"] for line in lines] == [
            "serve",
            "scale",
        ]

    def test_records_are_sorted_and_self_describing(self, tmp_path):
        path = tmp_path / "trend.jsonl"
        append_bench_trend(path, {"b": 1, "a": 2})
        assert path.read_text() == '{"a": 2, "b": 1}\n'
