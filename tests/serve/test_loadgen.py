"""Load-generator tests: offline capture, closed-loop parity, reporting.

These are the miniature versions of what ``mitos-repro bench-serve``
runs over the full network recording: capture the offline replay's IFP
decisions, replay them against a live server, and require every served
decision to match field-for-field -- at one shard and at several
(explicit-mode requests are pure functions of their payload, so the
parity is shard-count independent).
"""

import json

import pytest

from repro.core.params import MitosParams
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.options import ServeOptions
from repro.replay.record import Recording
from repro.serve.loadgen import (
    LoadResult,
    Mismatch,
    collect_offline_decisions,
    run_load,
    stateful_stream,
    write_bench_report,
)
from repro.serve.server import ServerThread

PARAMS = MitosParams()


def ifp_recording() -> Recording:
    """A small recording with enough indirect flows to exercise routing."""
    events = []
    for i in range(4):
        events.append(
            flows.insert(
                mem(i), Tag("netflow", i + 1), tick=i, context="socket_read"
            )
        )
    events.append(flows.insert(mem(4), Tag("file", 9), tick=4))
    tick = 5
    for round_index in range(6):
        source = mem(round_index % 5)
        events.append(
            flows.address_dep(
                source, mem(10 + round_index), tick=tick,
                context="table_lookup",
            )
        )
        events.append(
            flows.control_dep(
                (source, mem((round_index + 1) % 5)),
                mem(20 + round_index),
                tick=tick + 1,
            )
        )
        events.append(
            flows.copy(mem(10 + round_index), mem(30 + round_index), tick=tick + 2)
        )
        tick += 3
    return Recording(events=events, meta={"name": "ifp-mini"})


class TestCollectOfflineDecisions:
    def test_captures_every_indirect_flow(self):
        decisions = collect_offline_decisions(ifp_recording(), PARAMS)
        assert len(decisions) == 12  # 6 address_dep + 6 control_dep
        for decision in decisions:
            request = decision.request
            assert request["op"] == "decide"
            assert request["kind"] in ("address_dep", "control_dep")
            # explicit mode: state travels with the request
            assert "pollution" in request
            assert all("copies" in c for c in request["candidates"])
            assert set(decision.expected) == {"propagated", "decisions"}

    def test_limit_truncates_the_replay(self):
        full = collect_offline_decisions(ifp_recording(), PARAMS)
        limited = collect_offline_decisions(ifp_recording(), PARAMS, limit=7)
        assert 0 < len(limited) < len(full)

    def test_requests_are_json_serializable(self):
        for decision in collect_offline_decisions(ifp_recording(), PARAMS):
            json.dumps(decision.request)


class TestStatefulStream:
    def test_every_event_becomes_one_apply(self):
        recording = ifp_recording()
        requests = stateful_stream(recording)
        assert len(requests) == len(recording.events)
        assert all(r["op"] == "apply" for r in requests)

    def test_tags_and_sources_travel(self):
        requests = stateful_stream(ifp_recording())
        inserts = [r for r in requests if r["kind"] == "insert"]
        assert inserts[0]["tag"] == ["netflow", 1]
        deps = [r for r in requests if r["kind"] == "address_dep"]
        assert all("sources" in r for r in deps)


class TestClosedLoopParity:
    @pytest.fixture(scope="class")
    def offline(self):
        # the server calibrates its params via experiment_params, so the
        # offline capture must use the identical calibration (this is
        # exactly what ``mitos-repro bench-serve --quick`` does)
        from repro.experiments.common import experiment_params

        params = experiment_params(quick=True)
        return collect_offline_decisions(ifp_recording(), params)

    def _serve_options(self, shards):
        return ServeOptions(port=0, shards=shards, quick_calibration=True)

    @pytest.mark.parametrize("shards", [1, 2])
    def test_parity_at_any_shard_count(self, offline, shards):
        with ServerThread(self._serve_options(shards)) as thread:
            result = run_load(
                thread.host, thread.port, offline, connections=1, window=8
            )
        assert result.requests == len(offline)
        assert result.errors == 0
        assert result.mismatches == []
        assert result.matched
        assert len(result.latencies_us) == len(offline)
        assert result.decisions_per_second > 0

    def test_parity_with_multiple_connections(self, offline):
        with ServerThread(self._serve_options(2)) as thread:
            result = run_load(
                thread.host, thread.port, offline, connections=2, window=4
            )
        assert result.matched and result.requests == len(offline)

    def test_tampered_expectation_is_caught(self, offline):
        import copy

        tampered = copy.deepcopy(offline)
        tampered[3].expected["propagated"] = ["netflow:999"]
        with ServerThread(self._serve_options(1)) as thread:
            result = run_load(thread.host, thread.port, tampered, window=4)
        assert not result.matched
        (mismatch,) = result.mismatches
        assert mismatch.index == 3
        assert mismatch.field_name == "propagated"
        assert mismatch.expected == ["netflow:999"]

    def test_rejects_zero_connections(self, offline):
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, offline, connections=0)


class TestLoadResult:
    def test_percentiles_and_throughput(self):
        result = LoadResult(
            requests=4,
            elapsed_seconds=2.0,
            latencies_us=[100.0, 200.0, 300.0, 400.0],
        )
        assert result.decisions_per_second == 2.0
        assert result.latency_percentile(0) == 100.0
        assert result.latency_percentile(100) == 400.0
        assert result.latency_percentile(50) in (200.0, 300.0)

    def test_empty_result_degrades_gracefully(self):
        result = LoadResult()
        assert result.decisions_per_second == 0.0
        assert result.latency_percentile(99) == 0.0
        assert result.matched  # vacuously: nothing mismatched

    def test_errors_break_matched(self):
        assert not LoadResult(requests=1, errors=1).matched
        assert not LoadResult(
            requests=1, mismatches=[Mismatch(0, "propagated", [], None)]
        ).matched


class TestBenchReport:
    def test_report_document(self, tmp_path):
        result = LoadResult(
            requests=10, elapsed_seconds=1.0, latencies_us=[50.0] * 10
        )
        path = write_bench_report(
            tmp_path / "BENCH_serve.json",
            result,
            shards=4,
            connections=2,
            window=64,
            recording_events=1000,
            extra={"quick": True},
        )
        report = json.loads(path.read_text())
        assert report["benchmark"] == "serve"
        assert report["shards"] == 4
        assert report["connections"] == 2
        assert report["window"] == 64
        assert report["recording_events"] == 1000
        assert report["requests"] == 10
        assert report["matched"] is True
        assert report["decisions_per_second"] == 10.0
        assert report["latency_us"]["p99"] == 50.0
        assert report["quick"] is True
