"""Load-generator tests: offline capture, closed-loop parity, reporting.

These are the miniature versions of what ``mitos-repro bench-serve``
runs over the full network recording: capture the offline replay's IFP
decisions, replay them against a live server, and require every served
decision to match field-for-field -- at one shard and at several
(explicit-mode requests are pure functions of their payload, so the
parity is shard-count independent).
"""

import json

import pytest

from repro.core.params import MitosParams
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.options import ServeOptions
from repro.replay.record import Recording
from repro.obs.metrics import SERVE_LATENCY_BUCKETS_US
from repro.serve.loadgen import (
    LoadResult,
    Mismatch,
    collect_offline_decisions,
    run_load,
    split_chunk_frames,
    split_chunk_lines,
    stateful_stream,
    write_bench_report,
)
from repro.serve.protocol import S_LEN
from repro.serve.server import ServerThread

PARAMS = MitosParams()


def ifp_recording() -> Recording:
    """A small recording with enough indirect flows to exercise routing."""
    events = []
    for i in range(4):
        events.append(
            flows.insert(
                mem(i), Tag("netflow", i + 1), tick=i, context="socket_read"
            )
        )
    events.append(flows.insert(mem(4), Tag("file", 9), tick=4))
    tick = 5
    for round_index in range(6):
        source = mem(round_index % 5)
        events.append(
            flows.address_dep(
                source, mem(10 + round_index), tick=tick,
                context="table_lookup",
            )
        )
        events.append(
            flows.control_dep(
                (source, mem((round_index + 1) % 5)),
                mem(20 + round_index),
                tick=tick + 1,
            )
        )
        events.append(
            flows.copy(mem(10 + round_index), mem(30 + round_index), tick=tick + 2)
        )
        tick += 3
    return Recording(events=events, meta={"name": "ifp-mini"})


class TestCollectOfflineDecisions:
    def test_captures_every_indirect_flow(self):
        decisions = collect_offline_decisions(ifp_recording(), PARAMS)
        assert len(decisions) == 12  # 6 address_dep + 6 control_dep
        for decision in decisions:
            request = decision.request
            assert request["op"] == "decide"
            assert request["kind"] in ("address_dep", "control_dep")
            # explicit mode: state travels with the request
            assert "pollution" in request
            assert all("copies" in c for c in request["candidates"])
            assert set(decision.expected) == {"propagated", "decisions"}

    def test_limit_truncates_the_replay(self):
        full = collect_offline_decisions(ifp_recording(), PARAMS)
        limited = collect_offline_decisions(ifp_recording(), PARAMS, limit=7)
        assert 0 < len(limited) < len(full)

    def test_requests_are_json_serializable(self):
        for decision in collect_offline_decisions(ifp_recording(), PARAMS):
            json.dumps(decision.request)


class TestStatefulStream:
    def test_every_event_becomes_one_apply(self):
        recording = ifp_recording()
        requests = stateful_stream(recording)
        assert len(requests) == len(recording.events)
        assert all(r["op"] == "apply" for r in requests)

    def test_tags_and_sources_travel(self):
        requests = stateful_stream(ifp_recording())
        inserts = [r for r in requests if r["kind"] == "insert"]
        assert inserts[0]["tag"] == ["netflow", 1]
        deps = [r for r in requests if r["kind"] == "address_dep"]
        assert all("sources" in r for r in deps)


class TestClosedLoopParity:
    @pytest.fixture(scope="class")
    def offline(self):
        # the server calibrates its params via experiment_params, so the
        # offline capture must use the identical calibration (this is
        # exactly what ``mitos-repro bench-serve --quick`` does)
        from repro.experiments.common import experiment_params

        params = experiment_params(quick=True)
        return collect_offline_decisions(ifp_recording(), params)

    def _serve_options(self, shards):
        return ServeOptions(port=0, shards=shards, quick_calibration=True)

    @pytest.mark.parametrize("shards", [1, 2])
    def test_parity_at_any_shard_count(self, offline, shards):
        with ServerThread(self._serve_options(shards)) as thread:
            result = run_load(
                thread.host, thread.port, offline, connections=1, window=8
            )
        assert result.requests == len(offline)
        assert result.errors == 0
        assert result.mismatches == []
        assert result.matched
        assert len(result.latencies_us) == len(offline)
        assert result.decisions_per_second > 0

    def test_parity_with_multiple_connections(self, offline):
        with ServerThread(self._serve_options(2)) as thread:
            result = run_load(
                thread.host, thread.port, offline, connections=2, window=4
            )
        assert result.matched and result.requests == len(offline)

    def test_tampered_expectation_is_caught(self, offline):
        import copy

        tampered = copy.deepcopy(offline)
        tampered[3].expected["propagated"] = ["netflow:999"]
        with ServerThread(self._serve_options(1)) as thread:
            result = run_load(thread.host, thread.port, tampered, window=4)
        assert not result.matched
        (mismatch,) = result.mismatches
        assert mismatch.index == 3
        assert mismatch.field_name == "propagated"
        assert mismatch.expected == ["netflow:999"]

    def test_rejects_zero_connections(self, offline):
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, offline, connections=0)

    def test_rejects_unknown_wire_format(self, offline):
        with pytest.raises(ValueError):
            run_load(
                "127.0.0.1", 1, offline, wire_format="carrier-pigeon"
            )

    @pytest.mark.parametrize("shards", [1, 2])
    def test_binary_parity_at_any_shard_count(self, offline, shards):
        with ServerThread(self._serve_options(shards)) as thread:
            result = run_load(
                thread.host, thread.port, offline, connections=1,
                window=8, wire_format="binary",
            )
        assert result.requests == len(offline)
        assert result.errors == 0
        assert result.mismatches == []
        assert len(result.latencies_us) == len(offline)

    def test_binary_parity_with_multiple_connections(self, offline):
        with ServerThread(self._serve_options(2)) as thread:
            result = run_load(
                thread.host, thread.port, offline, connections=2,
                window=4, wire_format="binary",
            )
        assert result.matched and result.requests == len(offline)

    def test_binary_tampered_expectation_is_caught(self, offline):
        import copy

        tampered = copy.deepcopy(offline)
        tampered[3].expected["propagated"] = ["netflow:999"]
        with ServerThread(self._serve_options(1)) as thread:
            result = run_load(
                thread.host, thread.port, tampered, window=4,
                wire_format="binary",
            )
        assert not result.matched
        (mismatch,) = result.mismatches
        assert mismatch.index == 3 and mismatch.field_name == "propagated"


def frame(body: bytes) -> bytes:
    return S_LEN.pack(len(body)) + body


class TestChunkSplitTimestamps:
    """The receive loop stamps once per chunk, before the split loop --
    every frame a chunk completes carries that chunk's arrival time."""

    def test_lines_completed_by_one_chunk_share_its_timestamp(self):
        buffer = bytearray()
        out = []
        buffer += b"alpha\nbeta\ngam"
        assert split_chunk_lines(buffer, 1.0, out.append) == 2
        buffer += b"ma\n"
        assert split_chunk_lines(buffer, 2.0, out.append) == 1
        assert out == [(1.0, b"alpha"), (1.0, b"beta"), (2.0, b"gamma")]
        assert buffer == b""

    def test_line_split_across_chunks_gets_the_completing_time(self):
        buffer = bytearray(b"partial")
        out = []
        assert split_chunk_lines(buffer, 1.0, out.append) == 0
        assert buffer == b"partial"  # tail carried, untouched
        buffer += b" line\n"
        assert split_chunk_lines(buffer, 7.5, out.append) == 1
        assert out == [(7.5, b"partial line")]

    def test_frames_completed_by_one_chunk_share_its_timestamp(self):
        buffer = bytearray()
        out = []
        buffer += frame(b"one") + frame(b"two") + frame(b"three")[:5]
        assert split_chunk_frames(buffer, 3.0, out.append) == 2
        buffer += frame(b"three")[5:]
        assert split_chunk_frames(buffer, 4.0, out.append) == 1
        assert out == [(3.0, b"one"), (3.0, b"two"), (4.0, b"three")]
        assert buffer == b""

    def test_partial_length_prefix_carries_over(self):
        whole = frame(b"payload")
        buffer = bytearray(whole[:2])  # half a length prefix
        out = []
        assert split_chunk_frames(buffer, 1.0, out.append) == 0
        assert buffer == whole[:2]
        buffer += whole[2:]
        assert split_chunk_frames(buffer, 9.0, out.append) == 1
        assert out == [(9.0, b"payload")]


class TestLatencyHistogram:
    def test_counts_land_in_serve_buckets(self):
        buckets = [100.0, 1000.0]
        result = LoadResult(latencies_us=[50.0, 100.0, 999.0, 5000.0])
        histogram = result.latency_histogram(buckets)
        assert histogram["le_us"] == [100.0, 1000.0, "inf"]
        assert histogram["counts"] == [2, 1, 1]

    def test_default_buckets_are_the_server_metric_buckets(self):
        histogram = LoadResult(latencies_us=[1.0]).latency_histogram()
        assert histogram["le_us"][:-1] == list(SERVE_LATENCY_BUCKETS_US)
        assert sum(histogram["counts"]) == 1

    def test_summary_carries_the_histogram(self):
        summary = LoadResult(latencies_us=[10.0, 20.0]).summary()
        histogram = summary["latency_histogram_us"]
        assert sum(histogram["counts"]) == 2


class TestLoadResult:
    def test_percentiles_and_throughput(self):
        result = LoadResult(
            requests=4,
            elapsed_seconds=2.0,
            latencies_us=[100.0, 200.0, 300.0, 400.0],
        )
        assert result.decisions_per_second == 2.0
        assert result.latency_percentile(0) == 100.0
        assert result.latency_percentile(100) == 400.0
        assert result.latency_percentile(50) in (200.0, 300.0)

    def test_empty_result_degrades_gracefully(self):
        result = LoadResult()
        assert result.decisions_per_second == 0.0
        assert result.latency_percentile(99) == 0.0
        assert result.matched  # vacuously: nothing mismatched

    def test_errors_break_matched(self):
        assert not LoadResult(requests=1, errors=1).matched
        assert not LoadResult(
            requests=1, mismatches=[Mismatch(0, "propagated", [], None)]
        ).matched


class TestBenchReport:
    def test_report_document(self, tmp_path):
        result = LoadResult(
            requests=10, elapsed_seconds=1.0, latencies_us=[50.0] * 10
        )
        path = write_bench_report(
            tmp_path / "BENCH_serve.json",
            result,
            shards=4,
            connections=2,
            window=64,
            recording_events=1000,
            extra={"quick": True},
        )
        report = json.loads(path.read_text())
        assert report["benchmark"] == "serve"
        assert report["shards"] == 4
        assert report["connections"] == 2
        assert report["window"] == 64
        assert report["recording_events"] == 1000
        assert report["requests"] == 10
        assert report["matched"] is True
        assert report["decisions_per_second"] == 10.0
        assert report["latency_us"]["p99"] == 50.0
        assert report["quick"] is True
