"""End-to-end server tests: lifecycle, fuzzing, backpressure, crashes.

Live-socket tests run against a :class:`ServerThread` on an ephemeral
port.  The protocol's central robustness promise -- a malformed frame
produces a structured error response and never tears the connection
down -- is exercised over a real socket, as is the crash-and-resume
checkpoint equivalence the issue requires (a killed server restarted
from its checkpoints must converge to the same tracker state as one
that never died).
"""

import asyncio
import json

import pytest

from repro import api
from repro.options import ServeOptions
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.loadgen import stateful_stream
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_message,
)
from repro.serve.server import HashRing, MitosServer, ServerThread
from tests.replay.test_vector_engine import mixed_recording


def server_options(**overrides) -> ServeOptions:
    defaults = dict(port=0, quick_calibration=True)
    defaults.update(overrides)
    return ServeOptions(**defaults)


@pytest.fixture(scope="module")
def live_server():
    with ServerThread(server_options(shards=2)) as thread:
        yield thread


@pytest.fixture()
def client(live_server):
    with ServeClient(live_server.host, live_server.port) as c:
        yield c


class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        keys = [f"mem:{i:#x}" for i in range(200)]
        assert [a.shard_for(k) for k in keys] == [
            b.shard_for(k) for k in keys
        ]

    def test_every_shard_reachable(self):
        ring = HashRing(4)
        hit = {ring.shard_for(f"mem:{i:#x}") for i in range(500)}
        assert hit == {0, 1, 2, 3}

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashRing(0)


class TestControlPlane:
    def test_ping_reports_protocol_version(self, client):
        response = client.ping()
        assert response["pong"] is True
        assert response["version"] == PROTOCOL_VERSION

    def test_stats_counts_responses(self, client):
        before = client.stats()
        client.ping()
        after = client.stats()
        assert after["responses"] > before["responses"]
        assert after["version"] == PROTOCOL_VERSION
        assert len(after["shards"]) == 2
        assert after["draining"] is False

    def test_checkpoint_without_dir_is_structured_error(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.checkpoint()
        assert excinfo.value.code == "bad-request"


class TestServedDecisions:
    def test_explicit_decision_matches_offline_api(self, client):
        candidates = [("netflow", 1, 4), ("file", 2, 1)]
        served = client.decide(
            "mem:0x40", free_slots=2, candidates=candidates, pollution=20.0
        )
        offline = api.decide(
            candidates, free_slots=2, pollution=20.0,
            quick_calibration=True,
        )
        assert len(served["decisions"]) == len(offline.decisions)
        for row, decision in zip(served["decisions"], offline.decisions):
            assert row["marginal"] == decision.marginal
            assert row["under"] == decision.under_marginal
            assert row["over"] == decision.over_marginal
            assert row["propagate"] == decision.propagate

    def test_responses_matched_by_id_across_shards(self, client):
        # pipelined requests to destinations on different shards may
        # come back reordered; the client matches them by id
        ids = [
            client.submit(
                ServeClient.decide_payload(
                    f"mem:{0x1000 + i:#x}",
                    free_slots=1,
                    candidates=[("netflow", 1, 2)],
                    pollution=5.0,
                )
            )
            for i in range(16)
        ]
        for request_id in reversed(ids):
            response = client.collect(request_id)
            assert response["id"] == request_id and response["ok"] is True

    def test_apply_then_stateful_decide(self, client):
        client.apply("insert", "mem:0x7000", tag=("demo", 7))
        served = client.decide(
            "mem:0x7004", free_slots=1, candidates=[("demo", 7)]
        )
        assert served["decisions"][0]["copies"] >= 1


class TestProtocolFuzzOverWire:
    """Malformed frames produce structured errors; the connection and
    the server survive every one of them."""

    @pytest.mark.parametrize(
        "frame, code",
        [
            (b"this is not json\n", "bad-json"),
            (b'"just a string"\n', "bad-request"),
            (b'{"op": "divine"}\n', "unknown-op"),
            (b'{"op": "ping", "shard": 1}\n', "unknown-field"),
            (b'{"op": "decide", "dest": "mem:1"}\n', "bad-request"),
            (
                b'{"op": "decide", "dest": "mem:1", "free_slots": 1,'
                b' "candidates": [{"type": 5, "index": 1}]}\n',
                "bad-request",
            ),
        ],
    )
    def test_malformed_frames_get_structured_errors(
        self, client, frame, code
    ):
        response = client.raw_roundtrip(frame)
        assert response["ok"] is False and response["error"] == code
        # same connection still serves traffic
        assert client.ping()["pong"] is True

    def test_error_echoes_request_id_when_parseable(self, client):
        response = client.raw_roundtrip(b'{"id": 99, "op": "divine"}\n')
        assert response["id"] == 99 and response["error"] == "unknown-op"

    def test_oversized_frame_discarded_connection_survives(self, client):
        frame = (
            b'{"op": "ping", "pad": "' + b"x" * MAX_FRAME_BYTES + b'"}\n'
        )
        response = client.raw_roundtrip(frame)
        assert response["error"] == "frame-too-large"
        assert client.ping()["pong"] is True

    def test_blank_lines_ignored(self, client):
        response = client.raw_roundtrip(b"\n\n" + encode_message({"op": "ping"}))
        assert response["ok"] is True and response["pong"] is True

    def test_server_statistics_track_errors(self, client):
        before = client.stats()["errors"]
        client.raw_roundtrip(b"not json\n")
        assert client.stats()["errors"] > before


class _FakeWriter:
    """Collects frames the dispatcher writes; no real socket."""

    def __init__(self):
        self.frames = []

    def write(self, data: bytes) -> None:
        self.frames.append(data)

    async def drain(self) -> None:
        pass

    def responses(self):
        return [
            json.loads(line)
            for frame in self.frames
            for line in frame.splitlines()
        ]


def _run_dispatch(server, line, writer):
    followup = server._dispatch(line, writer)
    if followup is not None:
        asyncio.run(followup)


class TestBackpressure:
    """Deterministic unit-level checks of the dispatch fast path --
    bounded queues answer ``overloaded``, draining answers
    ``shutting-down`` -- without racing a live worker."""

    def _decide_line(self, dest="mem:0x10"):
        return json.dumps(
            {
                "id": 5, "op": "decide", "dest": dest, "free_slots": 1,
                "pollution": 1.0,
                "candidates": [{"type": "netflow", "index": 1, "copies": 2}],
            }
        ).encode()

    def test_full_queue_answers_overloaded(self):
        server = MitosServer(server_options(queue_depth=1))
        queue = asyncio.Queue(maxsize=1)
        queue.put_nowait(object())  # simulate a busy shard
        server._queues = [queue]
        writer = _FakeWriter()
        _run_dispatch(server, self._decide_line(), writer)
        (response,) = writer.responses()
        assert response["error"] == "overloaded"
        assert response["id"] == 5
        assert server.overloaded_total == 1

    def test_draining_server_answers_shutting_down(self):
        server = MitosServer(server_options())
        server._queues = [asyncio.Queue()]
        server._draining = True
        writer = _FakeWriter()
        _run_dispatch(server, self._decide_line(), writer)
        (response,) = writer.responses()
        assert response["error"] == "shutting-down"

    def test_accepted_request_queued_without_response(self):
        server = MitosServer(server_options())
        server._queues = [asyncio.Queue()]
        writer = _FakeWriter()
        followup = server._dispatch(self._decide_line(), writer)
        # happy path: queued for the shard worker, no coroutine created
        assert followup is None
        assert writer.frames == []
        assert server._queues[0].qsize() == 1


class TestAdminSurface:
    def test_routes(self):
        server = MitosServer(server_options(shards=2))
        status, body = server._admin_route("/healthz")
        assert status == 200 and body["ok"] is True and body["shards"] == 2
        status, body = server._admin_route("/stats")
        assert status == 200 and body["version"] == PROTOCOL_VERSION
        status, body = server._admin_route("/metrics")
        assert status == 200
        status, body = server._admin_route("/nope")
        assert status == 404 and body["error"] == "not-found"

    def test_admin_port_binds(self):
        import urllib.request

        with ServerThread(server_options(admin_port=0)) as thread:
            assert thread.admin_port is not None
            url = f"http://127.0.0.1:{thread.admin_port}/healthz"
            with urllib.request.urlopen(url, timeout=10) as response:
                body = json.loads(response.read())
            assert body["ok"] is True


class TestCrashAndResume:
    """Kill a server mid-load, restart from its checkpoints, finish the
    stream: the resumed server must converge to the same shard state as
    a server that processed the whole stream uninterrupted."""

    def _shard_state(self, stats):
        (shard,) = stats["shards"]
        # checkpoints_written differs by construction; everything the
        # policy can observe must match
        return {
            k: v for k, v in shard.items() if k != "checkpoints_written"
        }

    def test_checkpoint_restore_equivalence(self, tmp_path):
        requests = stateful_stream(mixed_recording())
        split = len(requests) // 2

        # control ops are handled on the connection loop and do NOT
        # wait for queued shard work, so collect every apply response
        # before checkpointing or reading stats
        def apply_all(c, payloads):
            for request_id in [c.submit(p) for p in payloads]:
                c.collect(request_id)

        # control: the whole stream, no crash
        with ServerThread(server_options()) as control:
            with ServeClient(control.host, control.port) as c:
                apply_all(c, requests)
                want = self._shard_state(c.stats())

        # crash run: half the stream, checkpoint, abort (no drain)
        ckpt = tmp_path / "ckpts"
        ckpt.mkdir()
        first = ServerThread(server_options(checkpoint_dir=ckpt)).start()
        try:
            with ServeClient(first.host, first.port) as c:
                apply_all(c, requests[:split])
                c.checkpoint()
        finally:
            first.abort()

        # resume run: restore the checkpoints, finish the stream
        second = ServerThread(
            server_options(checkpoint_dir=ckpt, resume=True)
        ).start()
        try:
            with ServeClient(second.host, second.port) as c:
                stats = c.stats()
                assert stats["restored_shards"] == 1
                apply_all(c, requests[split:])
                got = self._shard_state(c.stats())
        finally:
            second.stop()

        assert got == want

    def test_missing_checkpoint_dir_created_at_boot(self, tmp_path):
        # a --checkpoint-dir that does not exist yet must not crash the
        # first checkpoint (found live: FileNotFoundError killed the
        # connection); the server creates it at boot
        ckpt = tmp_path / "not" / "yet" / "there"
        with ServerThread(server_options(checkpoint_dir=ckpt)) as thread:
            with ServeClient(thread.host, thread.port) as c:
                response = c.checkpoint()
        assert ckpt.is_dir()
        assert len(response["checkpoints"]) == 1

    def test_graceful_stop_writes_final_checkpoints(self, tmp_path):
        ckpt = tmp_path / "ckpts"
        ckpt.mkdir()
        thread = ServerThread(server_options(checkpoint_dir=ckpt)).start()
        with ServeClient(thread.host, thread.port) as c:
            c.apply("insert", "mem:0x1", tag=("netflow", 1))
        thread.stop()
        assert (ckpt / "shard-0.ckpt.json").exists()

    def test_abort_skips_final_checkpoints(self, tmp_path):
        ckpt = tmp_path / "ckpts"
        ckpt.mkdir()
        thread = ServerThread(server_options(checkpoint_dir=ckpt)).start()
        with ServeClient(thread.host, thread.port) as c:
            c.apply("insert", "mem:0x1", tag=("netflow", 1))
        thread.abort()
        assert not (ckpt / "shard-0.ckpt.json").exists()


class TestObsByteIdentity:
    """Observability (and the canary) must never change a response byte.

    The replay stack's byte-identical-when-disabled guarantee extends to
    the serve path: the wire bytes a client reads are the same whether
    the server runs bare, with the full obs bundle, or with a canary
    mirroring 100% of traffic.  One shard keeps the pipelined response
    order deterministic.
    """

    def _response_bytes(self, options) -> bytes:
        import socket

        from repro.experiments.common import (
            experiment_params,
            network_recording,
        )
        from repro.serve.loadgen import collect_offline_decisions

        offline = collect_offline_decisions(
            network_recording(seed=0, quick=True),
            experiment_params(quick=True),
        )
        frames = b"".join(
            ServeClient.encode_with_id(decision.request, index)
            for index, decision in enumerate(offline)
        )
        obs = options.observability()
        with ServerThread(options, obs) as thread:
            with socket.create_connection(
                (thread.host, thread.port), timeout=30
            ) as sock:
                sock.sendall(frames)
                received = bytearray()
                while received.count(b"\n") < len(offline):
                    chunk = sock.recv(1 << 16)
                    if not chunk:
                        break
                    received += chunk
        return bytes(received)

    def test_obs_and_canary_responses_are_byte_identical(self):
        bare = self._response_bytes(server_options())
        observed = self._response_bytes(server_options(observe=True))
        canaried = self._response_bytes(
            server_options(
                observe=True, canary_fraction=1.0, canary_tau=0.05
            )
        )
        assert bare == observed
        assert bare == canaried

    def test_checkpoint_state_unchanged_by_observability(self, tmp_path):
        # the canary's shadow state must never leak into the primary's
        # persisted checkpoint
        payloads = stateful_stream(mixed_recording())

        def final_checkpoint(subdir, **extra):
            ckpt = tmp_path / subdir
            ckpt.mkdir()
            options = server_options(checkpoint_dir=ckpt, **extra)
            thread = ServerThread(
                options, options.observability()
            ).start()
            with ServeClient(thread.host, thread.port) as c:
                for request_id in [c.submit(p) for p in payloads]:
                    c.collect(request_id)
            thread.stop()
            return (ckpt / "shard-0.ckpt.json").read_text()

        bare = final_checkpoint("bare")
        observed = final_checkpoint("observed", observe=True)
        canaried = final_checkpoint(
            "canaried", observe=True, canary_fraction=1.0, canary_tau=0.05
        )
        assert bare == observed
        assert bare == canaried


class TestAllocationHygiene:
    """gc freeze/restore and the batch-deadline knob's validation."""

    def test_negative_batch_deadline_rejected(self):
        with pytest.raises(ValueError):
            ServeOptions(batch_deadline_us=-1.0)

    def test_gc_frozen_while_serving_and_restored_after(self):
        import gc

        before = gc.get_threshold()
        with ServerThread(server_options(gc_freeze=True)) as thread:
            assert gc.get_threshold() == (50000, 25, 25)
            assert gc.get_freeze_count() > 0
            with ServeClient(thread.host, thread.port) as c:
                assert c.ping()["pong"] is True
        assert gc.get_threshold() == before

    def test_gc_untouched_by_default(self):
        import gc

        frozen = gc.get_freeze_count()
        with ServerThread(server_options()):
            assert gc.get_freeze_count() == frozen

    @pytest.mark.parametrize("deadline_us", [0.0, 500.0])
    def test_deadline_controller_preserves_parity(self, deadline_us):
        # the adaptive drain window must be invisible to correctness:
        # pipelined traffic at any deadline yields the offline decisions
        from repro.experiments.common import experiment_params
        from repro.serve.loadgen import collect_offline_decisions, run_load
        from tests.serve.test_loadgen import ifp_recording

        offline = collect_offline_decisions(
            ifp_recording(), experiment_params(quick=True)
        )
        options = server_options(batch_deadline_us=deadline_us)
        with ServerThread(options) as thread:
            result = run_load(
                thread.host, thread.port, offline, window=8,
                wire_format="binary",
            )
        assert result.matched and result.requests == len(offline)
