"""Binary wire format tests: codec, negotiation, fuzzing, parity.

The binary framer's robustness promise mirrors the NDJSON one: any
malformed input -- truncated prefixes, oversized frames, unknown
versions, interleaved NDJSON, out-of-range table indices -- answers
with a structured ERROR frame and the connection keeps serving.  The
parity promise is stronger: a binary client replaying the identical
request sequence as an NDJSON client must receive field-for-field
identical responses *and* leave the server's shards in identical
checkpoint state (decides mutate shard state, so parity is checked
against fresh servers per format, never sequentially on one).
"""

import socket
import time

import pytest

from repro import api
from repro.options import ClusterOptions, ServeOptions
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import (
    CTX_NONE,
    MAX_FRAME_BYTES,
    ProtocolError,
    S_LEN,
    decode_response_frame,
    encode_decide_frame,
    encode_error_frame,
    encode_hello,
    encode_hello_ack,
    encode_preamble,
    split_frames,
)
from repro.serve.server import ServerThread


def server_options(**overrides) -> ServeOptions:
    defaults = dict(port=0, quick_calibration=True)
    defaults.update(overrides)
    return ServeOptions(**defaults)


@pytest.fixture(scope="module")
def live_server():
    with ServerThread(server_options(shards=2)) as thread:
        yield thread


@pytest.fixture()
def binary_client(live_server):
    with ServeClient(
        live_server.host, live_server.port, wire_format="binary"
    ) as c:
        yield c


class RawBinary:
    """A hand-driven binary connection for framer fuzzing."""

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=5.0)
        self.sock.settimeout(5.0)
        self.buf = bytearray()

    def send(self, data: bytes) -> None:
        self.sock.sendall(data)

    def read_frame(self) -> bytes:
        while True:
            if len(self.buf) >= 4:
                (length,) = S_LEN.unpack_from(self.buf, 0)
                if len(self.buf) >= 4 + length:
                    body = bytes(self.buf[4:4 + length])
                    del self.buf[:4 + length]
                    return body
            chunk = self.sock.recv(1 << 16)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buf += chunk

    def response(self, tag_types=()):
        return decode_response_frame(self.read_frame(), tag_types)

    def close(self):
        self.sock.close()


DESTS = ["mem:0x40", "mem:0x44"]
TYPES = ["netflow", "file"]


def handshake(raw: RawBinary) -> dict:
    raw.send(encode_preamble() + encode_hello(DESTS, TYPES, []))
    return raw.response()


def decide_frame(
    request_id=1, dest=0, tick=0, free=2, pollution=20.0,
    candidates=((0, 1, 4),),
):
    return encode_decide_frame(
        request_id, dest, 0, tick, CTX_NONE, free, pollution,
        list(candidates),
    )


@pytest.fixture()
def raw(live_server):
    conn = RawBinary(live_server.host, live_server.port)
    yield conn
    conn.close()


class TestCodec:
    def test_error_frame_round_trip(self):
        frame = encode_error_frame(77, "bad-request", "nope")
        (body,) = split_frames(frame)
        decoded = decode_response_frame(body, [])
        assert decoded == {
            "id": 77, "ok": False, "error": "bad-request", "message": "nope",
        }

    def test_error_frame_without_id(self):
        (body,) = split_frames(encode_error_frame(None, "bad-frame", "x"))
        assert decode_response_frame(body, [])["id"] is None

    def test_hello_ack_round_trip(self):
        (body,) = split_frames(encode_hello_ack(4, binary_only=True))
        decoded = decode_response_frame(body, [])
        assert decoded["hello"] and decoded["shards"] == 4
        assert decoded["binary_only"] is True

    def test_decide_frame_out_of_range_raises_bad_frame(self):
        with pytest.raises(ProtocolError) as excinfo:
            encode_decide_frame(
                1, 0, 0, 1 << 32, CTX_NONE, 1, None, [(0, 1, 1)]
            )
        assert excinfo.value.code == "bad-frame"

    def test_unknown_response_frame_type_raises(self):
        with pytest.raises(ProtocolError):
            decode_response_frame(bytes([0x7F]), [])


class TestNegotiation:
    def test_hello_ack_reports_shards(self, binary_client):
        assert binary_client.server_shards == 2
        assert binary_client.server_binary_only is False

    def test_raw_handshake(self, raw):
        ack = handshake(raw)
        assert ack["hello"] and ack["shards"] == 2

    def test_wrong_version_then_retry_succeeds(self, raw):
        raw.send(bytes([0xB7, 2]))
        error = raw.response()
        assert error["error"] == "unsupported-version"
        # the connection survives: a correct preamble still negotiates
        assert handshake(raw)["hello"]

    def test_decide_before_hello_is_structured_error(self, raw):
        raw.send(encode_preamble() + decide_frame())
        error = raw.response()
        assert error["error"] == "bad-frame"
        assert "hello required" in error["message"]
        # the preamble was already consumed; a bare hello now negotiates
        raw.send(encode_hello(DESTS, TYPES, []))
        assert raw.response()["hello"]


class TestFramerFuzz:
    """Every malformed input answers an ERROR frame; the same
    connection then serves a well-formed decide."""

    def _served_ok(self, raw, request_id=99):
        raw.send(decide_frame(request_id=request_id))
        response = raw.response(TYPES)
        assert response["ok"] is True and response["id"] == request_id
        return response

    def test_truncated_length_prefix_waits_for_the_rest(self, raw):
        handshake(raw)
        frame = decide_frame(request_id=5)
        raw.send(frame[:2])
        time.sleep(0.05)
        raw.send(frame[2:])
        assert raw.response(TYPES)["id"] == 5

    def test_oversized_frame_discarded_connection_survives(self, raw):
        handshake(raw)
        length = MAX_FRAME_BYTES + 1
        raw.send(S_LEN.pack(length))
        error = raw.response()
        assert error["error"] == "frame-too-large"
        # the declared body is discarded, then framing resyncs
        raw.send(b"\x00" * length)
        self._served_ok(raw)

    def test_unknown_frame_type_is_structured_error(self, raw):
        handshake(raw)
        raw.send(S_LEN.pack(1) + bytes([0x7F]))
        error = raw.response()
        assert error["error"] == "bad-frame"
        assert "unknown frame type" in error["message"]
        self._served_ok(raw)

    def test_empty_frame_is_structured_error(self, raw):
        handshake(raw)
        raw.send(S_LEN.pack(0))
        assert raw.response()["error"] == "bad-frame"
        self._served_ok(raw)

    def test_ndjson_line_after_hello_resyncs(self, raw):
        handshake(raw)
        raw.send(b'{"op":"ping","id":3}\n')
        error = raw.response()
        assert error["error"] == "bad-frame"
        assert "NDJSON" in error["message"]
        self._served_ok(raw)

    def test_bad_string_table_index_is_structured_error(self, raw):
        handshake(raw)
        raw.send(decide_frame(request_id=8, dest=57))
        error = raw.response()
        assert error["error"] == "bad-frame"
        assert "malformed decide frame" in error["message"]
        self._served_ok(raw)

    def test_mid_frame_disconnect_leaves_server_alive(self, live_server):
        victim = RawBinary(live_server.host, live_server.port)
        handshake(victim)
        victim.send(decide_frame(request_id=1)[:7])
        victim.close()
        survivor = RawBinary(live_server.host, live_server.port)
        try:
            handshake(survivor)
            survivor.send(decide_frame(request_id=2))
            assert survivor.response(TYPES)["ok"] is True
        finally:
            survivor.close()


def mixed_workload(client: ServeClient):
    """One representative request sequence; returns observable outcomes.

    Covers explicit and stateful decides, growing string tables,
    contexts, apply, validation errors, and an envelope fallback (a
    tick the packed format cannot carry).  Each outcome is the response
    dict (errors recorded as ``(code, message)``), so two clients on
    different wire formats can be compared field-for-field.
    """
    out = []

    def run(fn, *args, **kwargs):
        try:
            out.append(fn(*args, **kwargs))
        except ServeClientError as error:
            out.append((error.code, str(error)))

    run(
        client.decide, "mem:0x40", 2,
        [("netflow", 1, 4), ("file", 2, 1)], pollution=20.0,
    )
    run(client.apply, "insert", "mem:0x900", tag=("demo", 7))
    # stateful: copies and pollution resolved from live shard state
    run(client.decide, "mem:0x904", 1, [("demo", 7)])
    # new strings mid-connection (STR_ADD on the binary side)
    run(
        client.decide, "reg:r3", 1, [("env", 3, 2)],
        pollution=5.0, kind="control_dep", context="loop_head",
    )
    # validation error: exact same code and message on both formats
    run(client.decide, "mem:0x40", 1, [("netflow", 0, 1)], pollution=1.0)
    # envelope fallback: tick exceeds the packed u32
    payload = ServeClient.decide_payload(
        "mem:0x40", 1, [("netflow", 1, 2)], pollution=3.0
    )
    payload["tick"] = 1 << 40
    run(client.request, payload)
    return out


class TestCrossFormatParity:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_identical_responses_and_shard_state(self, shards):
        outcomes = {}
        checkpoints = {}
        for wire_format in ("ndjson", "binary"):
            with ServerThread(server_options(shards=shards)) as thread:
                with ServeClient(
                    thread.host, thread.port, wire_format=wire_format
                ) as client:
                    outcomes[wire_format] = mixed_workload(client)
                checkpoints[wire_format] = [
                    shard.checkpoint_payload()
                    for shard in thread.server.shards
                ]
        assert outcomes["binary"] == outcomes["ndjson"]
        assert checkpoints["binary"] == checkpoints["ndjson"]

    def test_binary_decision_matches_offline_api(self, binary_client):
        candidates = [("netflow", 1, 4), ("file", 2, 1)]
        served = binary_client.decide(
            "mem:0x80", free_slots=2, candidates=candidates, pollution=20.0
        )
        offline = api.decide(
            candidates, free_slots=2, pollution=20.0, quick_calibration=True
        )
        assert len(served["decisions"]) == len(offline.decisions)
        for row, decision in zip(served["decisions"], offline.decisions):
            assert row["marginal"] == decision.marginal
            assert row["under"] == decision.under_marginal
            assert row["over"] == decision.over_marginal
            assert row["propagate"] == decision.propagate

    def test_control_ops_ride_the_envelope(self, binary_client):
        assert binary_client.ping()["pong"] is True
        stats = binary_client.stats()
        assert stats["binary_connections"] >= 1

    def test_binary_error_parity_for_bad_candidate(self, binary_client):
        with pytest.raises(ServeClientError) as excinfo:
            binary_client.decide(
                "mem:0x40", 1, [("netflow", 0, 1)], pollution=1.0
            )
        assert excinfo.value.code == "bad-request"
        assert "tag index must be >= 1, got 0" in str(excinfo.value)

    def test_negative_pollution_rejected_like_ndjson(self, binary_client):
        with pytest.raises(ServeClientError) as excinfo:
            binary_client.decide(
                "mem:0x40", 1, [("netflow", 1, 1)], pollution=-3.0
            )
        assert excinfo.value.code == "bad-request"
        assert "pollution must be >= 0" in str(excinfo.value)


class TestBinaryOnlyServer:
    def test_ndjson_data_plane_rejected_control_allowed(self):
        with ServerThread(
            server_options(shards=1, wire_format="binary")
        ) as thread:
            with ServeClient(thread.host, thread.port) as ndjson:
                # control ops stay reachable for health checks / gossip
                assert ndjson.ping()["pong"] is True
                with pytest.raises(ServeClientError) as excinfo:
                    ndjson.decide(
                        "mem:0x40", 1, [("netflow", 1, 2)], pollution=1.0
                    )
                assert excinfo.value.code == "bad-request"
                assert "binary" in str(excinfo.value)
            with ServeClient(
                thread.host, thread.port, wire_format="binary"
            ) as binary:
                assert binary.server_binary_only is True
                response = binary.decide(
                    "mem:0x40", 1, [("netflow", 1, 2)], pollution=1.0
                )
                assert response["ok"] is True


class TestWireFormatValidation:
    def test_serve_options_reject_unknown_format(self):
        with pytest.raises(ValueError):
            ServeOptions(wire_format="carrier-pigeon")

    def test_cluster_options_reject_unknown_format(self):
        with pytest.raises(ValueError):
            ClusterOptions(wire_format="carrier-pigeon")

    def test_cluster_options_thread_format_to_shards(self, tmp_path):
        options = ClusterOptions(
            shards=2, wire_format="binary", checkpoint_root=tmp_path
        )
        assert options.shard_options(0).wire_format == "binary"

    def test_client_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            ServeClient("127.0.0.1", 1, wire_format="carrier-pigeon")
