"""Admin HTTP surface tests: parsing, negotiation, streaming, survival.

The admin plane is hand-rolled HTTP/1.0 on an asyncio stream, so the
request parsing, the ``/metrics`` content negotiation (JSON vs
Prometheus text), the ``/events`` NDJSON stream, and the
client-disconnect-mid-response path all get direct coverage here.
``tests/serve/test_server.py`` keeps the original route smoke tests.
"""

import json
import socket
import urllib.request

import pytest

from repro.obs.prometheus import parse_prometheus_text
from repro.options import ServeOptions
from repro.serve.client import ServeClient
from repro.serve.loadgen import stateful_stream
from repro.serve.server import MitosServer, ServerThread
from tests.replay.test_vector_engine import mixed_recording


def server_options(**overrides) -> ServeOptions:
    defaults = dict(port=0, admin_port=0, quick_calibration=True)
    defaults.update(overrides)
    return ServeOptions(**defaults)


def http_get(port, target, headers=None, timeout=10):
    """Raw HTTP GET returning ``(status, header_dict, body_bytes)``."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{target}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def observed_server():
    options = server_options(shards=2, observe=True)
    obs = options.observability()
    with ServerThread(options, obs) as thread:
        requests = stateful_stream(mixed_recording())
        with ServeClient(thread.host, thread.port) as client:
            for request_id in [client.submit(p) for p in requests]:
                client.collect(request_id)
        yield thread


class TestRequestParsing:
    def test_path_query_and_headers_split(self):
        path, query, headers = MitosServer._parse_admin_request(
            b"GET /events?interval=0.5&count=3 HTTP/1.1\r\n",
            [b"Accept: text/plain\r\n", b"X-Custom:  spaced  \r\n"],
        )
        assert path == "/events"
        assert query == {"interval": "0.5", "count": "3"}
        assert headers == {"accept": "text/plain", "x-custom": "spaced"}

    def test_header_names_lowercased(self):
        _, _, headers = MitosServer._parse_admin_request(
            b"GET / HTTP/1.0\r\n", [b"ACCEPT: application/json\r\n"]
        )
        assert headers == {"accept": "application/json"}

    def test_garbage_request_line_defaults_to_root(self):
        path, query, headers = MitosServer._parse_admin_request(
            b"\r\n", []
        )
        assert path == "/" and query == {} and headers == {}

    def test_blank_query_values_kept(self):
        path, query, _ = MitosServer._parse_admin_request(
            b"GET /metrics?format= HTTP/1.0\r\n", []
        )
        assert path == "/metrics" and query == {"format": ""}


class TestContentNegotiation:
    def test_format_param_wins(self):
        assert MitosServer._wants_prometheus({"format": "prometheus"}, {})
        assert MitosServer._wants_prometheus({"format": "text"}, {})
        assert not MitosServer._wants_prometheus(
            {"format": "json"}, {"accept": "text/plain"}
        )

    def test_accept_header(self):
        assert MitosServer._wants_prometheus({}, {"accept": "text/plain"})
        assert MitosServer._wants_prometheus(
            {}, {"accept": "application/openmetrics-text"}
        )
        assert not MitosServer._wants_prometheus(
            {}, {"accept": "application/json"}
        )
        assert not MitosServer._wants_prometheus({}, {})


class TestHealthz:
    def test_healthz_reports_draining(self, observed_server):
        port = observed_server.admin_port
        status, _, body = http_get(port, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"] is True and payload["draining"] is False
        # flip the drain flag directly: /healthz must keep answering
        # (load balancers poll it to take a draining node out of rotation)
        observed_server.server._draining = True
        try:
            _, _, body = http_get(port, "/healthz")
            assert json.loads(body)["draining"] is True
        finally:
            observed_server.server._draining = False


class TestLivenessReadinessSplit:
    def test_livez_is_unconditionally_200(self, observed_server):
        status, _, body = http_get(observed_server.admin_port, "/livez")
        assert status == 200
        assert json.loads(body) == {"ok": True, "live": True}

    def test_readyz_is_200_while_serving(self, observed_server):
        status, _, body = http_get(observed_server.admin_port, "/readyz")
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True and payload["draining"] is False

    def test_readyz_goes_503_when_draining_livez_stays_200(
        self, observed_server
    ):
        port = observed_server.admin_port
        observed_server.server._draining = True
        try:
            status, _, body = http_get(port, "/readyz")
            assert status == 503
            payload = json.loads(body)
            assert payload["ok"] is False
            assert payload["ready"] is False
            assert payload["draining"] is True
            # liveness is orthogonal: the process is up, so /livez holds
            status, _, _ = http_get(port, "/livez")
            assert status == 200
        finally:
            observed_server.server._draining = False

    def test_healthz_carries_both_bits(self, observed_server):
        _, _, body = http_get(observed_server.admin_port, "/healthz")
        payload = json.loads(body)
        assert payload["live"] is True
        assert payload["ready"] is True

    def test_stats_reports_readiness(self, observed_server):
        _, _, body = http_get(observed_server.admin_port, "/stats")
        assert json.loads(body)["ready"] is True


class TestStatsShape:
    def test_stats_carries_server_counters(self, observed_server):
        _, _, body = http_get(observed_server.admin_port, "/stats")
        payload = json.loads(body)
        for key in (
            "version", "uptime_seconds", "draining", "requests",
            "responses", "errors", "overloaded", "retries", "inflight",
            "restored_shards", "queue_depths", "shards",
        ):
            assert key in payload, key
        assert payload["requests"] > 0
        assert len(payload["shards"]) == 2
        assert len(payload["queue_depths"]) == 2


class TestMetricsNegotiation:
    def test_json_default_carries_server_section(self, observed_server):
        status, headers, body = http_get(
            observed_server.admin_port, "/metrics"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["server"]["requests"] > 0
        assert "serve.requests" in payload["metrics"]["counters"]
        assert "serve.decide_us" in payload["metrics"]["histograms"]

    def test_accept_text_plain_yields_prometheus(self, observed_server):
        status, headers, body = http_get(
            observed_server.admin_port,
            "/metrics",
            headers={"Accept": "text/plain"},
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        parsed = parse_prometheus_text(body.decode("utf-8"))
        assert "serve_requests_total" in parsed
        assert parsed["serve_decide_us"]["type"] == "histogram"

    def test_format_query_param_yields_prometheus(self, observed_server):
        _, headers, body = http_get(
            observed_server.admin_port, "/metrics?format=prometheus"
        )
        assert headers["Content-Type"].startswith("text/plain")
        parse_prometheus_text(body.decode("utf-8"))

    def test_prometheus_without_obs_exports_server_counters(self):
        with ServerThread(server_options()) as thread:
            _, _, body = http_get(
                thread.admin_port, "/metrics?format=prometheus"
            )
            parsed = parse_prometheus_text(body.decode("utf-8"))
            assert "serve_requests_total" in parsed
            assert "serve_uptime_seconds" in parsed

    def test_json_without_obs_still_has_server_section(self):
        with ServerThread(server_options()) as thread:
            _, _, body = http_get(thread.admin_port, "/metrics")
            payload = json.loads(body)
            assert "server" in payload
            assert "serve.requests" in payload["metrics"]["counters"]


class TestNotFound:
    def test_unknown_path_is_404_json(self, observed_server):
        status, _, body = http_get(observed_server.admin_port, "/nope")
        assert status == 404
        payload = json.loads(body)
        assert payload["error"] == "not-found" and payload["path"] == "/nope"


class TestEventsStream:
    def test_bounded_stream_is_ndjson(self, observed_server):
        status, headers, body = http_get(
            observed_server.admin_port, "/events?interval=0.05&count=3"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/x-ndjson")
        lines = [line for line in body.splitlines() if line.strip()]
        assert len(lines) == 3
        snapshots = [json.loads(line) for line in lines]
        assert [s["seq"] for s in snapshots] == [1, 2, 3]
        for snapshot in snapshots:
            assert "stats" in snapshot and "pollution" in snapshot
            assert "metrics" in snapshot  # obs is on for this server

    def test_decision_records_are_deltas(self, observed_server):
        _, _, body = http_get(
            observed_server.admin_port, "/events?interval=0.05&count=2"
        )
        first, second = [
            json.loads(line)
            for line in body.splitlines()
            if line.strip()
        ]
        # all prior decisions arrive in the first snapshot; nothing is
        # decided between the two, so the second carries no repeats
        assert len(first["decisions"]) > 0
        assert second["decisions"] == []
        assert second["decision_seq"] == first["decision_seq"]
        record = first["decisions"][0]
        for key in ("tick", "dest", "pollution", "propagated", "candidates"):
            assert key in record, key
        candidate = record["candidates"][0]
        for key in ("tag", "copies", "under", "over", "propagate"):
            assert key in candidate, key

    def test_bad_interval_is_400(self, observed_server):
        status, _, body = http_get(
            observed_server.admin_port, "/events?interval=fast"
        )
        assert status == 400
        assert json.loads(body)["error"] == "bad-query"

    def test_disconnect_mid_stream_leaves_server_healthy(
        self, observed_server
    ):
        port = observed_server.admin_port
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            s.sendall(b"GET /events?interval=0.05 HTTP/1.0\r\n\r\n")
            s.recv(1024)  # read some of the stream, then vanish
        # the server must shrug the dropped consumer off and keep serving
        status, _, body = http_get(port, "/healthz")
        assert status == 200 and json.loads(body)["ok"] is True

    def test_disconnect_mid_response_survives(self, observed_server):
        port = observed_server.admin_port
        for _ in range(3):
            s = socket.create_connection(("127.0.0.1", port), timeout=10)
            s.sendall(b"GET /stats HTTP/1.0\r\n\r\n")
            s.close()  # never read the response
        status, _, body = http_get(port, "/stats")
        assert status == 200 and json.loads(body)["requests"] >= 0
