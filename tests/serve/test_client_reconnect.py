"""ServeClient transparent-reconnect tests (id continuity across resets).

A client pointed at a server that dies and comes back on the same port
must keep working without caller-visible churn: same id sequence, same
matched responses.  Pipelined submissions are the exception -- a lost
connection loses the outstanding responses, and that loss must surface.
"""

import pytest

from repro.options import ServeOptions
from repro.serve.client import ServeClient
from repro.serve.server import ServerThread


def server_on(port=0):
    return ServerThread(
        ServeOptions(port=port, quick_calibration=True)
    ).start()


class TestAutoReconnect:
    def test_reconnect_preserves_id_continuity(self):
        first = server_on()
        port = first.port
        client = ServeClient(
            "127.0.0.1", port, auto_reconnect=True, reconnect_backoff=0.2
        )
        try:
            assert client.ping()["id"] == 1
            # the server dies; a replacement takes over the same port
            first.abort()
            second = server_on(port=port)
            try:
                response = client.ping()
                # same client, same id sequence: the resent frame after
                # the transparent reconnect carried id 2
                assert response["id"] == 2
                assert response["pong"] is True
                assert client.reconnects == 1
                assert client.stats()["id"] == 3
            finally:
                second.stop()
        finally:
            client.close()
            first.abort()

    def test_without_auto_reconnect_connection_loss_raises(self):
        server = server_on()
        client = ServeClient("127.0.0.1", server.port)
        try:
            client.ping()
            server.abort()
            with pytest.raises(ConnectionError):
                client.ping()
        finally:
            client.close()

    def test_reconnect_gives_up_after_bounded_attempts(self):
        server = server_on()
        client = ServeClient(
            "127.0.0.1",
            server.port,
            auto_reconnect=True,
            reconnect_attempts=2,
            reconnect_backoff=0.01,
        )
        try:
            client.ping()
            server.abort()  # nobody takes the port over
            with pytest.raises(ConnectionError):
                client.ping()
        finally:
            client.close()

    def test_pipelined_loss_surfaces_but_client_stays_usable(self):
        first = server_on()
        port = first.port
        client = ServeClient(
            "127.0.0.1", port, auto_reconnect=True, reconnect_backoff=0.2
        )
        try:
            request_id = client.submit({"op": "ping"})
            client.collect(request_id)
            first.abort()
            second = server_on(port=port)
            try:
                # the submit either lands on the dead socket (its
                # response is lost for good and collect surfaces that)
                # or the send fails and is transparently resent to the
                # replacement; either way the client stays usable
                lost = client.submit({"op": "ping"})
                try:
                    client.collect(lost)
                except ConnectionError:
                    pass
                assert client.ping()["pong"] is True
            finally:
                second.stop()
        finally:
            client.close()
            first.abort()
