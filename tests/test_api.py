"""The ``repro.api`` compatibility contract.

``repro.api`` is the one supported import surface; this module pins its
``__all__`` (additions are deliberate API growth, removals are breaking
changes), the typed-options signatures, and the post-shim behavior of
``replay()``: the one-release ``DeprecationWarning`` shim for flat
keyword arguments is gone, so flat kwargs are now ``TypeError``s that
point at :class:`~repro.options.ReplayOptions` (see docs/CONTROL.md's
migration note).
"""

import pytest

from repro import api
from repro.dift import flows
from repro.dift.shadow import mem
from repro.dift.tags import Tag
from repro.replay.record import Recording

PINNED_ALL = [
    # the six entry points
    "load_recording",
    "build_system",
    "replay",
    "decide",
    "serve",
    "cluster",
    # typed configuration
    "ReplayOptions",
    "ServeOptions",
    "ClusterOptions",
    "ControlOptions",
    # stable re-exported types
    "MitosParams",
    "FarosConfig",
    "FarosSystem",
    "FarosRunResult",
    "Recording",
    "Replayer",
    "Observability",
    "Resilience",
    "AdaptiveController",
    "ParamUpdate",
    "TagCandidate",
    "Decision",
    "MultiDecision",
    "MitosServer",
    "ServerThread",
    "ServeClient",
    "ClusterSupervisor",
    "ClusterRouter",
    "POLICY_NAMES",
]


def small_recording() -> Recording:
    events = [
        flows.insert(mem(0), Tag("netflow", 1), tick=0, context="socket_read"),
        flows.insert(mem(1), Tag("file", 2), tick=0),
        flows.copy(mem(0), mem(2), tick=1),
        flows.address_dep(mem(2), mem(3), tick=2, context="table_lookup"),
        flows.control_dep((mem(1),), mem(4), tick=3),
        flows.clear(mem(0), tick=4),
    ]
    return Recording(events=events, meta={"name": "api-mini"})


class TestSurface:
    def test_all_is_pinned(self):
        # exact, ordered: additions and removals are both API events
        assert api.__all__ == PINNED_ALL

    def test_every_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_package_lazy_attribute(self):
        import repro

        assert repro.api is api


class TestLoadAndBuild:
    def test_recording_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recording = small_recording()
        recording.save(path)
        loaded = api.load_recording(path)
        assert len(loaded.events) == len(recording.events)

    def test_build_system_wires_policy(self):
        system = api.build_system(policy="mitos", quick_calibration=True)
        assert isinstance(system, api.FarosSystem)

    def test_build_system_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            api.build_system(policy="propagate-sometimes")


class TestReplay:
    def test_options_object_path(self):
        result = api.replay(
            small_recording(),
            options=api.ReplayOptions(engine="vector"),
            quick_calibration=True,
        )
        assert isinstance(result, api.FarosRunResult)
        assert result.tracker_stats["inserts"] == 2

    def test_accepts_a_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        small_recording().save(path)
        result = api.replay(path, quick_calibration=True)
        assert result.tracker_stats["inserts"] == 2

    def test_flat_kwargs_shim_removed(self):
        # the PR-5 DeprecationWarning shim is gone: once-supported flat
        # execution kwargs are plain TypeErrors pointing at ReplayOptions
        with pytest.raises(TypeError, match="ReplayOptions"):
            api.replay(
                small_recording(),
                engine="vector",
                limit=5,
                quick_calibration=True,
            )

    def test_flat_kwargs_error_names_the_offenders(self):
        with pytest.raises(TypeError, match="engine") as excinfo:
            api.replay(small_recording(), engine="vector", limit=5)
        assert "limit" in str(excinfo.value)

    def test_unknown_kwargs_are_type_errors(self):
        with pytest.raises(TypeError, match="warp_factor"):
            api.replay(small_recording(), warp_factor=9)

    def test_options_plus_flat_kwargs_rejected(self):
        with pytest.raises(TypeError, match="ReplayOptions"):
            api.replay(
                small_recording(),
                options=api.ReplayOptions(),
                engine="vector",
            )

    def test_vector_blockers_rejected_upfront(self):
        with pytest.raises(ValueError, match="supervisor"):
            api.replay(
                small_recording(),
                options=api.ReplayOptions(
                    engine="vector", supervisor="skip-event"
                ),
            )

    def test_scalar_and_vector_agree(self):
        scalar = api.replay(
            small_recording(),
            options=api.ReplayOptions(engine="scalar"),
            quick_calibration=True,
        )
        vector = api.replay(
            small_recording(),
            options=api.ReplayOptions(engine="vector"),
            quick_calibration=True,
        )
        assert scalar.tracker_stats == vector.tracker_stats


class TestDecide:
    def test_tuple_candidates(self):
        outcome = api.decide(
            [("netflow", 1, 4), ("file", 2, 1)],
            free_slots=1,
            pollution=50.0,
            quick_calibration=True,
        )
        assert isinstance(outcome, api.MultiDecision)
        assert len(outcome.decisions) == 2
        assert sum(d.propagate for d in outcome.decisions) <= 1

    def test_tag_candidate_objects_equivalent(self):
        tuples = api.decide(
            [("netflow", 1, 4)], free_slots=1, pollution=10.0,
            quick_calibration=True,
        )
        objects = api.decide(
            [api.TagCandidate(Tag("netflow", 1), "netflow", 4)],
            free_slots=1, pollution=10.0, quick_calibration=True,
        )
        assert tuples.decisions == objects.decisions

    def test_malformed_candidate_rejected(self):
        with pytest.raises(ValueError, match="TagCandidate"):
            api.decide(
                [("netflow", 1)], free_slots=1, pollution=0.0,
                quick_calibration=True,
            )


class TestServe:
    def test_background_server_serves_and_stops(self):
        thread = api.serve(
            api.ServeOptions(port=0, shards=2, quick_calibration=True),
            background=True,
        )
        try:
            assert isinstance(thread, api.ServerThread)
            with api.ServeClient(thread.host, thread.port) as client:
                assert client.ping()["pong"] is True
                served = client.decide(
                    "mem:0x40",
                    free_slots=1,
                    candidates=[("netflow", 1, 3)],
                    pollution=10.0,
                )
            offline = api.decide(
                [("netflow", 1, 3)], free_slots=1, pollution=10.0,
                quick_calibration=True,
            )
            assert [r["marginal"] for r in served["decisions"]] == [
                d.marginal for d in offline.decisions
            ]
        finally:
            thread.stop()

    def test_ready_callback_reports_bound_port(self):
        seen = []
        thread = api.serve(
            api.ServeOptions(port=0, quick_calibration=True),
            background=True,
            ready=lambda server: seen.append(server.port),
        )
        try:
            assert seen == [thread.port]
        finally:
            thread.stop()
