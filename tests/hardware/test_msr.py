"""Tests for the MITOS model-specific register file."""

import pytest

from repro.core.params import MitosParams
from repro.hardware.msr import (
    FIXED_POINT_ONE,
    MSR_ALPHA,
    MSR_U_BANK,
    WEIGHT_BANK_SIZE,
    MitosMsrFile,
    MsrLockedError,
    from_fixed,
    to_fixed,
)


class TestFixedPoint:
    def test_round_trip_exact_for_dyadic(self):
        assert from_fixed(to_fixed(1.5)) == 1.5
        assert from_fixed(to_fixed(0.25)) == 0.25

    def test_round_trip_error_bound(self):
        for value in (1.3, 2.7, 0.001, 123.456):
            assert abs(from_fixed(to_fixed(value)) - value) <= 2 ** -16

    def test_one(self):
        assert to_fixed(1.0) == FIXED_POINT_ONE

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            to_fixed(-0.5)


class TestMsrFile:
    def params(self) -> MitosParams:
        return MitosParams(
            alpha=1.5, beta=2.0, tau=0.25, tau_scale=64.0,
            R=1 << 16, M_prov=10,
            u={"netflow": 2.0, "file": 0.5}, o={"netflow": 1.5},
        )

    def test_params_round_trip(self):
        msr = MitosMsrFile()
        original = self.params()
        msr.load_params(original)
        decoded = msr.to_params()
        assert decoded.alpha == original.alpha
        assert decoded.tau == original.tau
        assert decoded.R == original.R
        assert decoded.M_prov == original.M_prov
        assert decoded.u == original.u
        assert decoded.o == {"netflow": 1.5}

    def test_lock_blocks_writes(self):
        msr = MitosMsrFile()
        msr.load_params(self.params())
        msr.lock()
        assert msr.locked
        with pytest.raises(MsrLockedError):
            msr.write(MSR_ALPHA, 123)

    def test_lock_blocks_new_tag_types(self):
        msr = MitosMsrFile()
        msr.load_params(self.params())
        msr.lock()
        with pytest.raises(MsrLockedError):
            msr.slot_for("brand_new_type")

    def test_known_types_resolvable_after_lock(self):
        msr = MitosMsrFile()
        msr.load_params(self.params())
        slot = msr.slot_for("netflow")
        msr.lock()
        assert msr.slot_for("netflow") == slot

    def test_weight_bank_capacity(self):
        msr = MitosMsrFile()
        for i in range(WEIGHT_BANK_SIZE):
            msr.slot_for(f"type{i}")
        with pytest.raises(ValueError):
            msr.slot_for("one-too-many")

    def test_reads_default_to_zero(self):
        assert MitosMsrFile().read(0x999) == 0

    def test_unsigned_writes_only(self):
        with pytest.raises(ValueError):
            MitosMsrFile().write(MSR_U_BANK, -1)

    def test_dump_sorted(self):
        msr = MitosMsrFile()
        msr.load_params(self.params())
        addresses = [address for address, _ in msr.dump()]
        assert addresses == sorted(addresses)
