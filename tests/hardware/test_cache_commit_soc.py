"""Tests for the tag cache, cycle model, and assembled SoC component."""

import pytest

from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.hardware.commit import CycleModel, CycleReport
from repro.hardware.msr import MitosMsrFile
from repro.hardware.soc import MitosHardware, location_key, page_of
from repro.hardware.tag_cache import TagCache
from repro.hardware.tag_memory import SegmentedTagMemory


def params(**kw) -> MitosParams:
    defaults = dict(R=1 << 16, M_prov=4, tau_scale=1.0)
    defaults.update(kw)
    return MitosParams(**defaults)


class TestTagCache:
    def test_first_access_misses_then_hits(self):
        cache = TagCache(sets=4, ways=2)
        assert not cache.access("x")
        assert cache.access("x")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_within_set(self):
        cache = TagCache(sets=1, ways=2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a; b is LRU
        cache.access("c")  # evicts b
        assert cache.contains("a")
        assert not cache.contains("b")

    def test_sequential_locality_beats_random(self):
        import random

        rng = random.Random(0)
        sequential = TagCache(sets=16, ways=4)
        for _ in range(4):
            for i in range(32):
                sequential.access(f"loc{i}")
        random_cache = TagCache(sets=16, ways=4)
        for _ in range(128):
            random_cache.access(f"loc{rng.randrange(10_000)}")
        assert sequential.stats.hit_rate > random_cache.stats.hit_rate

    def test_invalidate_and_flush(self):
        cache = TagCache(sets=2, ways=2)
        cache.access("x")
        assert cache.invalidate("x")
        assert not cache.invalidate("x")
        cache.access("y")
        cache.flush()
        assert cache.occupancy == 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TagCache(sets=0)


class TestCycleModel:
    def test_charge_accumulates(self):
        report = CycleReport()
        report.charge("decision", 3, 4)
        report.charge("decision", 1, 4)
        assert report.total_cycles == 16
        assert report.by_action["decision"] == 16

    def test_cycles_per_decision(self):
        report = CycleReport(decisions=4, total_cycles=40)
        assert report.cycles_per_decision == 10.0
        assert CycleReport().cycles_per_decision == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CycleModel(decision_cycles=-1)


class TestMitosHardware:
    def test_requires_locked_msr(self):
        msr = MitosMsrFile()
        msr.load_params(params())
        with pytest.raises(ValueError, match="locked"):
            MitosHardware(msr)

    def test_configure_locks(self):
        hw = MitosHardware.configure(params())
        assert hw.msr.locked

    def test_agrees_with_software_tracker(self):
        """Hardware and software reach identical taint state."""
        p = params()
        hw = MitosHardware.configure(p)
        software = DIFTTracker(p, MitosPolicy(p))
        tag = Tag("netflow", 1)
        events = [flows.insert(mem(0), tag, tick=0)]
        events.append(flows.copy(mem(0), reg("r1"), tick=1))
        events.append(flows.address_dep(reg("r1"), mem(8), tick=2))
        events.append(flows.compute((reg("r1"),), reg("r2"), tick=3))
        for event in events:
            hw.process(event)
            software.process(event)
        assert hw.agrees_with_software(software)

    def test_decisions_charged(self):
        hw = MitosHardware.configure(params())
        hw.process(flows.insert(reg("r1"), Tag("netflow", 1), tick=0))
        hw.process(flows.address_dep(reg("r1"), mem(8), tick=1))
        assert hw.report.decisions == 1
        assert hw.report.propagations == 1
        assert hw.report.total_cycles > 0
        assert hw.report.by_action.get("decision", 0) > 0

    def test_cache_warms_up(self):
        hw = MitosHardware.configure(params())
        tag = Tag("netflow", 1)
        for tick in range(8):
            hw.process(flows.insert(mem(5), tag, tick=tick))
        # the same location repeatedly: first touch misses, rest hit
        assert hw.report.cache_hits >= 6
        assert hw.report.cache_misses >= 1

    def test_swaps_charged_under_page_pressure(self):
        hw = MitosHardware.configure(
            params(),
            tag_memory=SegmentedTagMemory(resident_pages=1),
            cache=TagCache(sets=1, ways=1),
        )
        tag = Tag("netflow", 1)
        # touch many distinct locations: pages thrash through the
        # single-resident-page segment
        for tick, address in enumerate(range(0, 4096, 8)):
            hw.process(flows.insert(mem(address), tag, tick=tick))
        assert hw.report.swaps > 0
        assert hw.report.by_action.get("swap", 0) > 0

    def test_location_key_and_page_stable(self):
        assert location_key(mem(5)) == location_key(mem(5))
        assert page_of(mem(5)) == page_of(mem(5))
