"""Property test: hardware MITOS agrees bit-exactly with software MITOS."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy
from repro.dift import flows
from repro.dift.shadow import mem, reg
from repro.dift.tags import Tag
from repro.dift.tracker import DIFTTracker
from repro.hardware import MitosHardware

tag_strategy = st.builds(
    Tag,
    type=st.sampled_from(["netflow", "file", "export_table"]),
    index=st.integers(1, 4),
)

event_specs = st.lists(
    st.tuples(
        st.sampled_from(["insert", "copy", "address", "control", "clear"]),
        st.integers(0, 7),
        st.integers(0, 7),
        tag_strategy,
    ),
    max_size=50,
)


def build_events(specs):
    events = []
    for tick, (op, src, dst, tag) in enumerate(specs):
        if op == "insert":
            events.append(flows.insert(mem(dst), tag, tick=tick))
        elif op == "copy":
            events.append(flows.copy(mem(src), reg(f"r{dst % 8}"), tick=tick))
        elif op == "address":
            events.append(
                flows.address_dep(reg(f"r{src % 8}"), mem(dst), tick=tick)
            )
        elif op == "control":
            events.append(
                flows.control_dep((reg(f"r{src % 8}"),), mem(dst), tick=tick)
            )
        else:
            events.append(flows.clear(mem(dst), tick=tick))
    return events


class TestHardwareSoftwareEquivalence:
    @given(specs=event_specs)
    @settings(max_examples=40, deadline=None)
    def test_identical_taint_state(self, specs):
        params = MitosParams(R=1 << 16, M_prov=4, tau_scale=1.0)
        events = build_events(specs)
        hardware = MitosHardware.configure(params)
        software = DIFTTracker(params, MitosPolicy(params))
        for event in events:
            hardware.process(event)
            software.process(event)
        assert hardware.agrees_with_software(software)

    @given(specs=event_specs)
    @settings(max_examples=20, deadline=None)
    def test_cycle_accounting_monotone(self, specs):
        params = MitosParams(R=1 << 16, M_prov=4, tau_scale=1.0)
        hardware = MitosHardware.configure(params)
        last = 0
        for event in build_events(specs):
            hardware.process(event)
            assert hardware.report.total_cycles >= last
            last = hardware.report.total_cycles
