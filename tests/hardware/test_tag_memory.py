"""Tests for the segmented tag memory and authenticated swap."""

import pytest

from repro.dift.tags import Tag
from repro.hardware.tag_memory import SegmentedTagMemory, SwapError, TagPage


class TestTagPage:
    def test_put_get(self):
        page = TagPage(page_id=3)
        page.put("('mem', 5)", [Tag("netflow", 1), Tag("file", 2)])
        assert page.get("('mem', 5)") == [("netflow", 1), ("file", 2)]
        assert page.get("absent") is None

    def test_serialize_round_trip(self):
        page = TagPage(page_id=7)
        page.put("a", [Tag("netflow", 1)])
        page.put("b", [Tag("file", 3), Tag("process", 2)])
        restored = TagPage.deserialize(page.serialize())
        assert restored.page_id == 7
        assert restored.entries == page.entries

    def test_serialization_is_deterministic(self):
        a = TagPage(page_id=1)
        a.put("x", [Tag("t", 1)])
        a.put("y", [Tag("t", 2)])
        b = TagPage(page_id=1)
        b.put("y", [Tag("t", 2)])
        b.put("x", [Tag("t", 1)])
        assert a.serialize() == b.serialize()


class TestSwap:
    def test_pages_created_on_demand(self):
        memory = SegmentedTagMemory(resident_pages=2)
        page = memory.page(5)
        assert page.page_id == 5
        assert memory.is_resident(5)

    def test_eviction_seals_lru_page(self):
        memory = SegmentedTagMemory(resident_pages=2)
        memory.page(1)
        memory.page(2)
        memory.page(3)  # evicts page 1
        assert not memory.is_resident(1)
        assert memory.swapped_count == 1
        assert memory.swap_outs == 1

    def test_lru_refresh_on_access(self):
        memory = SegmentedTagMemory(resident_pages=2)
        memory.page(1)
        memory.page(2)
        memory.page(1)  # refresh: 2 is now LRU
        memory.page(3)
        assert memory.is_resident(1)
        assert not memory.is_resident(2)

    def test_swap_in_restores_contents(self):
        memory = SegmentedTagMemory(resident_pages=1)
        page = memory.page(1)
        page.put("loc", [Tag("netflow", 9)])
        memory.page(2)  # swap out 1
        restored = memory.page(1)  # swap back in
        assert restored.get("loc") == [("netflow", 9)]
        assert memory.swap_ins == 1

    def test_os_sees_only_ciphertext(self):
        memory = SegmentedTagMemory(resident_pages=1)
        page = memory.page(1)
        page.put("secret-location", [Tag("netflow", 1)])
        memory.page(2)
        sealed = memory.os_view(1)
        assert sealed is not None
        assert b"secret-location" not in sealed.ciphertext

    def test_tampered_page_detected(self):
        memory = SegmentedTagMemory(resident_pages=1)
        memory.page(1).put("loc", [Tag("netflow", 1)])
        memory.page(2)
        memory.os_tamper(1)
        with pytest.raises(SwapError, match="authentication"):
            memory.page(1)

    def test_dropped_page_comes_back_empty(self):
        # an OS that discards a page loses data but cannot forge it; the
        # hardware treats the page as fresh
        memory = SegmentedTagMemory(resident_pages=1)
        memory.page(1).put("loc", [Tag("netflow", 1)])
        memory.page(2)
        memory.os_drop(1)
        assert memory.page(1).entries == {}

    def test_distinct_nonces_give_distinct_ciphertexts(self):
        memory = SegmentedTagMemory(resident_pages=1)
        memory.page(1).put("loc", [Tag("netflow", 1)])
        memory.page(2)  # seal 1
        first = memory.os_view(1)
        memory.page(1)  # swap in
        memory.page(3)  # seal 1 again
        second = memory.os_view(1)
        assert first is not None and second is not None
        assert first.nonce != second.nonce
        assert first.ciphertext != second.ciphertext

    def test_invalid_resident_limit(self):
        with pytest.raises(ValueError):
            SegmentedTagMemory(resident_pages=0)
