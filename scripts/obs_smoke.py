#!/usr/bin/env python3
"""End-to-end smoke of the serving observability plane.

CI's ``obs-smoke`` job runs this; it is also the fastest local check
that the live instruments actually work:

1. boot a ``MitosServer`` with ``--observe`` and a 100% canary at a
   shifted tau on ephemeral ports,
2. drive the quick recording's captured IFP decisions through it (the
   load generator checks offline parity on every response),
3. tail a bounded ``/events`` window *while the server is live* and
   check snapshot shape, monotone cursors, and the canary flip feed,
4. scrape ``/metrics`` as JSON and as Prometheus text, validating the
   exposition with ``repro.obs.prometheus.parse_prometheus_text``,
5. write the scrape to ``results/obs_scrape.prom`` and append one
   compact record to ``results/bench_trend.jsonl`` (folding in
   ``BENCH_serve.json`` / ``BENCH_replay.json`` when present, so the
   uploaded artifact accumulates a cross-run trend).

Exit code 0 means every check passed.
"""

import argparse
import json
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import experiment_params, network_recording
from repro.obs.prometheus import parse_prometheus_text
from repro.options import ServeOptions
from repro.serve.canary import offline_decision_diff
from repro.serve.loadgen import collect_offline_decisions, run_load
from repro.serve.server import ServerThread
from repro.serve.top import iter_events

SHIFTED_TAU = 0.05

#: metric families every observed scrape must expose
REQUIRED_FAMILIES = (
    "serve_requests_total",
    "serve_responses_total",
    "serve_decisions_total",
    "canary_mirrored_total",
    "canary_flips_total",
    "serve_decide_us_bucket",
    "serve_batch_size_bucket",
    "serve_queue_depth_0",
)


def http_get(port, target, accept=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{target}",
        headers={"Accept": accept} if accept else {},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.headers.get("Content-Type", ""), response.read()


def check(condition, message):
    if not condition:
        raise SystemExit(f"obs-smoke FAILED: {message}")
    print(f"  ok: {message}")


def tail_events(thread, count=3):
    snapshots = list(
        iter_events(thread.host, thread.admin_port, interval=0.1, count=count)
    )
    check(len(snapshots) == count, f"/events delivered {count} snapshots")
    seqs = [s["seq"] for s in snapshots]
    check(seqs == sorted(set(seqs)), "snapshot seq is strictly monotone")
    first = snapshots[0]
    for key in ("stats", "pollution", "metrics", "decisions",
                "decision_seq", "canary_flips", "flip_seq"):
        check(key in first, f"snapshot carries {key!r}")
    check(first["decisions"], "decision tail delivered Eq. 8 records")
    record = first["decisions"][-1]
    for key in ("dest", "candidates", "propagated", "pollution"):
        check(key in record, f"decision record carries {key!r}")
    total_flips = sum(len(s["canary_flips"]) for s in snapshots)
    return total_flips


def scrape(thread, out_path):
    content_type, body = http_get(thread.admin_port, "/metrics")
    check(content_type.startswith("application/json"), "default scrape is JSON")
    payload = json.loads(body)
    check("server" in payload, "JSON scrape carries the server counters")
    check("metrics" in payload, "JSON scrape carries the registry export")

    content_type, text = http_get(
        thread.admin_port, "/metrics", accept="text/plain"
    )
    check("text/plain" in content_type, "negotiated content type is text")
    families = parse_prometheus_text(text.decode("utf-8"))
    sample_names = {
        sample_name
        for family in families.values()
        for sample_name, _labels, _value in family["samples"]
    }
    for name in REQUIRED_FAMILIES:
        check(name in sample_names, f"scrape exposes {name}")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(text.decode("utf-8"))
    print(f"  wrote {out_path} ({len(families)} metric families)")
    return payload


def append_trend(trend_path, record, merge_paths):
    for path in merge_paths:
        path = Path(path)
        if not path.exists():
            continue
        try:
            report = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        key = path.stem.lower().replace("bench_", "")
        record[key] = {
            k: report[k]
            for k in ("decisions_per_second", "latency_us", "matched",
                      "engines", "speedups")
            if k in report
        }
    trend_path.parent.mkdir(parents=True, exist_ok=True)
    with trend_path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"  appended trend record to {trend_path}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default=str(REPO_ROOT / "results"))
    parser.add_argument(
        "--merge",
        nargs="*",
        default=["BENCH_serve.json", "BENCH_replay.json"],
        help="bench reports to fold into the trend record when present",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)

    print("obs-smoke: capturing offline decisions")
    recording = network_recording(seed=0, quick=True)
    params = experiment_params(quick=True)
    decisions = collect_offline_decisions(recording, params)
    check(decisions, f"captured {len(decisions)} offline decisions")

    options = ServeOptions(
        port=0,
        admin_port=0,
        shards=2,
        quick_calibration=True,
        observe=True,
        canary_fraction=1.0,
        canary_tau=SHIFTED_TAU,
    )
    print("obs-smoke: booting an observed server (100% canary, shifted tau)")
    started = time.perf_counter()
    with ServerThread(options, options.observability()) as thread:
        result = run_load(thread.host, thread.port, decisions, window=64)
        check(result.matched, "served decisions match the offline replay")

        live_flips = tail_events(thread)
        payload = scrape(thread, out_dir / "obs_scrape.prom")
        stats = thread.server.stats()
    elapsed = time.perf_counter() - started

    mirrored = sum(c["mirrored"] for c in stats["canary"])
    flips = sum(c["flips"] for c in stats["canary"])
    check(mirrored == len(decisions), "canary mirrored every decide request")
    offline_flips, _ = offline_decision_diff(
        decisions, experiment_params(quick=True, tau=SHIFTED_TAU)
    )
    check(offline_flips > 0, f"shifted tau diverges ({offline_flips} flips)")
    check(
        flips == offline_flips,
        f"live canary flips ({flips}) == offline replay diff",
    )
    check(live_flips <= flips, "/events flip feed is a subset of the count")

    append_trend(
        out_dir / "bench_trend.jsonl",
        {
            "kind": "obs_smoke",
            "requests": stats["requests"],
            "decisions": len(decisions),
            "canary_mirrored": mirrored,
            "canary_flips": flips,
            "elapsed_seconds": round(elapsed, 3),
            "histogram_counts": {
                name: payload["metrics"]["histograms"][name]["count"]
                for name in ("serve.decide_us", "serve.batch_size")
            },
        },
        args.merge,
    )
    print(f"obs-smoke: PASSED in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
