"""Typed option bundles for the two long-form entry points.

The replay and serve surfaces had grown a flat knob sprawl (engine,
checkpointing, supervision, fault injection, degraded mode, observability
outputs) spread across ``Replayer(...)``, ``FarosSystem(...)``,
``Resilience.create(...)`` and a dozen CLI flags.  These dataclasses are
the single typed home for those knobs:

* :class:`ReplayOptions` -- everything about *how* a replay runs (the
  *what* -- params, policy, recording -- stays on
  :class:`~repro.faros.config.FarosConfig` / the ``repro.api`` calls);
* :class:`ServeOptions` -- the online decision service's full surface;
* :class:`ControlOptions` -- the online parameter-adaptation loop
  (:mod:`repro.control`), hung off all three surfaces above.

All are keyword-only: every field is named at the call site, so adding
a knob can never silently shift a positional argument.  The CLI builds
them from its flags and :mod:`repro.api` accepts them directly; flat
keyword arguments to :func:`repro.api.replay` (the PR-5 shim) are gone
and raise ``TypeError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pure type hints; avoid import cycles at module load
    from repro.faults.resilience import Resilience
    from repro.obs.bundle import Observability


@dataclass(kw_only=True)
class ControlOptions:
    """The online parameter-adaptation loop's configuration surface.

    Consumed by :class:`repro.control.AdaptiveController`: every
    ``every`` decisions the controller re-estimates the decision
    boundary from the live pollution signal and per-type tag mix, and
    atomically swaps a new :class:`~repro.core.params.MitosParams` onto
    the policy.  ``enabled=False`` (the default) is the provably-inert
    path: no controller is built anywhere, outputs stay byte-identical.
    """

    #: master switch; False builds no controller at all
    enabled: bool = False
    #: "ewma" (EWMA/gradient baseline) or "bandit" (seeded
    #: epsilon-greedy over a discretized tau_scale grid)
    mode: str = "ewma"
    #: decisions between controller steps (the update cadence)
    every: int = 256
    #: pollution budget as a fraction of N_R the controller steers to
    target_pollution: float = 0.05
    #: EWMA smoothing factor for the observed pollution fraction
    ewma_alpha: float = 0.3
    #: multiplicative tau_scale step per update (ewma mode)
    step: float = 0.15
    #: safety bounds on tau_scale (both modes clamp into this band)
    scale_min: float = 0.25
    scale_max: float = 4.0
    #: also re-estimate per-type utilities u_t / over-taint weights o_t
    adapt_weights: bool = True
    #: multiplicative u_t/o_t step per update
    weight_step: float = 0.1
    #: safety bounds on u_t/o_t relative to their configured values
    weight_min: float = 0.25
    weight_max: float = 4.0
    #: bandit arms (log-spaced tau_scale grid over [scale_min, scale_max])
    grid: int = 7
    #: bandit exploration rate (seeded, deterministic given the trace)
    epsilon: float = 0.1
    seed: int = 0
    #: bounded param-update history kept for /events, top and reports
    history: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("ewma", "bandit"):
            raise ValueError(
                f"mode must be 'ewma' or 'bandit', got {self.mode!r}"
            )
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.target_pollution <= 0.0:
            raise ValueError(
                f"target_pollution must be > 0, got {self.target_pollution}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.step <= 0.0:
            raise ValueError(f"step must be > 0, got {self.step}")
        if self.weight_step <= 0.0:
            raise ValueError(
                f"weight_step must be > 0, got {self.weight_step}"
            )
        if not 0.0 < self.scale_min <= self.scale_max:
            raise ValueError(
                "scale bounds must satisfy 0 < scale_min <= scale_max, "
                f"got [{self.scale_min}, {self.scale_max}]"
            )
        if not 0.0 < self.weight_min <= self.weight_max:
            raise ValueError(
                "weight bounds must satisfy 0 < weight_min <= weight_max, "
                f"got [{self.weight_min}, {self.weight_max}]"
            )
        if self.grid < 2:
            raise ValueError(f"grid must be >= 2, got {self.grid}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError(
                f"epsilon must be in [0, 1], got {self.epsilon}"
            )
        if self.history < 1:
            raise ValueError(f"history must be >= 1, got {self.history}")


@dataclass(kw_only=True)
class ReplayOptions:
    """How one replay executes (engine, robustness, instrumentation).

    Field groups mirror the subsystems they configure:

    * engine/limit -- :class:`~repro.replay.replayer.Replayer`,
    * checkpoint/resume/supervisor/faults -- :class:`~repro.faults.Resilience`,
    * degrade_at -- graceful degradation in the tracker,
    * trace_out/metrics_out/sample_every -- :class:`~repro.obs.bundle.Observability`.
    """

    #: "scalar" (per-event loop) or "vector" (columnar batch engine)
    engine: str = "scalar"
    #: stop after N events (simulates a killed replay)
    limit: Optional[int] = None
    #: write a checkpoint every N events (requires checkpoint_out)
    checkpoint_every: Optional[int] = None
    checkpoint_out: Optional[Union[str, Path]] = None
    #: restore this checkpoint and continue from its event index
    resume_from: Optional[Union[str, Path]] = None
    #: plugin fault policy: fail-fast / skip-event / quarantine (None = off)
    supervisor: Optional[str] = None
    max_retries: int = 2
    #: seeded fault-injection rate (0.0 = no faults)
    inject_faults: float = 0.0
    fault_seed: int = 0
    #: shed lowest-utility tags past this fraction of N_R (None = off)
    degrade_at: Optional[float] = None
    #: JSONL IFP decision trace output path (.gz ok)
    trace_out: Optional[Union[str, Path]] = None
    #: metrics + spans + time series JSON output path
    metrics_out: Optional[Union[str, Path]] = None
    #: sample pollution/footprint every N ticks
    sample_every: Optional[int] = None
    #: online parameter adaptation (None or enabled=False = inert)
    control: Optional[ControlOptions] = None

    def __post_init__(self) -> None:
        if self.engine not in ("scalar", "vector"):
            raise ValueError(
                f"engine must be 'scalar' or 'vector', got {self.engine!r}"
            )
        if self.inject_faults < 0.0:
            raise ValueError(
                f"inject_faults must be >= 0, got {self.inject_faults}"
            )

    @property
    def wants_observability(self) -> bool:
        return (
            self.trace_out is not None
            or self.metrics_out is not None
            or self.sample_every is not None
        )

    @property
    def wants_resilience(self) -> bool:
        return (
            self.inject_faults > 0.0
            or self.supervisor is not None
            or self.checkpoint_every is not None
            or self.resume_from is not None
        )

    def observability(self) -> Optional["Observability"]:
        """The :class:`Observability` bundle these options call for."""
        if not self.wants_observability:
            return None
        from repro.obs.bundle import Observability

        return Observability.create(
            trace_out=self.trace_out, sample_every=self.sample_every
        )

    def resilience(self) -> Optional["Resilience"]:
        """The :class:`Resilience` bundle these options call for.

        Mirrors the CLI's behaviour: under the vector engine only the
        stream-perturbing fault injector is built (a plugin supervisor
        is a per-event contract the vector engine refuses).
        """
        if not self.wants_resilience:
            return None
        from repro.faults.resilience import Resilience

        if self.engine == "vector":
            from repro.faults.injector import FaultConfig, FaultInjector

            return Resilience(
                injector=FaultInjector(
                    FaultConfig.uniform(self.inject_faults, seed=self.fault_seed)
                )
            )
        return Resilience.create(
            fault_rate=self.inject_faults,
            fault_seed=self.fault_seed,
            supervisor_policy=self.supervisor,
            max_retries=self.max_retries,
            checkpoint_every=self.checkpoint_every,
            checkpoint_path=self.checkpoint_out,
            resume_from=self.resume_from,
        )

    @property
    def wants_control(self) -> bool:
        return self.control is not None and self.control.enabled

    def vector_blockers(self) -> list:
        """Flag-level reasons the vector engine would refuse these options."""
        if self.engine != "vector":
            return []
        return [
            name
            for name, is_set in (
                ("supervisor", self.supervisor is not None),
                ("resume_from", self.resume_from is not None),
                ("checkpoint_every", self.checkpoint_every is not None),
                ("sample_every", self.sample_every is not None),
                ("degrade_at", self.degrade_at is not None),
                # the controller is a per-event plugin contract
                ("control", self.wants_control),
            )
            if is_set
        ]


@dataclass(kw_only=True)
class ServeOptions:
    """The online decision service's full configuration surface."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (reported once bound)
    port: int = 7757
    #: stdlib HTTP admin surface (/healthz, /stats, /metrics); None = off
    admin_port: Optional[int] = None
    #: independent tracker+policy shards (consistent-hash on destination)
    shards: int = 1
    #: bounded per-shard request queue; full = explicit overloaded response
    queue_depth: int = 1024
    #: max requests a shard worker drains per wakeup (micro-batch size)
    batch_max: int = 64
    #: adaptive batch-deadline cap in microseconds: under sustained load
    #: a shard worker briefly yields (growing toward this cap) so the
    #: frame parsers can top its queue up and the fused columnar kernel
    #: sees wide cross-request drains; after any solo drain the window
    #: collapses to zero, so idle-load p50 is untouched.  0 disables.
    batch_deadline_us: float = 250.0
    #: steady-state allocation hygiene: after the server binds, collect
    #: once, ``gc.freeze()`` the warm-up survivors out of every future
    #: scan, and raise the gen-0 threshold so the hot path stops paying
    #: for collector sweeps of long-lived objects.  Off by default --
    #: it mutates process-global GC state, so only standalone server
    #: processes (CLI ``serve``, cluster shards, benches) opt in.
    gc_freeze: bool = False
    #: bounded retries per request before an ``internal`` error response
    max_retries: int = 2
    #: propagation policy name (one of faros.config.POLICY_NAMES)
    policy: str = "mitos"
    #: MITOS decision-boundary knobs (see workloads.calibration)
    tau: float = 1.0
    alpha: float = 1.5
    quick_calibration: bool = False
    #: per-shard checkpoint directory (shard-<i>.ckpt.json); None = off
    checkpoint_dir: Optional[Union[str, Path]] = None
    #: checkpoint a shard every N applied requests (None = only on drain)
    checkpoint_every: Optional[int] = None
    #: restore shard checkpoints from checkpoint_dir before serving
    resume: bool = False
    #: JSONL decision-trace path for served decisions (.gz ok)
    trace_out: Optional[Union[str, Path]] = None
    #: metrics JSON written on shutdown
    metrics_out: Optional[Union[str, Path]] = None
    #: live hot-path metrics/spans even without file outputs
    observe: bool = False
    #: mirror this fraction of decide traffic to the canary (0 = off)
    canary_fraction: float = 0.0
    #: canary decision-boundary overrides (None = inherit the primary's)
    canary_tau: Optional[float] = None
    canary_alpha: Optional[float] = None
    #: canary policy override (None = inherit the primary's)
    canary_policy: Optional[str] = None
    #: seconds to wait for queues to empty on graceful shutdown
    drain_timeout: float = 10.0
    #: "ndjson" negotiates both wire formats (binary by magic-byte hello,
    #: the default); "binary" additionally rejects NDJSON decide/apply so
    #: the data plane is binary-only (control ops stay NDJSON-reachable)
    wire_format: str = "ndjson"
    #: per-shard online parameter adaptation (None / disabled = inert)
    control: Optional[ControlOptions] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.wire_format not in ("ndjson", "binary"):
            raise ValueError(
                "wire_format must be 'ndjson' or 'binary', "
                f"got {self.wire_format!r}"
            )
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {self.batch_max}")
        if self.batch_deadline_us < 0:
            raise ValueError(
                "batch_deadline_us must be >= 0, "
                f"got {self.batch_deadline_us}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
                )
            if self.checkpoint_dir is None:
                raise ValueError("checkpoint_every requires a checkpoint_dir")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume requires a checkpoint_dir")
        if not 0.0 <= self.canary_fraction <= 1.0:
            raise ValueError(
                "canary_fraction must be in [0, 1], "
                f"got {self.canary_fraction}"
            )
        if self.canary_fraction == 0.0 and (
            self.canary_tau is not None
            or self.canary_alpha is not None
            or self.canary_policy is not None
        ):
            raise ValueError(
                "canary parameter overrides require canary_fraction > 0"
            )

    @property
    def wants_control(self) -> bool:
        return self.control is not None and self.control.enabled

    def shard_checkpoint_path(self, index: int) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        return Path(self.checkpoint_dir) / f"shard-{index}.ckpt.json"

    def observability(self) -> Optional["Observability"]:
        """An Observability bundle when requested (outputs or ``observe``)."""
        if (
            self.trace_out is None
            and self.metrics_out is None
            and not self.observe
        ):
            return None
        from repro.obs.bundle import Observability

        return Observability.create(trace_out=self.trace_out)


@dataclass(kw_only=True)
class ClusterOptions:
    """A supervised multi-process MITOS cluster's configuration surface.

    One :class:`ClusterOptions` describes the whole fleet: N
    single-shard :class:`~repro.serve.server.MitosServer` processes
    (each owning one slice of the consistent-hash ring), the supervisor
    that health-checks and restarts them from their checkpoints, the
    gossip pump that spreads pollution estimates between live shards,
    and the client-side router's retry envelope.
    """

    host: str = "127.0.0.1"
    #: shard servers (= consistent-hash ring positions)
    shards: int = 3
    #: root directory for per-shard checkpoint dirs; None = a temporary
    #: directory owned (and removed) by the supervisor
    checkpoint_root: Optional[Union[str, Path]] = None
    #: propagation policy / decision-boundary knobs, per shard
    policy: str = "mitos"
    tau: float = 1.0
    alpha: float = 1.5
    quick_calibration: bool = False
    #: per-shard serve knobs (see :class:`ServeOptions`)
    queue_depth: int = 1024
    batch_max: int = 64
    batch_deadline_us: float = 250.0
    #: pin each shard process to one CPU (``os.sched_setaffinity``,
    #: round-robin over the cores): keeps every shard's caches and GIL
    #: to itself on multi-core hosts, no-op where unsupported
    pin_cpus: bool = True
    #: checkpoint a shard every N applied requests, so a SIGKILL loses
    #: at most N-1 requests of state
    checkpoint_every: int = 64
    drain_timeout: float = 10.0
    # -- supervision -------------------------------------------------------
    #: seconds between health probes of each shard
    health_interval: float = 0.25
    #: per-probe HTTP timeout
    health_timeout: float = 2.0
    #: consecutive failed probes of a live process before it is declared
    #: hung and killed
    hang_probes: int = 3
    #: pause before respawning a crashed shard
    restart_backoff: float = 0.1
    #: restarts per shard before the supervisor gives up on it
    max_restarts: int = 5
    #: max seconds to wait for a (re)spawned shard to report ready
    boot_timeout: float = 60.0
    # -- gossip ------------------------------------------------------------
    #: seconds between gossip rounds (None = gossip off)
    gossip_interval: Optional[float] = 0.5
    #: seeded per-message drop probability (the sim's loss_rate knob)
    gossip_loss_rate: float = 0.0
    gossip_seed: int = 0
    # -- router ------------------------------------------------------------
    #: per-request socket timeout on router connections
    request_timeout: float = 5.0
    #: retry attempts after the first try before degrading
    router_retries: int = 3
    #: exponential-backoff base / cap between router retries
    router_backoff: float = 0.05
    router_backoff_max: float = 1.0
    #: wire format for the shard servers' data plane and the router's
    #: client connections ("ndjson" | "binary"); gossip always rides
    #: NDJSON control connections either way
    wire_format: str = "ndjson"
    #: per-shard online parameter adaptation: each shard runs its own
    #: controller against its *believed* (local + gossiped) pollution,
    #: so gossip spreads the estimates the controllers steer by
    control: Optional[ControlOptions] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.wire_format not in ("ndjson", "binary"):
            raise ValueError(
                "wire_format must be 'ndjson' or 'binary', "
                f"got {self.wire_format!r}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.health_interval <= 0:
            raise ValueError(
                f"health_interval must be > 0, got {self.health_interval}"
            )
        if self.hang_probes < 1:
            raise ValueError(
                f"hang_probes must be >= 1, got {self.hang_probes}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.gossip_interval is not None and self.gossip_interval <= 0:
            raise ValueError(
                f"gossip_interval must be > 0, got {self.gossip_interval}"
            )
        # 1.0 is allowed (a fully-partitioned fleet), matching the
        # simulation's PollutionGossip loss_rate range
        if not 0.0 <= self.gossip_loss_rate <= 1.0:
            raise ValueError(
                "gossip_loss_rate must be in [0, 1], "
                f"got {self.gossip_loss_rate}"
            )
        if self.router_retries < 0:
            raise ValueError(
                f"router_retries must be >= 0, got {self.router_retries}"
            )

    def shard_checkpoint_dir(self, index: int) -> Optional[Path]:
        """Each shard server gets its own checkpoint directory."""
        if self.checkpoint_root is None:
            return None
        return Path(self.checkpoint_root) / f"shard-{index}"

    def shard_options(self, index: int) -> "ServeOptions":
        """The :class:`ServeOptions` one shard server runs with.

        Every shard is a single-shard server on ephemeral data + admin
        ports with ``resume=True``: a fresh boot finds no checkpoint
        and starts clean, a supervisor respawn restores the last
        atomically-written state.  Requires a resolved
        ``checkpoint_root`` (the supervisor substitutes a temporary
        directory when none was configured).
        """
        checkpoint_dir = self.shard_checkpoint_dir(index)
        if checkpoint_dir is None:
            raise ValueError(
                "shard_options requires checkpoint_root to be resolved"
            )
        return ServeOptions(
            host=self.host,
            port=0,
            admin_port=0,
            shards=1,
            queue_depth=self.queue_depth,
            batch_max=self.batch_max,
            batch_deadline_us=self.batch_deadline_us,
            # each shard owns its process, so process-global GC tuning
            # is safe and free throughput
            gc_freeze=True,
            policy=self.policy,
            tau=self.tau,
            alpha=self.alpha,
            quick_calibration=self.quick_calibration,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            resume=True,
            drain_timeout=self.drain_timeout,
            wire_format=self.wire_format,
            control=self.control,
        )


__all__ = [
    "ControlOptions",
    "ReplayOptions",
    "ServeOptions",
    "ClusterOptions",
]
