"""Joint scenarios: interleave several recordings into one system trace.

The paper's Section VI notes that PANDA's record-size limits "prevented
us from running complex evaluation scenarios, e.g., run multiple attacks
of benchmark scenarios jointly".  Our recordings have no such limit, so
this module builds the experiment the authors could not run: several
workloads (benchmarks and attacks) interleaved into one whole-system
trace.

Two pieces of bookkeeping make the merge sound:

* **Tag re-indexing** -- every workload allocates tags starting at index
  1, so ``netflow#1`` in two recordings are *different* logical tags with
  colliding IDs.  :func:`remap_tags` rewrites each recording's tags into
  a disjoint index range before merging.
* **Address-space placement** -- workloads share one machine address
  space by construction here (they were recorded against their own
  memories), so location collisions model shared-memory noise.  An
  optional per-recording ``location_offset`` relocates memory addresses
  to keep scenarios disjoint when that is not wanted.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dift.flows import FlowEvent
from repro.dift.shadow import Location
from repro.dift.tags import Tag
from repro.replay.record import Recording

TagKey = Tuple[str, int]


def remap_tags(
    recording: Recording, index_mapping: Dict[TagKey, Tag]
) -> Recording:
    """Rewrite a recording's tags through ``index_mapping`` (pure)."""
    events: List[FlowEvent] = []
    for event in recording:
        if event.tag is not None:
            events.append(replace(event, tag=index_mapping[event.tag.key]))
        else:
            events.append(event)
    return Recording(events=events, meta=dict(recording.meta))


def _collect_tag_keys(recording: Recording) -> List[TagKey]:
    seen: List[TagKey] = []
    for event in recording:
        if event.tag is not None and event.tag.key not in seen:
            seen.append(event.tag.key)
    return seen


def _relocate(location: Location, offset: int, register_ns: str = "") -> Location:
    if location[0] == "mem" and offset:
        return ("mem", location[1] + offset)  # type: ignore[operator]
    if location[0] == "reg" and register_ns:
        return ("reg", f"{register_ns}:{location[1]}")
    return location


def relocate_memory(
    recording: Recording, offset: int, register_namespace: str = ""
) -> Recording:
    """Shift memory locations by ``offset``; optionally namespace registers.

    ``register_namespace`` models per-process register files: an OS
    context switch saves and restores registers (and, in a taint-tracking
    system, their tags), so two interleaved scenarios must not read each
    other's live register taint.  :func:`interleave` namespaces every
    component by default.
    """
    if offset == 0 and not register_namespace:
        return recording
    events = [
        replace(
            event,
            destination=_relocate(event.destination, offset, register_namespace),
            sources=tuple(
                _relocate(s, offset, register_namespace) for s in event.sources
            ),
        )
        for event in recording
    ]
    return Recording(events=events, meta=dict(recording.meta))


def interleave(
    recordings: Sequence[Recording],
    chunk_size: int = 256,
    location_offsets: Optional[Sequence[int]] = None,
    virtualize_registers: bool = True,
) -> Recording:
    """Merge recordings into one trace with disjoint tag identities.

    Events are taken round-robin in chunks of ``chunk_size`` (modeling
    context switches between concurrently running scenarios), re-ticked
    to a single monotonic clock.  Tags are re-indexed into disjoint
    ranges; ``meta['tag_origin']`` records, for every remapped tag key,
    which source recording (by position) it came from.

    With ``virtualize_registers`` (the default) each component gets its
    own register namespace, modeling the taint save/restore a context
    switch performs; without it, components read each other's live
    register taint across switch points (cross-scenario interference).
    """
    if not recordings:
        return Recording()
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if location_offsets is not None and len(location_offsets) != len(recordings):
        raise ValueError("one location offset per recording required")

    # 1. disjoint tag identities
    next_index: Dict[str, int] = {}
    tag_origin: Dict[str, int] = {}
    prepared: List[Recording] = []
    for position, recording in enumerate(recordings):
        mapping: Dict[TagKey, Tag] = {}
        for tag_type, _old_index in _collect_tag_keys(recording):
            new_index = next_index.get(tag_type, 0) + 1
            next_index[tag_type] = new_index
            remapped = Tag(tag_type, new_index)
            mapping[(tag_type, _old_index)] = remapped
            tag_origin[f"{tag_type}#{new_index}"] = position
        remapped_recording = remap_tags(recording, mapping)
        offset = location_offsets[position] if location_offsets else 0
        namespace = f"c{position}" if virtualize_registers else ""
        remapped_recording = relocate_memory(
            remapped_recording, offset, register_namespace=namespace
        )
        prepared.append(remapped_recording)

    # 2. chunked round-robin interleave with a single monotonic clock
    cursors = [0] * len(prepared)
    merged: List[FlowEvent] = []
    tick = 0
    while any(cursors[i] < len(prepared[i].events) for i in range(len(prepared))):
        for i, recording in enumerate(prepared):
            start = cursors[i]
            stop = min(start + chunk_size, len(recording.events))
            for event in recording.events[start:stop]:
                merged.append(replace(event, tick=tick))
                tick += 1
            cursors[i] = stop

    meta = {
        "workload": "composite",
        "components": [dict(r.meta) for r in recordings],
        "chunk_size": chunk_size,
        "tag_origin": tag_origin,
    }
    return Recording(events=merged, meta=meta)
