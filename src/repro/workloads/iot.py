"""IoT fleet workload: many tiny tainted flows (the DDIFT scenario).

The paper's introduction points at DIFT for "various IoT platforms", and
the authors' DDIFT workshop paper (cited as [39]) considers decentralized
tag propagation for IoT privacy.  The traffic shape is the opposite of
the PassMark download: *many* short-lived netflow tags (one per sensor
report) funneling through a gateway that aggregates readings -- lots of
tag births, small copy counts, heavy tag-confluence on the aggregation
buffers.  This is the regime where tag-balancing matters most (no single
tag ever dominates) and where the distributed cluster sharding is
natural (one node per gateway).
"""

from __future__ import annotations

from repro.isa.devices import NetworkDevice
from repro.isa.programs import checksum_program, memcpy_program, network_download
from repro.replay.record import Recording
from repro.workloads.base import RecordingBuilder, Workload
from repro.workloads.calibration import MACHINE_MEMORY

REPORT_BUF = 0x1000
AGGREGATE_BUF = 0x3000
ARCHIVE_BUF = 0x5000


class IotFleet(Workload):
    """Sensor fleet reporting through aggregating gateways."""

    name = "iot-fleet"

    def __init__(
        self,
        seed: int = 0,
        sensors: int = 24,
        reports_per_sensor: int = 2,
        bytes_per_report: int = 16,
        gateways: int = 3,
    ):
        super().__init__(seed)
        if sensors < 1 or gateways < 1:
            raise ValueError("sensors and gateways must be >= 1")
        if bytes_per_report < 1:
            raise ValueError("bytes_per_report must be >= 1")
        self.sensors = sensors
        self.reports_per_sensor = reports_per_sensor
        self.bytes_per_report = bytes_per_report
        self.gateways = gateways

    def record(self) -> Recording:
        builder = RecordingBuilder(
            meta=self._meta(
                sensors=self.sensors,
                reports_per_sensor=self.reports_per_sensor,
                gateways=self.gateways,
            ),
            memory_size=MACHINE_MEMORY,
            share_memory=True,
        )
        n = self.bytes_per_report
        for report_round in range(self.reports_per_sensor):
            for sensor in range(self.sensors):
                gateway = sensor % self.gateways
                # each sensor connection gets its own netflow tag
                device = NetworkDevice(
                    self._payload(n),
                    builder.allocator,
                    origin=(f"sensor-{sensor}", 5683),
                )
                builder.run_program(
                    network_download(REPORT_BUF, n), devices={0: device}
                )
                # the gateway appends the report to its aggregation buffer;
                # aggregation slots rotate, so reports from many sensors
                # meet on the same bytes over time (tag confluence)
                slot = AGGREGATE_BUF + gateway * 0x400 + (
                    (report_round * 7 + sensor) % 8
                ) * n
                builder.run_program(memcpy_program(REPORT_BUF, slot, n))
                builder.run_program(checksum_program(slot, n))
            # end of round: each gateway archives its newest aggregate page
            for gateway in range(self.gateways):
                builder.run_program(
                    memcpy_program(
                        AGGREGATE_BUF + gateway * 0x400,
                        ARCHIVE_BUF + gateway * 0x400,
                        8 * n,
                    )
                )
        return builder.build()
