"""The file-system benchmark (Section V-B: "... and file-system benchmarks").

Read/transform/write churn across several files: each round streams a file
into memory (file tags), branches on its content (control dependencies --
a grep-like scan), transforms it, and writes it back out through another
file device.  File tags dominate, with control dependencies providing the
indirect-flow pressure.
"""

from __future__ import annotations

from repro.isa.devices import FileDevice
from repro.isa.programs import (
    memcpy_program,
    network_download,
    tainted_branch_copy,
)
from repro.replay.record import Recording
from repro.workloads.base import RecordingBuilder, Workload
from repro.workloads.calibration import MACHINE_MEMORY

READ_BUF = 0x2000
FLAG_BUF = 0x4000
WRITE_BUF = 0x6000


class FileSystemBenchmark(Workload):
    """File read/scan/write churn with control-dependency pressure."""

    name = "filesystem-benchmark"

    def __init__(
        self,
        seed: int = 0,
        files: int = 5,
        bytes_per_file: int = 160,
        rounds: int = 4,
    ):
        super().__init__(seed)
        self.files = files
        self.bytes_per_file = bytes_per_file
        self.rounds = rounds

    def record(self) -> Recording:
        builder = RecordingBuilder(
            meta=self._meta(files=self.files, rounds=self.rounds),
            memory_size=MACHINE_MEMORY,
            share_memory=True,
        )
        n = self.bytes_per_file
        for round_index in range(self.rounds):
            for file_index in range(self.files):
                device = FileDevice(
                    file_index + 1, self._payload(n), builder.allocator
                )
                # stream the file into memory (file-tag insertion); the
                # allocator dedups by file id, so re-reads of the same
                # file accumulate copies of one long-lived tag
                builder.run_program(
                    network_download(READ_BUF, n, port=1), devices={1: device}
                )
                # per-(round, file) staging slots: results accumulate
                slot = ((round_index * self.files + file_index) % 12) * n
                # grep-like scan: branch per byte (control dependencies)
                builder.run_program(
                    tainted_branch_copy(READ_BUF, FLAG_BUF + slot, n)
                )
                # copy into the write-back staging area
                builder.run_program(
                    memcpy_program(READ_BUF, WRITE_BUF + slot, n)
                )
                # write out through a destination file device
                sink = FileDevice(
                    100 + round_index * self.files + file_index,
                    b"",
                    builder.allocator,
                )
                builder.run_program(
                    _file_writeback(WRITE_BUF + slot, n, port=2),
                    devices={2: sink},
                )
        return builder.build()


def _file_writeback(src_addr: int, length: int, port: int):
    """Stream ``length`` bytes from memory out through a file device."""
    from repro.isa.assembler import assemble

    return assemble(
        f"""
        ; write-back loop: memory -> file device
        movi r0, {src_addr}
        movi r2, {length}
        movi r8, 1
loop:   beq  r2, r7, done
        lb   r4, r0, 0
        out  r4, {port}
        addi r0, r0, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )
