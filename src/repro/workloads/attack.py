"""The in-memory-only attack scenarios (Section V-C).

The paper implements Metasploit Meterpreter reverse shells and performs a
remote reflective DLL injection into ``calculator.exe``, then compares
stock FAROS against MITOS-handling-all-flows.  The attack hallmark is a
tag confluence: payload bytes arrive from the Internet (*netflow* tag) and
are then touched by linking/loading machinery (*export-table* tag); FAROS
"flags the attack when these two tags come together on a byte".

Our simulation reproduces the exact flow structure:

1. **Loader metadata** -- export-table regions are pre-tagged with
   *export_table* tags (one per module), as FAROS tags the kernel
   linking/loading area.
2. **Background activity** -- benign downloads copied around repeatedly,
   giving benign tags large copy counts.  This is what stock FAROS
   "aggressively propagates" and what MITOS learns to block.
3. **Stager download** -- the encoded payload arrives over a network
   device (*netflow* tag, attacker origin).
4. **Decode stage** -- per shell variant: plain copy, constant-XOR,
   table decode (https), XOR+table (https proxy), RC4-like (rc4), or
   RC4+table (rc4 dns).  Table/RC4 decodes move information *only through
   address dependencies*: DFP-only DIFT loses the netflow taint here.
5. **Reflective injection** -- the decoded payload is copied into the
   victim process region and its import table is patched: each IAT slot
   receives ``export_entry + payload_offset``, a computation combining an
   export-table-tagged byte with a payload byte.  Bytes holding both tags
   are exactly what the detector counts.

Six variants, as in the paper's Table II run ("we ran six Metasploit
shells and show the average performance").
"""

from __future__ import annotations

from repro.dift.shadow import mem
from repro.dift.tags import TagTypes
from repro.isa.assembler import assemble
from repro.isa.devices import NetworkDevice
from repro.isa.instructions import Program
from repro.isa.programs import (
    lookup_table_translate,
    memcpy_program,
    network_download,
    rc4_like_decode,
)
from repro.replay.record import Recording
from repro.workloads.base import RecordingBuilder, Workload
from repro.workloads.calibration import MACHINE_MEMORY

#: the six Meterpreter shell variants
ATTACK_VARIANTS = (
    "reverse_tcp",
    "reverse_http",
    "reverse_https",
    "reverse_https_proxy",
    "reverse_tcp_rc4",
    "reverse_tcp_rc4_dns",
)

#: attack address-space map
EXPORTS_ADDR = 0x0200     # loader export tables (pre-tagged export_table)
DECODE_TABLE = 0x0300     # charset/sbox table used by encoded stagers
DOWNLOAD_BUF = 0x1000     # raw stager bytes off the wire
STAGE_BUF = 0x2000        # intermediate decode buffer
DECODED_BUF = 0x3000      # plaintext payload
VICTIM_REGION = 0x4800    # victim process address space (calculator.exe)
NOISE_BUF = 0x7000        # benign background traffic buffers

#: IAT patching stride: one import slot every 8 payload bytes
IMPORT_STRIDE = 8


def xor_decode(src_addr: int, dst_addr: int, length: int, key: int) -> Program:
    """Constant-key XOR decode: information flows via computation deps."""
    return assemble(
        f"""
        ; constant-xor decode (direct flows only)
        movi r0, {src_addr}
        movi r1, {dst_addr}
        movi r2, {length}
        movi r8, 1
        movi r9, {key}
loop:   beq  r2, r7, done
        lb   r4, r0, 0
        xor  r4, r4, r9
        sb   r4, r1, 0
        addi r0, r0, 1
        addi r1, r1, 1
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


def iat_patch(
    payload_addr: int,
    victim_addr: int,
    exports_addr: int,
    imports: int,
    stride: int = IMPORT_STRIDE,
) -> Program:
    """Reflective-loader import resolution.

    For every import slot, read an offset byte from the payload, look up
    the export entry it indexes (tainted-address load against the export
    table), compute the resolved address ``entry + offset``, and write it
    into the victim's IAT slot.  The stored byte carries the export-table
    tag (via the entry) and -- when the decode stage preserved it -- the
    payload's netflow tag (via the offset), producing the confluence the
    detector fires on.
    """
    return assemble(
        f"""
        ; reflective DLL injection: IAT patching
        movi r0, {payload_addr}
        movi r1, {victim_addr}
        movi r2, {imports}
        movi r3, {exports_addr}
        movi r8, 1
        movi r10, {stride}
loop:   beq  r2, r7, done
        lb   r4, r0, 0      ; import-name offset byte (payload)
        add  r5, r3, r4     ; export table + offset
        lb   r6, r5, 0      ; export entry (export_table tag; addr dep)
        add  r6, r6, r4     ; resolved address = entry + offset
        sb   r6, r1, 0      ; patch the IAT slot in the victim
        add  r0, r0, r10
        add  r1, r1, r10
        sub  r2, r2, r8
        jmp  loop
done:   halt
        """
    )


class InMemoryAttack(Workload):
    """One recorded attack session for one shell variant."""

    name = "in-memory-attack"

    def __init__(
        self,
        variant: str = "reverse_tcp",
        seed: int = 0,
        payload_bytes: int = 192,
        imports: int = 24,
        noise_bytes: int = 512,
        noise_rounds: int = 10,
        export_modules: int = 4,
        export_bytes_per_module: int = 64,
    ):
        super().__init__(seed)
        if variant not in ATTACK_VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {ATTACK_VARIANTS}"
            )
        if imports * IMPORT_STRIDE > payload_bytes:
            raise ValueError(
                f"{imports} imports at stride {IMPORT_STRIDE} exceed "
                f"payload of {payload_bytes} bytes"
            )
        self.variant = variant
        self.payload_bytes = payload_bytes
        self.imports = imports
        self.noise_bytes = noise_bytes
        self.noise_rounds = noise_rounds
        self.export_modules = export_modules
        self.export_bytes_per_module = export_bytes_per_module

    def record(self) -> Recording:
        builder = RecordingBuilder(
            meta=self._meta(
                variant=self.variant,
                payload_bytes=self.payload_bytes,
                imports=self.imports,
            ),
            memory_size=MACHINE_MEMORY,
            share_memory=True,
        )
        assert builder.memory is not None
        self._setup_loader_metadata(builder)
        self._background_noise(builder)
        self._stager_download(builder)
        self._decode(builder)
        self._inject(builder)
        return builder.build()

    # -- stages ---------------------------------------------------------------

    def _setup_loader_metadata(self, builder: RecordingBuilder) -> None:
        """Export tables in the linking/loading area, pre-tagged per module."""
        assert builder.memory is not None
        span = self.export_bytes_per_module
        for module in range(self.export_modules):
            tag = builder.allocator.fresh(
                TagTypes.EXPORT_TABLE, origin=("module", module)
            )
            base = EXPORTS_ADDR + module * span
            builder.memory.write_bytes(base, self._payload(span))
            for offset in range(span):
                builder.insert_tag(mem(base + offset), tag, context="loader.map")
        # decode table (sbox / charset) used by the encoded stagers
        builder.memory.write_bytes(
            DECODE_TABLE, bytes((i * 17 + 11) % 256 for i in range(256))
        )

    def _background_noise(self, builder: RecordingBuilder) -> None:
        """Benign traffic whose tags saturate; FAROS keeps copying them."""
        device = NetworkDevice(
            self._payload(self.noise_bytes),
            builder.allocator,
            origin=("172.16.0.9", 80),
        )
        builder.run_program(
            network_download(NOISE_BUF, self.noise_bytes), devices={0: device}
        )
        for round_index in range(self.noise_rounds):
            destination = NOISE_BUF + 0x800 * (1 + round_index % 5)
            builder.run_program(
                memcpy_program(NOISE_BUF, destination, self.noise_bytes)
            )

    def _stager_download(self, builder: RecordingBuilder) -> None:
        device = NetworkDevice(
            self._payload(self.payload_bytes),
            builder.allocator,
            origin=("203.0.113.66", 4444),  # the attacker's C2
        )
        builder.run_program(
            network_download(DOWNLOAD_BUF, self.payload_bytes),
            devices={0: device},
        )

    def _decode(self, builder: RecordingBuilder) -> None:
        n = self.payload_bytes
        if self.variant == "reverse_tcp":
            builder.run_program(memcpy_program(DOWNLOAD_BUF, DECODED_BUF, n))
        elif self.variant == "reverse_http":
            builder.run_program(xor_decode(DOWNLOAD_BUF, DECODED_BUF, n, 0x5A))
        elif self.variant == "reverse_https":
            builder.run_program(
                lookup_table_translate(DOWNLOAD_BUF, DECODE_TABLE, DECODED_BUF, n)
            )
        elif self.variant == "reverse_https_proxy":
            builder.run_program(xor_decode(DOWNLOAD_BUF, STAGE_BUF, n, 0x3C))
            builder.run_program(
                lookup_table_translate(STAGE_BUF, DECODE_TABLE, DECODED_BUF, n)
            )
        elif self.variant == "reverse_tcp_rc4":
            builder.run_program(
                rc4_like_decode(DOWNLOAD_BUF, DECODED_BUF, n, DECODE_TABLE)
            )
        else:  # reverse_tcp_rc4_dns
            builder.run_program(
                rc4_like_decode(DOWNLOAD_BUF, STAGE_BUF, n, DECODE_TABLE)
            )
            builder.run_program(
                lookup_table_translate(STAGE_BUF, DECODE_TABLE, DECODED_BUF, n)
            )

    def _inject(self, builder: RecordingBuilder) -> None:
        n = self.payload_bytes
        # copy the decoded payload into the victim's address space
        builder.run_program(memcpy_program(DECODED_BUF, VICTIM_REGION, n))
        # resolve imports against the loader's export tables
        builder.run_program(
            iat_patch(
                DECODED_BUF,
                VICTIM_REGION,
                EXPORTS_ADDR,
                self.imports,
            )
        )


def record_all_variants(seed: int = 0, **kwargs) -> dict:
    """One recording per shell variant (Table II averages over these)."""
    return {
        variant: InMemoryAttack(variant=variant, seed=seed, **kwargs).record()
        for variant in ATTACK_VARIANTS
    }
