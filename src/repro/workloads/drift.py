"""Drifting composite workload: the adaptation benchmark's input.

A fixed decision boundary is calibrated for one operating point; the
controller exists for traces whose taint mix *drifts* away from it.
This module builds such a trace from the existing workloads:

* a short in-memory **attack** (the detection target -- recall against
  it is what over-aggressive blocking would cost),
* a modest **calm** network phase (the operating point a fixed boundary
  is comfortable at),
* a long **flood** phase -- a heavy-hitter network benchmark several
  times the size of the others, ramping tag copies (and with them the
  pollution the over-taint term charges for) well past the calm phase.

The three are merged with :func:`~repro.workloads.composite.interleave`,
whose chunked round-robin exhausts the short components first: the head
of the trace mixes attack + calm + flood, the long tail is flood-only.
The result is a single recording whose pollution pressure *rises over
replay time* -- exactly the shape where a fixed boundary over-pollutes
and an online controller (:mod:`repro.control`) can steer back to
budget.  Deterministic for a given ``seed``.
"""

from __future__ import annotations

from repro.replay.record import Recording
from repro.workloads.composite import interleave


def drifting_recording(seed: int = 0, quick: bool = False) -> Recording:
    """One drifting trace: attack + calm network head, flood tail."""
    from repro.workloads.attack import InMemoryAttack
    from repro.workloads.network import NetworkBenchmark

    if quick:
        attack = InMemoryAttack(
            variant="reverse_tcp", seed=seed,
            payload_bytes=96, imports=12, noise_bytes=192, noise_rounds=4,
        )
        calm = NetworkBenchmark(
            seed=seed + 1, connections=2, bytes_per_connection=48, rounds=1,
            config_files=1, bytes_per_file=24, heavy_hitter=False,
        )
        flood = NetworkBenchmark(
            seed=seed + 2, connections=5, bytes_per_connection=96, rounds=1,
            config_files=1, bytes_per_file=48, heavy_hitter=True,
        )
        chunk = 64
    else:
        attack = InMemoryAttack(variant="reverse_tcp", seed=seed)
        calm = NetworkBenchmark(
            seed=seed + 1, connections=4, bytes_per_connection=512, rounds=1,
            config_files=2, bytes_per_file=128, heavy_hitter=False,
        )
        flood = NetworkBenchmark(
            seed=seed + 2, connections=16, bytes_per_connection=2048,
            rounds=4, config_files=4, bytes_per_file=512, heavy_hitter=True,
        )
        chunk = 256
    recording = interleave(
        [attack.record(), calm.record(), flood.record()], chunk_size=chunk
    )
    recording.meta["workload"] = "drift"
    recording.meta["seed"] = seed
    recording.meta["quick"] = quick
    return recording


__all__ = ["drifting_recording"]
