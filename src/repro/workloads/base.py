"""Workload framework: seeded generators that produce replayable recordings.

The paper records each workload once (a one-minute PassMark run, a
Metasploit attack session) and replays it many times under different MITOS
parameter points.  A :class:`Workload` here does the same: :meth:`record`
runs seeded ISA programs against taint-source devices and captures a
:class:`~repro.replay.record.Recording` that every configuration then
replays bit-identically.

:class:`RecordingBuilder` handles the mechanics: monotonically advancing
ticks across program runs, an optionally shared memory image for
multi-stage scenarios, and direct tag-insertion events for pre-tagged
regions (e.g. loader metadata carrying export-table tags).
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, Mapping, Optional

from repro.dift import flows
from repro.dift.shadow import Location
from repro.dift.tags import Tag, TagAllocator
from repro.isa.devices import Device
from repro.isa.instructions import Program
from repro.isa.machine import Machine
from repro.isa.memory import Memory
from repro.replay.record import Recording


class RecordingBuilder:
    """Accumulates flow events from programs and manual insertions."""

    def __init__(
        self,
        meta: Optional[Dict[str, object]] = None,
        memory_size: int = 1 << 16,
        share_memory: bool = False,
    ):
        self.recording = Recording(meta=dict(meta or {}))
        self.allocator = TagAllocator()
        self._tick = 0
        self._memory_size = memory_size
        self._shared_memory: Optional[Memory] = (
            Memory(memory_size) if share_memory else None
        )

    @property
    def tick(self) -> int:
        return self._tick

    @property
    def memory(self) -> Optional[Memory]:
        """The shared memory image, when ``share_memory=True``."""
        return self._shared_memory

    def insert_tag(
        self, location: Location, tag: Tag, context: str = "pretag"
    ) -> None:
        """Emit a direct tag-insertion event (pre-tagged regions)."""
        self.recording.append(
            flows.insert(location, tag, tick=self._tick, context=context)
        )
        self._tick += 1

    def run_program(
        self,
        program: Program,
        devices: Optional[Mapping[int, Device]] = None,
        memory_setup: Optional[Callable[[Machine], None]] = None,
        max_steps: int = 2_000_000,
    ) -> Machine:
        """Execute a program, appending its events to the recording.

        With ``share_memory=True`` every program sees (and mutates) the
        same address space, so multi-stage scenarios compose naturally.
        Note that ``program.data`` images are written into the shared
        memory at machine construction.
        """
        machine = Machine(
            program,
            memory_size=self._memory_size,
            devices=dict(devices or {}),
            event_sink=self.recording.append,
            max_steps=max_steps,
            start_tick=self._tick,
            memory=self._shared_memory,
        )
        if memory_setup is not None:
            memory_setup(machine)
        machine.run()
        self._tick = machine.tick
        return machine

    def build(self) -> Recording:
        self.recording.meta.setdefault("duration_ticks", self._tick)
        return self.recording


class Workload(abc.ABC):
    """A seeded, reproducible scenario that records to a flow-event trace."""

    name: str = "workload"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)

    @abc.abstractmethod
    def record(self) -> Recording:
        """Generate the recording (deterministic for a given seed)."""

    def _payload(self, length: int) -> bytes:
        """Seeded pseudo-random payload bytes."""
        return bytes(self.rng.randrange(256) for _ in range(length))

    def _meta(self, **extra: object) -> Dict[str, object]:
        payload: Dict[str, object] = {"workload": self.name, "seed": self.seed}
        payload.update(extra)
        return payload
