"""Workload generators: PassMark-like benchmarks, attacks, joint scenarios."""

from repro.workloads.base import RecordingBuilder, Workload
from repro.workloads.calibration import benchmark_params, calibrated_tau_scale
from repro.workloads.network import NetworkBenchmark
from repro.workloads.cpu import CpuBenchmark
from repro.workloads.filesystem import FileSystemBenchmark
from repro.workloads.attack import ATTACK_VARIANTS, InMemoryAttack
from repro.workloads.composite import interleave, relocate_memory, remap_tags
from repro.workloads.iot import IotFleet

__all__ = [
    "Workload",
    "RecordingBuilder",
    "benchmark_params",
    "calibrated_tau_scale",
    "NetworkBenchmark",
    "CpuBenchmark",
    "FileSystemBenchmark",
    "InMemoryAttack",
    "ATTACK_VARIANTS",
    "interleave",
    "remap_tags",
    "relocate_memory",
    "IotFleet",
]
