"""The CPU benchmark (Section V-B: "we also ran CPU ... benchmarks").

Arithmetic-heavy kernels over process-memory inputs: checksums, xor
mixing, and small table-driven transforms.  Taint enters as *process*
tags (bytes read from another process's address space), flows dominated
by computation dependencies with a minority of address dependencies.
"""

from __future__ import annotations

from repro.dift.shadow import mem
from repro.dift.tags import TagTypes
from repro.isa.programs import (
    checksum_program,
    lookup_table_translate,
    rc4_like_decode,
)
from repro.replay.record import Recording
from repro.workloads.base import RecordingBuilder, Workload
from repro.workloads.calibration import MACHINE_MEMORY

TABLE_ADDR = 0x0100
INPUT_BUF = 0x2000
WORK_BUF = 0x4000


class CpuBenchmark(Workload):
    """Arithmetic kernel mix over process-tagged inputs."""

    name = "cpu-benchmark"

    def __init__(
        self,
        seed: int = 0,
        processes: int = 4,
        bytes_per_process: int = 192,
        rounds: int = 3,
    ):
        super().__init__(seed)
        self.processes = processes
        self.bytes_per_process = bytes_per_process
        self.rounds = rounds

    def record(self) -> Recording:
        builder = RecordingBuilder(
            meta=self._meta(processes=self.processes, rounds=self.rounds),
            memory_size=MACHINE_MEMORY,
            share_memory=True,
        )
        assert builder.memory is not None
        builder.memory.write_bytes(
            TABLE_ADDR, bytes((i * 13 + 5) % 256 for i in range(256))
        )
        n = self.bytes_per_process
        for pid_index in range(self.processes):
            # bytes mapped in from another process: tag insertion + data
            tag = builder.allocator.fresh(
                TagTypes.PROCESS, origin=("pid", 3000 + pid_index)
            )
            data = self._payload(n)
            builder.memory.write_bytes(INPUT_BUF + pid_index * n, data)
            for offset in range(n):
                builder.insert_tag(
                    mem(INPUT_BUF + pid_index * n + offset), tag, context="proc.map"
                )
        for round_index in range(self.rounds):
            for pid_index in range(self.processes):
                src = INPUT_BUF + pid_index * n
                # per-round output slots: long-lived results accumulate, so
                # hot process tags build up the copy counts the decision
                # boundary discriminates on
                slot = WORK_BUF + ((round_index * self.processes + pid_index) % 16) * n
                builder.run_program(checksum_program(src, n))
                builder.run_program(
                    lookup_table_translate(src, TABLE_ADDR, slot, n)
                )
                builder.run_program(
                    rc4_like_decode(slot, slot + 0x2000, n, TABLE_ADDR)
                )
        return builder.build()
