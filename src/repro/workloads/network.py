"""The network benchmark (Section V-B's one-minute PassMark download).

"The guest acts as a client and downloaded several megabytes of data from
a remote server."  Scaled to the simulator: several connections each
download a payload, decode it through a lookup table (charset/format
conversion -- Fig. 1's address-dependency shape), checksum it
(computation deps), and copy it into a shared cache region (copy deps).
A sprinkle of configuration-file reads adds *file* tags so tag types
compete, and repeated cache copies give long-lived tags large copy counts
-- the raw material of the fairness and tag-importance sweeps.
"""

from __future__ import annotations

from repro.isa.devices import FileDevice, NetworkDevice
from repro.isa.programs import (
    checksum_program,
    lookup_table_translate,
    memcpy_program,
    network_download,
)
from repro.replay.record import Recording
from repro.workloads.base import RecordingBuilder, Workload
from repro.workloads.calibration import MACHINE_MEMORY

#: memory map of the benchmark address space
TABLE_ADDR = 0x0100
DOWNLOAD_BUF = 0x1000
DECODED_BUF = 0x3000
CACHE_REGION = 0x5000
FILE_BUF = 0x8000


class NetworkBenchmark(Workload):
    """PassMark-like network client workload."""

    name = "network-benchmark"

    def __init__(
        self,
        seed: int = 0,
        connections: int = 6,
        bytes_per_connection: int = 256,
        rounds: int = 3,
        config_files: int = 2,
        bytes_per_file: int = 96,
        heavy_hitter: bool = True,
    ):
        super().__init__(seed)
        if connections < 1:
            raise ValueError("connections must be >= 1")
        if bytes_per_connection < 1 or bytes_per_connection > 0x1000:
            raise ValueError("bytes_per_connection must be in [1, 4096]")
        self.connections = connections
        self.bytes_per_connection = bytes_per_connection
        self.rounds = rounds
        self.config_files = config_files
        self.bytes_per_file = bytes_per_file
        #: a persistent CDN-like connection whose single tag accumulates
        #: thousands of copies across rounds -- the "over-propagated tag"
        #: population that the tau/alpha sweeps discriminate against
        self.heavy_hitter = heavy_hitter

    def record(self) -> Recording:
        builder = RecordingBuilder(
            meta=self._meta(
                connections=self.connections,
                bytes_per_connection=self.bytes_per_connection,
                rounds=self.rounds,
            ),
            memory_size=MACHINE_MEMORY,
            share_memory=True,
        )
        table = bytes((i * 31 + 7) % 256 for i in range(256))
        assert builder.memory is not None
        builder.memory.write_bytes(TABLE_ADDR, table)

        for round_index in range(self.rounds):
            if self.heavy_hitter:
                self._heavy_hitter_round(builder, round_index)
            for conn in range(self.connections):
                self._one_connection(builder, round_index, conn)
            for file_index in range(self.config_files):
                self._one_config_file(builder, file_index)
        return builder.build()

    def _heavy_hitter_round(
        self, builder: RecordingBuilder, round_index: int
    ) -> None:
        """One round of the persistent connection: same tag every round
        (the allocator dedups by origin), fanned out by table decode to
        several cache slots.  The decode moves information only through
        address dependencies, so the tag's multi-thousand-copy fan-out is
        entirely under the IFP policy's control -- the over-propagated
        population the tau/alpha sweeps discriminate against."""
        n = self.bytes_per_connection
        device = NetworkDevice(
            self._payload(n), builder.allocator, origin=("203.0.113.10", 443)
        )
        builder.run_program(network_download(DOWNLOAD_BUF, n), devices={0: device})
        for slot in range(4):
            destination = CACHE_REGION + 0x1800 + (round_index * 4 + slot) % 8 * n
            builder.run_program(
                lookup_table_translate(DOWNLOAD_BUF, TABLE_ADDR, destination, n)
            )

    def _one_connection(
        self, builder: RecordingBuilder, round_index: int, conn: int
    ) -> None:
        n = self.bytes_per_connection
        origin = (f"10.0.{round_index}.{conn + 1}", 443)
        device = NetworkDevice(self._payload(n), builder.allocator, origin=origin)
        builder.run_program(network_download(DOWNLOAD_BUF, n), devices={0: device})
        builder.run_program(
            lookup_table_translate(DOWNLOAD_BUF, TABLE_ADDR, DECODED_BUF, n)
        )
        builder.run_program(checksum_program(DECODED_BUF, n))
        # the decoded content lands in the cache at a connection-specific
        # offset; later rounds overwrite earlier cache entries
        cache_offset = CACHE_REGION + (conn % 4) * n
        builder.run_program(memcpy_program(DECODED_BUF, cache_offset, n))

    def _one_config_file(self, builder: RecordingBuilder, file_index: int) -> None:
        n = self.bytes_per_file
        device = FileDevice(
            file_index + 10, self._payload(n), builder.allocator
        )
        builder.run_program(
            network_download(FILE_BUF, n, port=1), devices={1: device}
        )
        builder.run_program(
            memcpy_program(FILE_BUF, CACHE_REGION + 0x1000 + file_index * n, n)
        )
