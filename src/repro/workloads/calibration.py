"""Tau normalization for simulator-scale systems.

The paper evaluates on a 4 GB guest (``N_R ~ 4e10`` provenance slots) and
notes that "all tau values are normalized up to the power of 10^6".  That
constant is tied to their machine scale: the published Eq. 8 overtainting
submarginal ``tau_eff * beta * (P/N_R)**(beta-1)`` only bites when
``tau_eff`` compensates for the tiny pollution fraction ``P/N_R``.

Our substrate runs with kilobyte-scale memories, so the equivalent
normalization must be recomputed.  :func:`calibrated_tau_scale` makes the
choice explicit: pick the copy count ``n*`` at which a unit-weight tag's
marginal cost crosses zero at a reference pollution fraction ``f`` --
i.e. solve ``u * n***-alpha = tau * scale * beta * f**(beta-1)`` for
``scale``.  Tags rarer than ``n*`` keep propagating; tags more common than
``n*`` are blocked.  Sweeping ``tau`` then moves the crossover exactly as
Fig. 7 describes.
"""

from __future__ import annotations

from repro.core.params import MitosParams


def calibrated_tau_scale(
    crossover_copies: float,
    pollution_fraction: float,
    alpha: float = 1.5,
    beta: float = 2.0,
    tau: float = 1.0,
    u: float = 1.0,
) -> float:
    """The ``tau_scale`` putting the decision boundary at ``crossover_copies``.

    Parameters
    ----------
    crossover_copies:
        Copy count ``n*`` at which the marginal cost is exactly zero (for
        ``tau``, at the reference pollution).  Rarer tags propagate.
    pollution_fraction:
        Reference ``P / N_R`` at which to calibrate (a mid-run value for
        the intended workload).
    """
    if crossover_copies <= 0:
        raise ValueError(f"crossover_copies must be positive, got {crossover_copies}")
    if not 0 < pollution_fraction <= 1:
        raise ValueError(
            f"pollution_fraction must be in (0, 1], got {pollution_fraction}"
        )
    if tau <= 0:
        raise ValueError(f"tau must be positive for calibration, got {tau}")
    under_magnitude = u * crossover_copies ** (-alpha)
    over_unit = beta * pollution_fraction ** (beta - 1.0)
    return under_magnitude / (tau * over_unit)


#: memory size shared by the benchmark machines (one 64 KiB address space)
MACHINE_MEMORY = 1 << 16

#: reference pollution fraction used to calibrate benchmark parameter sets;
#: mid-run pollution of the network benchmark is a few thousand entries out
#: of N_R = 655,360.
REFERENCE_POLLUTION_FRACTION = 0.005

#: default decision boundary: tags with fewer copies keep propagating at
#: tau = 1.  Attack tags (hundreds of copies) stay below it; saturated
#: background tags (thousands of copies) sit above it.
REFERENCE_CROSSOVER_COPIES = 1200.0


def benchmark_params(
    tau: float = 1.0,
    alpha: float = 1.5,
    beta: float = 2.0,
    crossover_copies: float = REFERENCE_CROSSOVER_COPIES,
    pollution_fraction: float = REFERENCE_POLLUTION_FRACTION,
    M_prov: int = 10,
    calibration_alpha: float = 1.5,
    **extra: object,
) -> MitosParams:
    """Paper-default parameters calibrated to the simulator scale.

    The calibration is performed once at ``tau = 1`` and at the *reference*
    ``calibration_alpha`` (the paper default 1.5) rather than at the swept
    ``alpha``: this mirrors the paper, whose "normalized up to the power of
    10^6" constant stays fixed while alpha/tau are swept.  Sweeping ``tau``
    therefore moves the decision boundary (Fig. 7) and sweeping ``alpha``
    changes the fairness curvature (Fig. 8) instead of being cancelled by
    recalibration.  ``beta`` *is* used in calibration so that steeper
    penalties stay in the operating regime.
    """
    scale = calibrated_tau_scale(
        crossover_copies,
        pollution_fraction,
        alpha=calibration_alpha,
        beta=beta,
        tau=1.0,
    )
    return MitosParams(
        alpha=alpha,
        beta=beta,
        tau=tau,
        tau_scale=scale,
        R=MACHINE_MEMORY,
        M_prov=M_prov,
        **extra,  # type: ignore[arg-type]
    )
