"""FAROS/MITOS system configuration.

Two canonical configurations cover the paper's Table II comparison:

* :func:`stock_faros_config` -- "propagating aggressively all direct flows
  and no indirect flows, as suggested in various DIFT systems including
  FAROS",
* :func:`mitos_config` -- MITOS deciding indirect flows via Algorithm 2;
  with ``all_flows=True`` it is the generalized Section V-C mode where
  direct flows are weighed too (``is_IFP`` replaced by
  ``is_DFP_or_IFP``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

from repro.core.params import MitosParams
from repro.core.policy import (
    KindFilteredPolicy,
    MitosPolicy,
    PropagateAllPolicy,
    PropagateNonePolicy,
    PropagationPolicy,
    RandomPolicy,
    ThresholdPolicy,
)
from repro.dift.provenance import SchedulingPolicy
from repro.dift.tags import TagTypes

#: registry of policy names accepted by FarosConfig.policy
POLICY_NAMES = (
    "mitos",
    "propagate-all",
    "propagate-none",
    "threshold",
    "random",
    "address-only",
    "control-only",
    "mitos-address-only",
)


@dataclass
class FarosConfig:
    """Declarative configuration for one FAROS/MITOS system instance."""

    params: MitosParams = field(default_factory=MitosParams)
    #: one of POLICY_NAMES
    policy: str = "mitos"
    #: Section V-C generalized mode: route direct flows through the policy
    direct_via_policy: bool = False
    scheduling: SchedulingPolicy = SchedulingPolicy.FIFO
    #: tag types whose confluence raises an alert; None disables detection
    detector_types: Optional[FrozenSet[str]] = frozenset(
        {TagTypes.NETFLOW, TagTypes.EXPORT_TABLE}
    )
    #: capture a per-decision timeline (Fig. 7 data; costs memory)
    log_timeline: bool = False
    #: threshold for policy="threshold"
    threshold_max_copies: int = 100
    #: probability/seed for policy="random"
    random_probability: float = 0.5
    random_seed: int = 0
    #: shed lowest-utility tags when entries exceed this fraction of N_R
    #: (None = unbounded growth, the original behaviour)
    degrade_at: Optional[float] = None
    #: replay execution strategy: "scalar" (per-event loop) or "vector"
    #: (columnar batch engine, byte-identical; see repro.vector)
    engine: str = "scalar"
    #: label used in experiment reports
    label: str = ""

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICY_NAMES}"
            )
        if self.engine not in ("scalar", "vector"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected 'scalar' or "
                "'vector'"
            )
        if not self.label:
            self.label = self.policy

    def build_policy(self) -> PropagationPolicy:
        """Instantiate the configured propagation policy."""
        if self.policy == "mitos":
            return MitosPolicy(
                self.params, vector_seed=(self.engine == "vector")
            )
        if self.policy == "propagate-all":
            return PropagateAllPolicy()
        if self.policy == "propagate-none":
            return PropagateNonePolicy()
        if self.policy == "threshold":
            return ThresholdPolicy(self.threshold_max_copies)
        if self.policy == "address-only":
            # Minos-style: handle address dependencies, never control
            return KindFilteredPolicy(
                PropagateAllPolicy(), allowed_kinds={"address_dep"}
            )
        if self.policy == "control-only":
            return KindFilteredPolicy(
                PropagateAllPolicy(), allowed_kinds={"control_dep"}
            )
        if self.policy == "mitos-address-only":
            return KindFilteredPolicy(
                MitosPolicy(self.params), allowed_kinds={"address_dep"}
            )
        return RandomPolicy(self.random_probability, self.random_seed)


def stock_faros_config(
    params: Optional[MitosParams] = None, **overrides: object
) -> FarosConfig:
    """Stock FAROS: all direct flows, no indirect flows."""
    return FarosConfig(
        params=params or MitosParams(),
        policy="propagate-none",
        direct_via_policy=False,
        label="faros",
        **overrides,  # type: ignore[arg-type]
    )


def mitos_config(
    params: Optional[MitosParams] = None,
    all_flows: bool = False,
    **overrides: object,
) -> FarosConfig:
    """MITOS on FAROS; ``all_flows=True`` is the Section V-C case-study mode."""
    return FarosConfig(
        params=params or MitosParams(),
        policy="mitos",
        direct_via_policy=all_flows,
        label="mitos-all" if all_flows else "mitos",
        **overrides,  # type: ignore[arg-type]
    )
