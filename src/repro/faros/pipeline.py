"""Fig. 6 pipeline stages: the is_DFP / is_IFP filters.

The paper's architecture routes every replayed instruction through two
filters: ``is_DFP`` selects direct-flow instructions (handled by FAROS's
unconditional propagation), ``is_IFP`` selects address/control
dependencies (handled by MITOS's Algorithm 2).  The generalized case study
replaces ``is_IFP`` with ``is_DFP_or_IFP`` so MITOS weighs everything.

:class:`FarosPipeline` is the replayer plugin realizing those stages,
keeping per-stage counters so experiments can report how much work each
stage saw.
"""

from __future__ import annotations

from typing import Dict

from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.tracker import DIFTTracker
from repro.replay.record import Recording
from repro.replay.replayer import Plugin


def is_dfp(event: FlowEvent) -> bool:
    """Direct flow propagation: copy or computation dependency."""
    return event.kind.is_direct


def is_ifp(event: FlowEvent) -> bool:
    """Indirect flow propagation: address or control dependency."""
    return event.kind.is_indirect


def is_dfp_or_ifp(event: FlowEvent) -> bool:
    """Section V-C filter: any propagating flow (direct or indirect)."""
    return event.kind.is_direct or event.kind.is_indirect


class FarosPipeline(Plugin):
    """Replayer plugin wiring the Fig. 6 stages to a DIFT tracker.

    Stage counters mirror the figure: (3) is_DFP hits, (4) is_IFP hits,
    plus the insert/clear plumbing that tag sources generate.
    """

    name = "faros-pipeline"

    def __init__(self, tracker: DIFTTracker, reset_on_begin: bool = True):
        self.tracker = tracker
        self.reset_on_begin = reset_on_begin
        self.stage_counts: Dict[str, int] = {
            "is_dfp": 0,
            "is_ifp": 0,
            "insert": 0,
            "clear": 0,
        }

    def on_begin(self, recording: Recording) -> None:
        if self.reset_on_begin:
            self.tracker.reset()
            for key in self.stage_counts:
                self.stage_counts[key] = 0

    def on_event(self, event: FlowEvent) -> None:
        if is_dfp(event):
            self.stage_counts["is_dfp"] += 1
        elif is_ifp(event):
            self.stage_counts["is_ifp"] += 1
        elif event.kind is FlowKind.INSERT:
            self.stage_counts["insert"] += 1
        else:
            self.stage_counts["clear"] += 1
        self.tracker.process(event)
