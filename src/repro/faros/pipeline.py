"""Fig. 6 pipeline stages: the is_DFP / is_IFP filters.

The paper's architecture routes every replayed instruction through two
filters: ``is_DFP`` selects direct-flow instructions (handled by FAROS's
unconditional propagation), ``is_IFP`` selects address/control
dependencies (handled by MITOS's Algorithm 2).  The generalized case study
replaces ``is_IFP`` with ``is_DFP_or_IFP`` so MITOS weighs everything.

:class:`FarosPipeline` is the replayer plugin realizing those stages,
keeping per-stage counters so experiments can report how much work each
stage saw.  With an :class:`~repro.obs.bundle.Observability` bundle it
also times each ``on_event`` (the ``pipeline.on_event`` span) and counts
events per flow kind in the metrics registry; without one the hot path
pays a single attribute check.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional

from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.tracker import DIFTTracker
from repro.replay.record import Recording
from repro.replay.replayer import Plugin

if TYPE_CHECKING:  # avoid a faros <-> obs import cycle at module load
    from repro.obs.bundle import Observability


def is_dfp(event: FlowEvent) -> bool:
    """Direct flow propagation: copy or computation dependency."""
    return event.kind.is_direct


def is_ifp(event: FlowEvent) -> bool:
    """Indirect flow propagation: address or control dependency."""
    return event.kind.is_indirect


def is_dfp_or_ifp(event: FlowEvent) -> bool:
    """Section V-C filter: any propagating flow (direct or indirect)."""
    return event.kind.is_direct or event.kind.is_indirect


#: Fig. 6 stage bucket per flow kind; a kind missing here (a future
#: enum member) lands in "other", never silently in "clear".
_STAGE_KEYS = {
    FlowKind.COPY: "is_dfp",
    FlowKind.COMPUTE: "is_dfp",
    FlowKind.ADDRESS_DEP: "is_ifp",
    FlowKind.CONTROL_DEP: "is_ifp",
    FlowKind.INSERT: "insert",
    FlowKind.CLEAR: "clear",
}


class FarosPipeline(Plugin):
    """Replayer plugin wiring the Fig. 6 stages to a DIFT tracker.

    Stage counters mirror the figure: (3) is_DFP hits, (4) is_IFP hits,
    plus the insert/clear plumbing that tag sources generate.  Dispatch is
    explicit on :class:`FlowKind` -- an event of a kind this pipeline does
    not know lands in an ``"other"`` bucket instead of silently inflating
    the clear counter.
    """

    name = "faros-pipeline"

    def __init__(
        self,
        tracker: DIFTTracker,
        reset_on_begin: bool = True,
        obs: Optional["Observability"] = None,
    ):
        self.tracker = tracker
        self.reset_on_begin = reset_on_begin
        self.obs = obs
        self.stage_counts: Dict[str, int] = {
            "is_dfp": 0,
            "is_ifp": 0,
            "insert": 0,
            "clear": 0,
        }
        if obs is not None:
            self._tracer = obs.tracer
            self._event_counters = {
                kind: obs.metrics.counter(f"replay.events.{kind.value}")
                for kind in FlowKind
            }
        else:
            self._tracer = None
            self._event_counters = None

    def on_begin(self, recording: Recording) -> None:
        if self.reset_on_begin:
            self.tracker.reset()
            for key in self.stage_counts:
                self.stage_counts[key] = 0

    def on_event(self, event: FlowEvent) -> None:
        tracer = self._tracer
        started = time.perf_counter_ns() if tracer is not None else 0
        kind = event.kind
        counts = self.stage_counts
        try:
            key = _STAGE_KEYS.get(kind, "other")
        except TypeError:  # unhashable stand-in for an unknown kind
            key = "other"
        counts[key] = counts.get(key, 0) + 1
        if self._event_counters is not None:
            counter = self._event_counters.get(kind)
            if counter is not None:
                counter.inc()
        self.tracker.process(event)
        if tracer is not None:
            tracer.end("pipeline.on_event", started)
