"""FarosSystem: one configured DIFT stack, end to end.

Wires together (per :class:`~repro.faros.config.FarosConfig`):

* the propagation policy (MITOS or a baseline),
* the DIFT tracker with its shadow memory and copy counters,
* the confluence detector (Section V-C's netflow+export-table rule),
* the optional per-decision timeline (Fig. 7 data),
* the replayer pipeline of Fig. 6,

and exposes two entry points: :meth:`replay` for recordings and
:meth:`run_live` for machines streaming events directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.metrics import RunMetrics, collect_run_metrics
from repro.analysis.timeline import DecisionTimeline
from repro.dift.detector import ConfluenceDetector
from repro.dift.tracker import DIFTTracker
from repro.faros.config import FarosConfig
from repro.faros.pipeline import FarosPipeline
from repro.obs.bundle import Observability, compose_observers
from repro.replay.record import Recording
from repro.replay.replayer import Replayer


@dataclass
class FarosRunResult:
    """Outcome of one system run over one recording/workload."""

    label: str
    metrics: RunMetrics
    stage_counts: Dict[str, int] = field(default_factory=dict)
    tracker_stats: Dict[str, float] = field(default_factory=dict)


class FarosSystem:
    """A fully wired FAROS/MITOS instance.

    Pass an :class:`~repro.obs.bundle.Observability` bundle to light up
    span tracing, per-kind event metrics, the JSONL decision trace, and
    periodic time-series sampling; with ``observability=None`` every hot
    path keeps its un-instrumented shape.
    """

    def __init__(
        self,
        config: FarosConfig,
        observability: Optional[Observability] = None,
    ):
        self.config = config
        self.obs = observability
        self.policy = config.build_policy()
        self.detector = (
            ConfluenceDetector(config.detector_types)
            if config.detector_types
            else None
        )
        self.timeline = DecisionTimeline() if config.log_timeline else None
        self.tracker = DIFTTracker(
            params=config.params,
            policy=self.policy,
            scheduling=config.scheduling,
            detector=self.detector,
            direct_via_policy=config.direct_via_policy,
            ifp_observer=compose_observers(
                self.timeline.observer if self.timeline is not None else None,
                (
                    observability.decision_observer()
                    if observability is not None
                    else None
                ),
            ),
            tracer=observability.tracer if observability is not None else None,
        )
        self.pipeline = FarosPipeline(self.tracker, obs=observability)
        plugins = [self.pipeline]
        if observability is not None:
            sampler = observability.make_sampler(self.tracker)
            if sampler is not None:
                plugins.append(sampler)
        self.replayer = Replayer(
            plugins,
            tracer=observability.tracer if observability is not None else None,
        )

    @property
    def label(self) -> str:
        return self.config.label

    def reset(self) -> None:
        """Fresh taint state; configuration unchanged."""
        self.tracker.reset()
        if self.timeline is not None:
            self.timeline.reset()

    def replay(self, recording: Recording) -> FarosRunResult:
        """Replay a recording through the pipeline (state is reset first)."""
        started = time.perf_counter()
        self.replayer.replay(recording)
        elapsed = time.perf_counter() - started
        return self._result(elapsed)

    def run_live(self, machine, max_steps: Optional[int] = None) -> FarosRunResult:
        """Attach to a machine and execute it live (no recording pass).

        The machine must have been constructed with
        ``event_sink=system.tracker.process`` (or have its sink reassigned
        before calling).
        """
        self.reset()
        machine._sink = self.tracker.process
        started = time.perf_counter()
        machine.run(max_steps=max_steps)
        elapsed = time.perf_counter() - started
        return self._result(elapsed)

    def _result(self, elapsed: float) -> FarosRunResult:
        if self.obs is not None:
            self.obs.finalize(self.tracker)
        return FarosRunResult(
            label=self.label,
            metrics=collect_run_metrics(self.tracker, wall_seconds=elapsed),
            stage_counts=dict(self.pipeline.stage_counts),
            tracker_stats=self.tracker.stats.as_dict(),
        )
