"""FarosSystem: one configured DIFT stack, end to end.

Wires together (per :class:`~repro.faros.config.FarosConfig`):

* the propagation policy (MITOS or a baseline),
* the DIFT tracker with its shadow memory and copy counters,
* the confluence detector (Section V-C's netflow+export-table rule),
* the optional per-decision timeline (Fig. 7 data),
* the replayer pipeline of Fig. 6,

and exposes two entry points: :meth:`replay` for recordings and
:meth:`run_live` for machines streaming events directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # type hints only; control stays lazily imported
    from repro.control import AdaptiveController
    from repro.options import ControlOptions

from repro.analysis.metrics import RunMetrics, collect_run_metrics
from repro.analysis.timeline import DecisionTimeline
from repro.dift.detector import ConfluenceDetector
from repro.dift.tracker import DIFTTracker
from repro.faros.config import FarosConfig
from repro.faros.pipeline import FarosPipeline
from repro.faults.resilience import Resilience
from repro.obs.bundle import Observability, compose_observers
from repro.replay.checkpoint import (
    CheckpointError,
    CheckpointPlugin,
    read_checkpoint,
    restore_checkpoint_state,
)
from repro.replay.record import Recording
from repro.replay.replayer import Replayer


@dataclass
class FarosRunResult:
    """Outcome of one system run over one recording/workload."""

    label: str
    metrics: RunMetrics
    stage_counts: Dict[str, int] = field(default_factory=dict)
    tracker_stats: Dict[str, float] = field(default_factory=dict)
    #: fault-injection and supervisor counters (empty without resilience)
    robustness: Dict[str, int] = field(default_factory=dict)


class FarosSystem:
    """A fully wired FAROS/MITOS instance.

    Pass an :class:`~repro.obs.bundle.Observability` bundle to light up
    span tracing, per-kind event metrics, the JSONL decision trace, and
    periodic time-series sampling; with ``observability=None`` every hot
    path keeps its un-instrumented shape.
    """

    def __init__(
        self,
        config: FarosConfig,
        observability: Optional[Observability] = None,
        resilience: Optional[Resilience] = None,
        control: Optional["ControlOptions"] = None,
    ):
        self.config = config
        self.obs = observability
        self.resilience = resilience
        self.policy = config.build_policy()
        self.detector = (
            ConfluenceDetector(config.detector_types)
            if config.detector_types
            else None
        )
        self.timeline = DecisionTimeline() if config.log_timeline else None
        self.tracker = DIFTTracker(
            params=config.params,
            policy=self.policy,
            scheduling=config.scheduling,
            detector=self.detector,
            direct_via_policy=config.direct_via_policy,
            ifp_observer=compose_observers(
                self.timeline.observer if self.timeline is not None else None,
                (
                    observability.decision_observer()
                    if observability is not None
                    else None
                ),
            ),
            tracer=observability.tracer if observability is not None else None,
            degrade_at=config.degrade_at,
        )
        self.pipeline = FarosPipeline(self.tracker, obs=observability)
        plugins = [self.pipeline]
        if observability is not None:
            sampler = observability.make_sampler(self.tracker)
            if sampler is not None:
                plugins.append(sampler)
        self.controller: Optional["AdaptiveController"] = None
        if control is not None and control.enabled:
            # imported lazily: disabled control must not even load the
            # package, keeping the inert path's import graph unchanged
            from repro.control import AdaptiveController, ControlPlugin

            on_update = None
            if observability is not None:
                counter = observability.metrics.counter("control.param_updates")
                on_update = lambda update: counter.inc()  # noqa: E731
            self.controller = AdaptiveController(
                config.params, control, on_update=on_update
            )
            plugins.append(ControlPlugin(self.controller, self.tracker))
        self.checkpoint_plugin: Optional[CheckpointPlugin] = None
        supervisor = None
        if resilience is not None:
            supervisor = resilience.supervisor
            if supervisor is not None and observability is not None:
                supervisor.bind_metrics(observability.metrics)
            if resilience.checkpoint_every is not None:
                # last in the chain: a checkpoint reflects every plugin's
                # view of the event that triggered it
                self.checkpoint_plugin = CheckpointPlugin(
                    self.tracker,
                    resilience.checkpoint_path,  # type: ignore[arg-type]
                    every=resilience.checkpoint_every,
                    pipeline=self.pipeline,
                )
                plugins.append(self.checkpoint_plugin)
        self.replayer = Replayer(
            plugins,
            tracer=observability.tracer if observability is not None else None,
            supervisor=supervisor,
            engine=config.engine,
        )

    @property
    def label(self) -> str:
        return self.config.label

    def reset(self) -> None:
        """Fresh taint state; configuration unchanged."""
        self.tracker.reset()
        if self.timeline is not None:
            self.timeline.reset()

    def replay(
        self, recording: Recording, limit: Optional[int] = None
    ) -> FarosRunResult:
        """Replay a recording through the pipeline (state is reset first).

        With a :class:`~repro.faults.Resilience` bundle attached this is
        also where faults and recovery happen: the injector perturbs the
        recording before the first plugin sees it, and ``resume_from``
        restores a checkpoint and continues from its event index instead
        of starting over.  Because both the event stream and the injected
        faults are pure functions of their seeds, a resumed replay is
        byte-identical to an uninterrupted one.
        """
        resilience = self.resilience
        start_index = 0
        if resilience is not None:
            injector = resilience.injector
            if injector is not None and injector.config.perturbs_stream:
                recording = injector.perturb_recording(recording)
            if resilience.resume_from is not None:
                payload = read_checkpoint(resilience.resume_from)
                start_index = restore_checkpoint_state(
                    self.tracker, payload, self.pipeline
                )
                total = payload.get("events_total")
                if total is not None and int(total) != len(recording):  # type: ignore[arg-type]
                    raise CheckpointError(
                        f"checkpoint was taken over {total} events but the "
                        f"(possibly perturbed) recording has "
                        f"{len(recording)}; same recording and fault seed "
                        f"are required to resume"
                    )
                # the restored state IS the prefix: nothing may reset it
                self.pipeline.reset_on_begin = False
                if self.checkpoint_plugin is not None:
                    self.checkpoint_plugin.set_position(start_index)
        started = time.perf_counter()
        self.replayer.replay(recording, limit=limit, start_index=start_index)
        elapsed = time.perf_counter() - started
        return self._result(elapsed)

    def run_live(self, machine, max_steps: Optional[int] = None) -> FarosRunResult:
        """Attach to a machine and execute it live (no recording pass).

        The machine must have been constructed with
        ``event_sink=system.tracker.process`` (or have its sink reassigned
        before calling).
        """
        self.reset()
        machine._sink = self.tracker.process
        started = time.perf_counter()
        machine.run(max_steps=max_steps)
        elapsed = time.perf_counter() - started
        return self._result(elapsed)

    def _result(self, elapsed: float) -> FarosRunResult:
        if self.obs is not None:
            self.obs.finalize(self.tracker)
        robustness: Dict[str, int] = {}
        if self.resilience is not None:
            if self.resilience.injector is not None:
                robustness.update(
                    {
                        f"fault.{key}": value
                        for key, value in (
                            self.resilience.injector.stats.as_dict().items()
                        )
                    }
                )
            if self.resilience.supervisor is not None:
                robustness.update(
                    {
                        f"supervisor.{key}": value
                        for key, value in (
                            self.resilience.supervisor.stats.as_dict().items()
                        )
                    }
                )
            if self.checkpoint_plugin is not None:
                robustness["checkpoints_written"] = (
                    self.checkpoint_plugin.checkpoints_written
                )
        if self.config.degrade_at is not None:
            robustness["degradations"] = self.tracker.stats.degradations
            robustness["shed_entries"] = self.tracker.stats.shed_entries
        if self.controller is not None:
            robustness["control.param_updates"] = self.controller.update_seq
        return FarosRunResult(
            label=self.label,
            metrics=collect_run_metrics(self.tracker, wall_seconds=elapsed),
            stage_counts=dict(self.pipeline.stage_counts),
            tracker_stats=self.tracker.stats.as_dict(),
            robustness=robustness,
        )
