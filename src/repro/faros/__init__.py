"""The whole-system DIFT of Fig. 6: FAROS with MITOS as its IFP extension."""

from repro.faros.config import FarosConfig, mitos_config, stock_faros_config
from repro.faros.pipeline import FarosPipeline, is_dfp, is_dfp_or_ifp, is_ifp
from repro.faros.system import FarosRunResult, FarosSystem

__all__ = [
    "FarosConfig",
    "stock_faros_config",
    "mitos_config",
    "FarosPipeline",
    "is_dfp",
    "is_ifp",
    "is_dfp_or_ifp",
    "FarosSystem",
    "FarosRunResult",
]
