"""Deterministic process-pool fan-out for experiment sweeps.

Every sweep experiment is embarrassingly parallel: N independent replays
of a recorded trace under N parameter points, each a pure function of its
arguments (the recordings themselves are rebuilt deterministically from
seeds inside each worker).  :func:`run_jobs` fans a list of :class:`Job`
objects out over a ``spawn``-context process pool and returns results **in
submission order**, so ``--jobs 8`` produces exactly the outputs of
``--jobs 1`` -- only the wall clock changes.

Design constraints, in order:

* **Determinism.** Jobs carry no shared state; results are ordered by
  submission index, never by completion time.  A job must be a pure
  function of its pickled arguments.
* **Graceful fallback.** ``workers <= 1``, a single job, or *any* failure
  to stand the pool up (sandboxes without semaphores, missing ``/dev/shm``,
  unpicklable payloads) falls back to running the jobs sequentially
  in-process.  Since jobs are pure, the fallback is also the semantics:
  the pool is an accelerator, never a requirement.
* **Spawn, not fork.** ``spawn`` works on every platform and never
  inherits a half-initialized interpreter (forked locks, open handles)
  into a worker.  The price is that job functions must live at module
  top level so workers can re-import them by qualified name.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Tuple


@dataclass(frozen=True)
class Job:
    """One unit of sweep work: a call frozen with its arguments.

    ``fn`` must be a **module-level** callable and ``args``/``kwargs``
    picklable values -- spawned workers re-import the function by
    qualified name and unpickle the arguments.  ``kwargs`` is a tuple of
    ``(name, value)`` pairs so Job itself stays hashable.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def run(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


def _run_job(job: Job) -> Any:
    """Module-level trampoline so pools can map over :class:`Job`s."""
    return job.run()


#: failures that mean "the pool infrastructure is unavailable", not "the
#: job is buggy": no semaphores / processes in this sandbox, a worker
#: killed from outside, or arguments the spawn pickler cannot ship.  A
#: deterministic job error re-raises identically from the sequential
#: fallback, so over-matching here costs time, never correctness.
_POOL_ERRORS = (
    OSError,
    RuntimeError,
    EOFError,
    BrokenProcessPool,
    pickle.PicklingError,
    AttributeError,  # "Can't pickle local object ..." surfaces as this
)


def run_jobs(jobs: Iterable[Job], workers: int = 1) -> List[Any]:
    """Run ``jobs`` and return their results in submission order.

    ``workers <= 1`` (the default) runs everything sequentially in-process
    -- byte-identical to what a pool produces, since jobs are pure.  With
    ``workers > 1`` the jobs fan out over a ``spawn`` process pool capped
    at ``min(workers, len(jobs))``; if the pool cannot be stood up (or
    dies underneath us) the same jobs rerun sequentially.
    """
    job_list = list(jobs)
    if workers <= 1 or len(job_list) <= 1:
        return [job.run() for job in job_list]
    try:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(job_list)), mp_context=context
        ) as pool:
            return list(pool.map(_run_job, job_list))
    except _POOL_ERRORS:
        return [job.run() for job in job_list]
