"""MITOS model parameters (Table I of the paper).

The paper's inputs, marked with ``*`` in Table I, are:

* ``alpha`` -- fairness degree of the undertainting cost (Eq. 3),
* ``beta``  -- steepness of the overtainting cost (Eq. 4), kept ``>= 2``,
* ``tau``   -- weight of the under/over-tainting tradeoff (Eq. 2),
* ``u_t``   -- per-tag-type importance weights in the undertainting cost,
* ``o_t``   -- per-tag-type pollution weights in the overtainting cost.

System-level constants:

* ``R``       -- taintable capacity of the system in bytes (main memory +
  register bank + NIC memory in the paper),
* ``M_prov``  -- maximum provenance-list length per byte,
* ``N_R = R * M_prov`` -- the total tag space across all provenance lists.

The paper notes that "all tau values are normalized up to the power of
10^6".  The two submarginal costs of Eq. 8 live on very different scales:
the undertainting side ``-u * n**-alpha`` is O(1) for small copy counts,
while the raw pollution ratio ``pollution / N_R`` is microscopic on a
multi-gigabyte machine.  We expose that normalization explicitly as
``tau_scale`` (default ``1e6``): the effective tradeoff weight used by the
cost model is ``tau * tau_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

#: Default per-type weight when a tag type has no explicit entry in u/o.
DEFAULT_WEIGHT = 1.0

#: Paper defaults (Section V): alpha=1.5, beta=2, tau=1, u_t=o_t=1.
PAPER_ALPHA = 1.5
PAPER_BETA = 2.0
PAPER_TAU = 1.0
PAPER_TAU_SCALE = 1e6
PAPER_M_PROV = 10


@dataclass(frozen=True)
class MitosParams:
    """Immutable bundle of every input of the MITOS optimization model.

    Instances are cheap value objects; use :meth:`with_updates` to derive
    variants during parameter sweeps.

    Parameters
    ----------
    alpha:
        Fairness degree (``alpha > 0``).  ``alpha -> inf`` approaches
        max-min fairness (tag balancing); ``alpha = 1`` is proportional
        fairness, implemented as the analytic ``-log`` limit of Eq. 3.
    beta:
        Steepness of the overtainting penalty.  The paper keeps
        ``beta >= 2`` so the penalty is at least quadratic and twice
        differentiable.
    tau:
        Under/over-tainting tradeoff weight.  ``tau = 0`` disables the
        overtainting cost entirely (all tags propagate).
    tau_scale:
        Normalization constant applied multiplicatively to ``tau`` (the
        paper's "normalized up to the power of 10^6").
    R:
        Taintable capacity in bytes.
    M_prov:
        Maximum number of tags a single byte's provenance list can hold.
    u:
        Per-tag-type undertainting weights; missing types use
        :data:`DEFAULT_WEIGHT`.
    o:
        Per-tag-type pollution weights; missing types use
        :data:`DEFAULT_WEIGHT`.
    """

    alpha: float = PAPER_ALPHA
    beta: float = PAPER_BETA
    tau: float = PAPER_TAU
    tau_scale: float = PAPER_TAU_SCALE
    R: int = 1 << 20
    M_prov: int = PAPER_M_PROV
    u: Mapping[str, float] = field(default_factory=dict)
    o: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.beta < 1:
            raise ValueError(f"beta must be >= 1, got {self.beta}")
        if self.tau < 0:
            raise ValueError(f"tau must be non-negative, got {self.tau}")
        if self.tau_scale <= 0:
            raise ValueError(f"tau_scale must be positive, got {self.tau_scale}")
        if self.R <= 0:
            raise ValueError(f"R must be positive, got {self.R}")
        if self.M_prov <= 0:
            raise ValueError(f"M_prov must be positive, got {self.M_prov}")
        for name, weights in (("u", self.u), ("o", self.o)):
            for tag_type, weight in weights.items():
                if weight < 0:
                    raise ValueError(
                        f"{name}[{tag_type!r}] must be non-negative, got {weight}"
                    )

    @property
    def N_R(self) -> int:
        """Total tag space across all provenance lists (``R * M_prov``)."""
        return self.R * self.M_prov

    @property
    def effective_tau(self) -> float:
        """The tradeoff weight actually applied to the overtainting cost."""
        return self.tau * self.tau_scale

    def u_of(self, tag_type: str) -> float:
        """Undertainting weight for ``tag_type`` (default 1)."""
        return self.u.get(tag_type, DEFAULT_WEIGHT)

    def o_of(self, tag_type: str) -> float:
        """Pollution weight for ``tag_type`` (default 1)."""
        return self.o.get(tag_type, DEFAULT_WEIGHT)

    def with_updates(self, **changes: object) -> "MitosParams":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def paper_defaults(R: int = 1 << 20, M_prov: int = PAPER_M_PROV) -> MitosParams:
    """The parameter point used throughout Section V unless swept."""
    return MitosParams(
        alpha=PAPER_ALPHA, beta=PAPER_BETA, tau=PAPER_TAU, R=R, M_prov=M_prov
    )
