"""MITOS decisioning: Algorithm 1 and Algorithm 2 of the paper.

Both algorithms answer the indirect-flow question at a single instruction:
*which of the source operand's tags should be copied into the destination's
provenance list?*

* **Algorithm 1** (IFP Scenario 1): a single candidate tag and at least one
  free slot at the destination.  Propagate iff the marginal cost of Eq. 8 is
  non-positive (Lemma 2).
* **Algorithm 2** (IFP Scenario 2): multiple candidate tags and ``A`` free
  slots.  Sort candidates by marginal cost ascending and greedily propagate
  while slots remain and the current marginal is non-positive, recomputing
  the (pollution-dependent) marginal after every propagation.

Note on the paper's loop guard: Alg. 2 line 5 reads ``while (#props <= A)``,
which as written would admit ``A + 1`` propagations.  The prose ("which, at
maximum two, tags ... should the DIFT system propagate?" for ``A = 2``)
makes the intent clear, so we implement the guard as ``#props < A`` and the
property tests pin "never exceeds the free space".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence

from repro.core.costs import marginal_cost, over_marginal, under_marginal
from repro.core.params import MitosParams


@dataclass(frozen=True, slots=True)
class TagCandidate:
    """A tag considered for indirect-flow propagation.

    Attributes
    ----------
    key:
        Opaque identity of the tag ``{T, I}`` (hashable; typically a
        :class:`repro.dift.tags.Tag`).
    tag_type:
        The tag's type ``T`` (selects the ``u_t`` / ``o_t`` weights).
    copies:
        Current number of copies ``n[T,I]`` (bytes whose provenance list
        holds this tag).
    """

    key: Hashable
    tag_type: str
    copies: int

    def __post_init__(self) -> None:
        if self.copies < 0:
            raise ValueError(f"copies must be non-negative, got {self.copies}")


@dataclass(frozen=True, slots=True)
class Decision:
    """Outcome of one propagation decision for one tag."""

    candidate: TagCandidate
    marginal: float
    propagate: bool
    #: submarginal breakdown, useful for Fig. 7(a)-style timelines
    under_marginal: float = 0.0
    over_marginal: float = 0.0


@dataclass
class MultiDecision:
    """Outcome of Algorithm 2 over a full candidate set."""

    decisions: List[Decision] = field(default_factory=list)
    free_slots: int = 0

    @property
    def propagated(self) -> List[TagCandidate]:
        return [d.candidate for d in self.decisions if d.propagate]

    @property
    def blocked(self) -> List[TagCandidate]:
        return [d.candidate for d in self.decisions if not d.propagate]

    @property
    def propagated_count(self) -> int:
        return len(self.propagated)


class MarginalCache:
    """Memo table for the two Eq. 8 submarginals.

    The undertainting side ``-u_T * n**-alpha`` depends only on
    ``(tag_type, copies)``; the (published-form) overtainting side
    ``tau_eff * beta * (P/N_R)**(beta-1)`` depends only on the pollution
    value.  Both are pure functions of the params, so cached entries are
    computed once by the *same* :mod:`repro.core.costs` calls and are
    therefore bit-equal to uncached evaluation.

    The cache is tied to one params instance: the cache-aware decision
    functions check ``cache.params is params`` and fall back to the
    uncached path on mismatch, so mutating a policy's params can never
    serve stale marginals.  Entry counts are bounded; on overflow a table
    is simply cleared (the working set of a replay is tiny -- copy counts
    and pollution values repeat constantly).
    """

    __slots__ = ("params", "max_entries", "_under", "_over")

    def __init__(self, params: MitosParams, max_entries: int = 1 << 16):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.params = params
        self.max_entries = max_entries
        self._under: dict = {}
        self._over: dict = {}

    def under(self, copies: int, tag_type: str) -> float:
        """Cached ``under_marginal(copies, tag_type, params)``."""
        key = (tag_type, copies)
        value = self._under.get(key)
        if value is None:
            value = under_marginal(copies, tag_type, self.params)
            if len(self._under) >= self.max_entries:
                self._under.clear()
            self._under[key] = value
        return value

    def over(self, pollution_value: float) -> float:
        """Cached ``over_marginal(pollution_value, params)``."""
        value = self._over.get(pollution_value)
        if value is None:
            value = over_marginal(pollution_value, self.params)
            if len(self._over) >= self.max_entries:
                self._over.clear()
            self._over[pollution_value] = value
        return value

    def clear(self) -> None:
        self._under.clear()
        self._over.clear()


def decide_single(
    candidate: TagCandidate,
    pollution: float,
    params: MitosParams,
    cache: Optional[MarginalCache] = None,
) -> Decision:
    """Algorithm 1: single-tag IFP decision with a free destination slot.

    Parameters
    ----------
    candidate:
        The tag under consideration with its current copy count.
    pollution:
        Current (possibly locally estimated) weighted memory pollution
        ``sum_t o_t sum_i n[t,i]``.
    params:
        The MITOS inputs.
    cache:
        Optional :class:`MarginalCache` bound to ``params``; ignored when
        bound to different params.  Results are bit-equal either way.

    Returns
    -------
    Decision
        ``propagate`` is True iff the Eq. 8 marginal is ``<= 0``.
    """
    if cache is not None and cache.params is params:
        under = cache.under(candidate.copies, candidate.tag_type)
        over = cache.over(pollution)
    else:
        under = under_marginal(candidate.copies, candidate.tag_type, params)
        over = over_marginal(pollution, params, tag_type=candidate.tag_type)
    marginal = under + over
    return Decision(
        candidate=candidate,
        marginal=marginal,
        propagate=marginal <= 0,
        under_marginal=under,
        over_marginal=over,
    )


def decide_multi(
    candidates: Sequence[TagCandidate],
    free_slots: int,
    pollution: float,
    params: MitosParams,
    cache: Optional[MarginalCache] = None,
) -> MultiDecision:
    """Algorithm 2: multi-tag IFP decision with ``free_slots`` available.

    Tags are ranked by marginal cost ascending and propagated greedily while
    (i) fewer than ``free_slots`` tags have been propagated and (ii) the
    current tag's marginal cost is non-positive.  After each propagation the
    pollution estimate grows by the propagated tag's ``o_t`` weight and the
    next tag's marginal is recomputed (Alg. 2 line 9), which is exactly a
    distributed gradient-descent step on the relaxed convex problem.

    Candidates whose decision was never reached (loop exited early) are
    reported as blocked with their final recomputed marginal.

    With a :class:`MarginalCache` bound to ``params`` the submarginals come
    from the memo tables; the ranking key and every per-tag marginal are
    the same ``under + over`` float sums, so decisions, orderings, and
    reported marginals are bit-equal to the uncached path.
    """
    if free_slots < 0:
        raise ValueError(f"free_slots must be non-negative, got {free_slots}")
    use_cache = cache is not None and cache.params is params
    if use_cache:
        over_base = cache.over(pollution)
        ranked = sorted(
            candidates,
            key=lambda c: cache.under(c.copies, c.tag_type) + over_base,
        )
    else:
        ranked = sorted(
            candidates,
            key=lambda c: marginal_cost(c.copies, pollution, c.tag_type, params),
        )
    result = MultiDecision(free_slots=free_slots)
    decisions = result.decisions
    current_pollution = pollution
    props = 0
    for candidate in ranked:
        if use_cache:
            under = cache.under(candidate.copies, candidate.tag_type)
            over = cache.over(current_pollution)
        else:
            under = under_marginal(
                candidate.copies, candidate.tag_type, params
            )
            over = over_marginal(
                current_pollution, params, tag_type=candidate.tag_type
            )
        marginal = under + over
        should_propagate = props < free_slots and marginal <= 0
        decisions.append(
            Decision(
                candidate=candidate,
                marginal=marginal,
                propagate=should_propagate,
                under_marginal=under,
                over_marginal=over,
            )
        )
        if should_propagate:
            props += 1
            # One more provenance-list entry of this type now exists; the
            # overtainting side of every later marginal must see it.
            current_pollution += params.o_of(candidate.tag_type)
    return result


class PollutionSource:
    """Callable protocol-ish adapter: anything returning the current pollution.

    The distributed algorithm only needs *an estimate* of the global
    pollution; locally-stale estimates are fine (see
    :mod:`repro.distributed.gossip`).
    """

    def __init__(self, fn: Callable[[], float]):
        self._fn = fn

    def __call__(self) -> float:
        return self._fn()


class MitosEngine:
    """Stateful decision engine binding parameters to a pollution source.

    This is the object a DIFT tracker embeds: at every indirect flow it
    calls :meth:`choose` with the source operand's tags and the free space
    of the destination's provenance list.

    The engine also keeps a bounded in-memory log of decisions so
    experiments can reconstruct Fig. 7-style timelines without re-plumbing
    the tracker.
    """

    def __init__(
        self,
        params: MitosParams,
        pollution_source: Optional[Callable[[], float]] = None,
        log_decisions: bool = False,
        log_capacity: int = 1_000_000,
        use_cache: bool = True,
    ):
        self.params = params
        self._pollution_source = pollution_source or (lambda: 0.0)
        self._log_decisions = log_decisions
        self._log_capacity = log_capacity
        self.decision_log: List[Decision] = []
        self.stats = EngineStats()
        # bit-equal memo of the Eq. 8 submarginals; ``use_cache=False``
        # keeps the uncached reference path (the benchmarks' oracle)
        self._cache: Optional[MarginalCache] = (
            MarginalCache(params) if use_cache else None
        )

    def current_pollution(self) -> float:
        return float(self._pollution_source())

    @property
    def marginal_cache(self) -> Optional[MarginalCache]:
        """The live memo table (``None`` when built uncached)."""
        cache = self._cache
        if cache is not None and cache.params is not self.params:
            # params were swapped after construction: rebind so stale
            # entries can never leak across parameterizations
            cache = MarginalCache(self.params, cache.max_entries)
            self._cache = cache
        return cache

    def decide(self, candidate: TagCandidate) -> Decision:
        """Algorithm 1 against the live pollution estimate."""
        decision = decide_single(
            candidate,
            self.current_pollution(),
            self.params,
            cache=self.marginal_cache,
        )
        self._record([decision])
        return decision

    def choose(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> MultiDecision:
        """Algorithm 2 against the live pollution estimate."""
        outcome = decide_multi(
            candidates,
            free_slots,
            self.current_pollution(),
            self.params,
            cache=self.marginal_cache,
        )
        self._record(outcome.decisions)
        return outcome

    def _record(self, decisions: Sequence[Decision]) -> None:
        for decision in decisions:
            self.stats.observe(decision)
        if not self._log_decisions:
            return
        space = self._log_capacity - len(self.decision_log)
        if space > 0:
            self.decision_log.extend(decisions[:space])


@dataclass
class EngineStats:
    """Running counters over every decision an engine has made."""

    considered: int = 0
    propagated: int = 0
    blocked: int = 0
    marginal_sum: float = 0.0

    def observe(self, decision: Decision) -> None:
        self.considered += 1
        if decision.propagate:
            self.propagated += 1
        else:
            self.blocked += 1
        if math.isfinite(decision.marginal):
            self.marginal_sum += decision.marginal

    @property
    def propagation_rate(self) -> float:
        """Fraction of considered tags that were propagated."""
        if self.considered == 0:
            return 0.0
        return self.propagated / self.considered
