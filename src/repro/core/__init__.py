"""MITOS core: cost model, decision rule, solvers and fairness metrics."""

from repro.core.params import MitosParams
from repro.core.costs import (
    marginal_cost,
    over_cost,
    total_cost,
    under_cost,
    under_cost_term,
)
from repro.core.decision import MitosEngine, TagCandidate, decide_multi, decide_single
from repro.core.fairness import copy_count_mse, jain_index, shannon_entropy

__all__ = [
    "MitosParams",
    "under_cost_term",
    "under_cost",
    "over_cost",
    "total_cost",
    "marginal_cost",
    "TagCandidate",
    "decide_single",
    "decide_multi",
    "MitosEngine",
    "copy_count_mse",
    "jain_index",
    "shannon_entropy",
]
