"""Propagation policies: MITOS and the baselines it is evaluated against.

A :class:`PropagationPolicy` answers, for one indirect flow, *which of the
candidate tags enter the destination's provenance list*, given the free
space there.  The DIFT tracker is policy-agnostic; the evaluation plugs in:

* :class:`MitosPolicy` -- Algorithm 2 (the paper's contribution),
* :class:`PropagateAllPolicy` -- propagate every candidate (bounded only by
  free space): the overtainting extreme, and what "MITOS with tau=0"
  degenerates to,
* :class:`PropagateNonePolicy` -- block all indirect flows: classic
  DFP-only DIFT, i.e. stock FAROS behaviour,
* :class:`ThresholdPolicy` -- a static copy-count-threshold heuristic used
  as an ablation strawman,
* :class:`RandomPolicy` -- seeded coin-flip baseline.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, List, Optional, Sequence

from repro.core.decision import MitosEngine, MultiDecision, TagCandidate
from repro.core.params import MitosParams


class PropagationPolicy(abc.ABC):
    """Decides which candidate tags of an indirect flow to propagate."""

    #: human-readable identifier used in experiment reports
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        """Return the subset of ``candidates`` to propagate.

        Implementations must never return more than ``free_slots`` tags and
        must only return members of ``candidates``.
        """

    def select_with_details(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> "tuple[List[TagCandidate], Optional[MultiDecision]]":
        """Like :meth:`select` but also return per-tag decision details.

        Policies without marginal-cost internals return ``None`` details;
        :class:`MitosPolicy` returns the full :class:`MultiDecision` so
        experiment timelines (Fig. 7) can read the submarginal costs.
        """
        return self.select(candidates, free_slots), None

    def handles(self, flow_kind: str) -> bool:
        """Whether this policy considers flows of ``flow_kind`` at all.

        ``flow_kind`` is the :class:`~repro.dift.flows.FlowKind` value
        string (``"address_dep"``, ``"control_dep"``, ...).  The tracker
        blocks unhandled kinds without consulting :meth:`select` --
        how systems like Minos hard-wire per-dependency-class choices.
        """
        return True

    def reset(self) -> None:
        """Clear any per-run state (decision logs, RNG position)."""


class MitosPolicy(PropagationPolicy):
    """The paper's policy: Algorithm 2 driven by the Eq. 8 marginal cost."""

    name = "mitos"

    def __init__(
        self,
        params: MitosParams,
        pollution_source: Optional[Callable[[], float]] = None,
        log_decisions: bool = False,
        use_cache: bool = True,
        vector_seed: bool = False,
    ):
        self.engine = MitosEngine(
            params,
            pollution_source,
            log_decisions=log_decisions,
            use_cache=use_cache,
        )
        #: when True, the vector replay engine bulk-seeds the marginal
        #: cache from the columnar kernel's exact under-tables before the
        #: hot loop (a pure warm-up: seeded values are the scalar values)
        self.vector_seed = vector_seed

    def preseed_marginals(
        self, tag_types: "Sequence[str]", max_copies: int = 256
    ) -> int:
        """Bulk-load the under-marginal memo for the given tag types.

        Returns the number of entries seeded (0 when built uncached).
        """
        cache = self.engine.marginal_cache
        if cache is None:
            return 0
        from repro.vector.kernel import seed_marginal_cache

        return seed_marginal_cache(cache, tag_types, max_copies=max_copies)

    @property
    def params(self) -> MitosParams:
        return self.engine.params

    def bind_pollution_source(self, source: Callable[[], float]) -> None:
        """Late-bind the pollution estimate (the tracker owns the counter)."""
        self.engine._pollution_source = source

    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        outcome: MultiDecision = self.engine.choose(candidates, free_slots)
        return outcome.propagated

    def select_with_details(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> "tuple[List[TagCandidate], Optional[MultiDecision]]":
        outcome: MultiDecision = self.engine.choose(candidates, free_slots)
        return outcome.propagated, outcome

    def reset(self) -> None:
        self.engine.decision_log.clear()
        self.engine.stats = type(self.engine.stats)()


class PropagateAllPolicy(PropagationPolicy):
    """Propagate every candidate, bounded only by the destination's space."""

    name = "propagate-all"

    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        return list(candidates[:free_slots])


class PropagateNonePolicy(PropagationPolicy):
    """Block every indirect flow (classic DFP-only DIFT / stock FAROS)."""

    name = "propagate-none"

    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        return []


class ThresholdPolicy(PropagationPolicy):
    """Propagate tags whose copy count is below a static threshold.

    A natural "poor man's fairness" heuristic: it chases tag balancing but
    is blind to global pollution, so it cannot trade under- against
    over-tainting the way the marginal-cost rule does.
    """

    name = "threshold"

    def __init__(self, max_copies: int):
        if max_copies < 0:
            raise ValueError(f"max_copies must be non-negative, got {max_copies}")
        self.max_copies = max_copies

    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        eligible = [c for c in candidates if c.copies < self.max_copies]
        eligible.sort(key=lambda c: c.copies)
        return eligible[:free_slots]


class KindFilteredPolicy(PropagationPolicy):
    """Restrict an inner policy to a fixed set of flow kinds.

    Real DIFT systems hard-wire per-dependency-class choices -- e.g.
    Minos propagated (some) address dependencies but no control
    dependencies.  ``KindFilteredPolicy(PropagateAllPolicy(),
    allowed_kinds={"address_dep"})`` reproduces that family of baselines
    on our tracker; any inner policy composes, including MITOS.
    """

    def __init__(
        self,
        inner: PropagationPolicy,
        allowed_kinds: "frozenset[str] | set[str]" = frozenset({"address_dep"}),
    ):
        if not allowed_kinds:
            raise ValueError("allowed_kinds must not be empty")
        self.inner = inner
        self.allowed_kinds = frozenset(allowed_kinds)
        self.name = f"{inner.name}[{'+'.join(sorted(self.allowed_kinds))}]"

    def handles(self, flow_kind: str) -> bool:
        return flow_kind in self.allowed_kinds

    def bind_pollution_source(self, source: Callable[[], float]) -> None:
        """Forward the tracker's pollution source to a wrapped MITOS."""
        inner_bind = getattr(self.inner, "bind_pollution_source", None)
        if inner_bind is not None:
            inner_bind(source)

    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        return self.inner.select(candidates, free_slots)

    def select_with_details(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> "tuple[List[TagCandidate], Optional[MultiDecision]]":
        return self.inner.select_with_details(candidates, free_slots)

    def reset(self) -> None:
        self.inner.reset()


class RandomPolicy(PropagationPolicy):
    """Seeded coin-flip per candidate; a sanity-check baseline."""

    name = "random"

    def __init__(self, propagate_probability: float = 0.5, seed: int = 0):
        if not 0 <= propagate_probability <= 1:
            raise ValueError(
                "propagate_probability must be in [0, 1], got "
                f"{propagate_probability}"
            )
        self.propagate_probability = propagate_probability
        self._seed = seed
        self._rng = random.Random(seed)

    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        chosen = [
            c
            for c in candidates
            if self._rng.random() < self.propagate_probability
        ]
        return chosen[:free_slots]

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
