"""MITOS cost model: Eq. (2)-(5) and the marginal cost of Eq. (8).

The model weighs two antagonistic costs over the copy-count vector ``n``:

* the *alpha-fair undertainting cost* (Eq. 3)::

      c_under(n) = sum_t u_t * sum_i n[t,i]**(1 - alpha) / (alpha - 1)

  which is monotonically decreasing in every ``n[t,i]`` (more copies of a
  tag means less undertainting for it), and

* the *beta-steep overtainting cost* (Eq. 4)::

      c_over(n) = (sum_t o_t * sum_i n[t,i] / N_R) ** beta

  which is monotonically increasing in every ``n[t,i]`` (more provenance
  entries means more memory pollution).

Total cost (Eq. 2): ``c(n) = c_under(n) + tau_eff * c_over(n)`` where
``tau_eff = tau * tau_scale`` (see :mod:`repro.core.params`).

``alpha = 1`` limit
-------------------
Eq. 3 is undefined at ``alpha = 1``.  The paper substitutes a logarithmic
form there.  The analytic limit of ``n**(1-alpha)/(alpha-1)`` as
``alpha -> 1`` is ``-log(n)`` (up to an additive constant that does not
affect any gradient), which is the classic proportional-fairness utility
and keeps the marginal cost of Eq. 8 continuous in ``alpha``: at
``alpha = 1`` the derivative ``-u * n**-alpha`` equals ``-u / n``, exactly
``d/dn (-u log n)``.  We therefore implement ``alpha = 1`` as ``-log(n)``.

Eq. (8) as published vs. the exact gradient
-------------------------------------------
Differentiating Eq. 4 exactly gives an extra factor ``o_T / N_R`` on the
overtainting side::

    exact:      -u_T * n**-alpha + tau_eff * beta * (P/N_R)**(beta-1) * o_T / N_R
    published:  -u_T * n**-alpha + tau_eff * beta * (P/N_R)**(beta-1)

The paper's Eq. 8 folds ``o_T / N_R`` into the tau normalization ("values
normalized up to the power of 10^6").  :func:`marginal_cost` implements the
published form by default and exposes ``exact=True`` for the centralized
solver and the gradient-consistency ablation.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence, Tuple

from repro.core.params import MitosParams

#: Alias for the sparse copy-count vector n: {(tag_type, index): copies}.
CopyVector = Mapping[Tuple[str, int], float]


def under_cost_term(copies: float, alpha: float) -> float:
    """Single-tag undertainting term ``copies**(1-alpha) / (alpha-1)``.

    Returns ``+inf`` for a tag with zero copies when ``alpha >= 1`` (a live
    tag that is nowhere is infinitely undertainted) and ``0.0`` when
    ``alpha < 1`` (the term vanishes at the origin).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if copies < 0:
        raise ValueError(f"copies must be non-negative, got {copies}")
    if copies == 0:
        return math.inf if alpha >= 1 else 0.0
    if alpha == 1:
        return -math.log(copies)
    return copies ** (1.0 - alpha) / (alpha - 1.0)


def under_cost(n: CopyVector, params: MitosParams) -> float:
    """Eq. (3): alpha-fair undertainting cost of the full copy vector."""
    return sum(
        params.u_of(tag_type) * under_cost_term(copies, params.alpha)
        for (tag_type, _index), copies in n.items()
    )


def pollution(n: CopyVector, params: MitosParams) -> float:
    """Weighted memory pollution ``sum_t o_t sum_i n[t,i]`` (Eq. 4 numerator)."""
    return sum(
        params.o_of(tag_type) * copies for (tag_type, _index), copies in n.items()
    )


def over_cost(n: CopyVector, params: MitosParams) -> float:
    """Eq. (4): beta-steep overtainting cost of the full copy vector."""
    return over_cost_from_pollution(pollution(n, params), params)


def over_cost_from_pollution(pollution_value: float, params: MitosParams) -> float:
    """Eq. (4) evaluated from a precomputed (possibly estimated) pollution."""
    if pollution_value < 0:
        raise ValueError(f"pollution must be non-negative, got {pollution_value}")
    return (pollution_value / params.N_R) ** params.beta


def total_cost(n: CopyVector, params: MitosParams) -> float:
    """Eq. (2)/(5): ``c_under(n) + tau_eff * c_over(n)``."""
    return under_cost(n, params) + params.effective_tau * over_cost(n, params)


def under_marginal(copies: float, tag_type: str, params: MitosParams) -> float:
    """Undertainting submarginal ``-u_T * copies**-alpha`` (left of Eq. 8).

    ``-inf`` at zero copies: propagating the first copy of a tag is always
    worthwhile from the undertainting perspective.
    """
    if copies < 0:
        raise ValueError(f"copies must be non-negative, got {copies}")
    if copies == 0:
        return -math.inf
    return -params.u_of(tag_type) * copies ** (-params.alpha)


def over_marginal(
    pollution_value: float,
    params: MitosParams,
    tag_type: str = "",
    exact: bool = False,
) -> float:
    """Overtainting submarginal (right of Eq. 8).

    The published form is ``tau_eff * beta * (P / N_R)**(beta - 1)``; with
    ``exact=True`` the true derivative factor ``o_T / N_R`` is included.
    This quantity is identical for all tags (published form) and is the
    globally shared "memory pollution" signal of the distributed algorithm.
    """
    if pollution_value < 0:
        raise ValueError(f"pollution must be non-negative, got {pollution_value}")
    base = (
        params.effective_tau
        * params.beta
        * (pollution_value / params.N_R) ** (params.beta - 1.0)
    )
    if exact:
        return base * params.o_of(tag_type) / params.N_R
    return base


def marginal_cost(
    copies: float,
    pollution_value: float,
    tag_type: str,
    params: MitosParams,
    exact: bool = False,
) -> float:
    """Eq. (8): marginal cost of propagating tag ``{T, I}`` to one more byte.

    Negative marginal cost means propagation improves the objective
    (Lemma 2: propagate iff ``marginal <= 0``).
    """
    return under_marginal(copies, tag_type, params) + over_marginal(
        pollution_value, params, tag_type=tag_type, exact=exact
    )


def gradient(n: CopyVector, params: MitosParams, exact: bool = True) -> dict:
    """Full gradient of Eq. (5) at ``n`` (exact by default, for solvers)."""
    pollution_value = pollution(n, params)
    return {
        key: marginal_cost(copies, pollution_value, key[0], params, exact=exact)
        for key, copies in n.items()
    }


def finite_difference(
    n: CopyVector,
    key: Tuple[str, int],
    params: MitosParams,
    step: float = 1e-5,
) -> float:
    """Central finite difference of the total cost along one coordinate.

    Used by the test suite to validate the analytic gradient.
    """
    lower = dict(n)
    upper = dict(n)
    lower[key] = n[key] - step
    upper[key] = n[key] + step
    return (total_cost(upper, params) - total_cost(lower, params)) / (2 * step)


def cost_series(
    copies_grid: Sequence[float],
    alpha: float,
) -> list:
    """Undertainting-term series over a copies grid (Fig. 3(a) data)."""
    return [under_cost_term(c, alpha) for c in copies_grid]


def over_cost_series(
    pollution_fractions: Iterable[float],
    beta: float,
) -> list:
    """Overtainting series over pollution fractions P/N_R (Fig. 3(b) data)."""
    result = []
    for fraction in pollution_fractions:
        if fraction < 0:
            raise ValueError(f"pollution fraction must be >= 0, got {fraction}")
        result.append(fraction**beta)
    return result
