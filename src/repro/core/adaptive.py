"""Run-context-adaptive tag-type weights (tag confluence, Section IV-B1).

The paper notes that "one could even consider a *tag confluence* (when
two or more tags come together) to control the tag propagation of the
involved tags based on a certain run context".  This module makes that
concrete:

* :class:`AdaptiveWeights` -- mutable per-type multipliers on top of the
  static ``u_t`` weights, with multiplicative boosts and exponential
  decay back toward 1, so a burst of suspicion accelerates the involved
  types for a while and then fades;
* :class:`AdaptiveMitosPolicy` -- a MITOS policy whose every decision
  uses the *effective* (static x adaptive) weights.

The DIFT-side trigger -- boosting the types involved in a detector alert
-- lives in :mod:`repro.dift.confluence`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.decision import MultiDecision, TagCandidate, decide_multi
from repro.core.params import MitosParams
from repro.core.policy import MitosPolicy


class AdaptiveWeights:
    """Per-tag-type multipliers with boost and exponential decay.

    A type's effective undertainting weight is ``u_t * multiplier(t)``.
    Multipliers start at 1, are raised by :meth:`boost`, and relax toward
    1 by a factor ``decay`` per :meth:`tick` (one tick per decision by
    default, wired by the policy).
    """

    def __init__(self, decay: float = 0.999, max_multiplier: float = 1e4):
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if max_multiplier < 1:
            raise ValueError(
                f"max_multiplier must be >= 1, got {max_multiplier}"
            )
        self.decay = decay
        self.max_multiplier = max_multiplier
        self._multipliers: Dict[str, float] = {}

    def multiplier(self, tag_type: str) -> float:
        return self._multipliers.get(tag_type, 1.0)

    def boost(self, tag_type: str, factor: float) -> None:
        """Multiply a type's weight (clamped at ``max_multiplier``)."""
        if factor <= 0:
            raise ValueError(f"boost factor must be positive, got {factor}")
        current = self._multipliers.get(tag_type, 1.0)
        self._multipliers[tag_type] = min(
            current * factor, self.max_multiplier
        )

    def tick(self) -> None:
        """One decay step: every multiplier relaxes toward 1."""
        expired: List[str] = []
        for tag_type, value in self._multipliers.items():
            relaxed = 1.0 + (value - 1.0) * self.decay
            if abs(relaxed - 1.0) < 1e-6:
                expired.append(tag_type)
            else:
                self._multipliers[tag_type] = relaxed
        for tag_type in expired:
            del self._multipliers[tag_type]

    def apply(self, params: MitosParams) -> MitosParams:
        """Parameters with effective (static x adaptive) ``u`` weights."""
        if not self._multipliers:
            return params
        merged = dict(params.u)
        for tag_type, multiplier in self._multipliers.items():
            merged[tag_type] = params.u_of(tag_type) * multiplier
        return params.with_updates(u=merged)

    def active_types(self) -> Dict[str, float]:
        """Currently boosted types and their multipliers (copy)."""
        return dict(self._multipliers)

    def reset(self) -> None:
        self._multipliers.clear()


class AdaptiveMitosPolicy(MitosPolicy):
    """MITOS whose decisions see confluence-boosted tag-type weights."""

    name = "mitos-adaptive"

    def __init__(
        self,
        params: MitosParams,
        weights: Optional[AdaptiveWeights] = None,
        pollution_source: Optional[Callable[[], float]] = None,
    ):
        super().__init__(params, pollution_source)
        self.weights = weights if weights is not None else AdaptiveWeights()

    def select_with_details(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> Tuple[List[TagCandidate], Optional[MultiDecision]]:
        effective = self.weights.apply(self.engine.params)
        outcome = decide_multi(
            candidates, free_slots, self.engine.current_pollution(), effective
        )
        for decision in outcome.decisions:
            self.engine.stats.observe(decision)
        self.weights.tick()
        return outcome.propagated, outcome

    def select(
        self, candidates: Sequence[TagCandidate], free_slots: int
    ) -> List[TagCandidate]:
        selected, _ = self.select_with_details(candidates, free_slots)
        return selected

    def reset(self) -> None:
        super().reset()
        self.weights.reset()
