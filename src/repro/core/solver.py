"""Centralized solvers for the relaxed MITOS problem (Section IV-B).

The paper notes that the continuous relaxation of Problem 1 is convex
(Lemma 1) and can be solved centrally with Lagrange multipliers / KKT
conditions, but that a centralized solution does not scale -- which is why
the deployed rule is the distributed greedy of Algorithms 1/2.  This module
provides the centralized solutions anyway, because they are the yardstick:

* :func:`solve_kkt` -- closed-form KKT waterfilling via a scalar
  fixed-point on the pollution ``P = sum_k o_k n_k`` (unique by
  monotonicity) plus an outer multiplier for the total-space constraint,
* :func:`solve_scipy` -- SLSQP on the exact objective/gradient, as an
  independent cross-check,
* :func:`solve_integer_bruteforce` -- exhaustive search on tiny integer
  instances, demonstrating what the NP-hard unrelaxed problem asks for,
* :func:`greedy_dynamics` -- the online distributed dynamics (repeated
  Algorithm 1 steps with the *exact* gradient), whose fixed point should
  approach the relaxed optimum; used by the convergence ablation.

All solvers work on a flat tag specification: a sequence of
``(tag_type, index)`` keys plus the :class:`~repro.core.params.MitosParams`
weights.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.core.costs import marginal_cost, total_cost
from repro.core.params import MitosParams

TagKey = Tuple[str, int]


@dataclass(frozen=True)
class SolverResult:
    """Solution of one solver run."""

    n: Dict[TagKey, float]
    cost: float
    pollution: float
    iterations: int = 0
    converged: bool = True

    def as_array(self, keys: Sequence[TagKey]) -> np.ndarray:
        return np.array([self.n[key] for key in keys], dtype=float)


def _weights(keys: Sequence[TagKey], params: MitosParams) -> Tuple[np.ndarray, np.ndarray]:
    u = np.array([params.u_of(t) for t, _ in keys], dtype=float)
    o = np.array([params.o_of(t) for t, _ in keys], dtype=float)
    return u, o


def _vector_cost(x: np.ndarray, keys: Sequence[TagKey], params: MitosParams) -> float:
    return total_cost({key: float(v) for key, v in zip(keys, x)}, params)


def _vector_grad(x: np.ndarray, keys: Sequence[TagKey], params: MitosParams) -> np.ndarray:
    pollution = float(
        sum(params.o_of(t) * v for (t, _), v in zip(keys, x))
    )
    return np.array(
        [
            marginal_cost(float(v), pollution, t, params, exact=True)
            for (t, _), v in zip(keys, x)
        ]
    )


def _stationary_point(
    keys: Sequence[TagKey],
    params: MitosParams,
    extra_multiplier: float,
    n_min: float,
    n_max: float,
) -> Tuple[np.ndarray, float]:
    """Solve the per-tag stationarity at a given total-space multiplier.

    At an interior optimum, for every tag k::

        u_k * n_k**-alpha = tau_eff * beta * (P/N_R)**(beta-1) * o_k / N_R
                            + lam * 1            (total-space multiplier)

    For a fixed pollution ``P`` the right side is a constant ``rhs_k``, so
    ``n_k = (u_k / rhs_k)**(1/alpha)`` clipped to ``[n_min, n_max]``.  The
    implied pollution ``sum o_k n_k`` is strictly decreasing in ``P``, so a
    bisection finds the unique fixed point.
    """
    u, o = _weights(keys, params)
    alpha = params.alpha
    tau_eff = params.effective_tau
    beta = params.beta
    N_R = params.N_R

    def n_of(pollution: float) -> np.ndarray:
        rhs = (
            tau_eff * beta * (pollution / N_R) ** (beta - 1.0) * o / N_R
            + extra_multiplier * o
        )
        with np.errstate(divide="ignore", over="ignore"):
            raw = np.where(rhs > 0, (u / np.maximum(rhs, 1e-300)) ** (1.0 / alpha), n_max)
        return np.clip(raw, n_min, n_max)

    lo, hi = 1e-12, float(np.dot(o, np.full(len(keys), n_max))) + 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        implied = float(np.dot(o, n_of(mid)))
        if implied > mid:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
    pollution = 0.5 * (lo + hi)
    return n_of(pollution), pollution


def solve_kkt(
    keys: Sequence[TagKey],
    params: MitosParams,
    n_min: float = 1.0,
    n_max: float | None = None,
) -> SolverResult:
    """Closed-form KKT solution of the relaxed Problem 1.

    ``n_min`` defaults to 1 copy: every live tag exists somewhere, which
    also keeps the alpha-fair term finite.  ``n_max`` defaults to ``R``
    (constraint Eq. 7).  The total-space constraint Eq. 6 is activated via
    an outer bisection on its multiplier when violated.
    """
    if not keys:
        return SolverResult(n={}, cost=0.0, pollution=0.0)
    if n_max is None:
        n_max = float(params.R)
    x, pollution = _stationary_point(keys, params, 0.0, n_min, n_max)
    iterations = 1
    if float(np.sum(x)) > params.N_R:
        # Eq. 6 is active: bisect the multiplier lam >= 0 until sum(n) = N_R.
        lam_lo, lam_hi = 0.0, 1.0
        while True:
            x, pollution = _stationary_point(keys, params, lam_hi, n_min, n_max)
            iterations += 1
            if float(np.sum(x)) <= params.N_R or lam_hi > 1e18:
                break
            lam_hi *= 10.0
        for _ in range(200):
            lam = 0.5 * (lam_lo + lam_hi)
            x, pollution = _stationary_point(keys, params, lam, n_min, n_max)
            iterations += 1
            if float(np.sum(x)) > params.N_R:
                lam_lo = lam
            else:
                lam_hi = lam
            if lam_hi - lam_lo <= 1e-12 * max(1.0, lam_hi):
                break
    n = {key: float(v) for key, v in zip(keys, x)}
    return SolverResult(
        n=n,
        cost=_vector_cost(x, keys, params),
        pollution=pollution,
        iterations=iterations,
    )


def solve_scipy(
    keys: Sequence[TagKey],
    params: MitosParams,
    n_min: float = 1.0,
    n_max: float | None = None,
    x0: Sequence[float] | None = None,
) -> SolverResult:
    """SLSQP solution of the relaxed Problem 1 (independent cross-check)."""
    if not keys:
        return SolverResult(n={}, cost=0.0, pollution=0.0)
    if n_max is None:
        n_max = float(params.R)
    k = len(keys)
    start = np.array(x0, dtype=float) if x0 is not None else np.full(k, max(n_min, 10.0))
    bounds = [(n_min, n_max)] * k
    constraints = [
        {
            "type": "ineq",
            "fun": lambda x: params.N_R - float(np.sum(x)),
            "jac": lambda x: -np.ones_like(x),
        }
    ]
    result = optimize.minimize(
        lambda x: _vector_cost(x, keys, params),
        start,
        jac=lambda x: _vector_grad(x, keys, params),
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    x = np.clip(result.x, n_min, n_max)
    _, o = _weights(keys, params)
    return SolverResult(
        n={key: float(v) for key, v in zip(keys, x)},
        cost=_vector_cost(x, keys, params),
        pollution=float(np.dot(o, x)),
        iterations=int(result.nit),
        converged=bool(result.success),
    )


def solve_integer_bruteforce(
    keys: Sequence[TagKey],
    params: MitosParams,
    max_copies: int,
    min_copies: int = 1,
) -> SolverResult:
    """Exhaustive integer search (the NP-hard original Problem 1).

    Only feasible for toy instances -- the search space is
    ``(max_copies - min_copies + 1) ** len(keys)``; a guard refuses more
    than ~2e6 points.
    """
    if not keys:
        return SolverResult(n={}, cost=0.0, pollution=0.0)
    span = max_copies - min_copies + 1
    points = span ** len(keys)
    if points > 2_000_000:
        raise ValueError(
            f"brute force over {points} points refused; shrink the instance"
        )
    _, o = _weights(keys, params)
    best_x: Tuple[int, ...] | None = None
    best_cost = math.inf
    evaluated = 0
    for x in itertools.product(range(min_copies, max_copies + 1), repeat=len(keys)):
        evaluated += 1
        if sum(x) > params.N_R:
            continue
        cost = _vector_cost(np.array(x, dtype=float), keys, params)
        if cost < best_cost:
            best_cost = cost
            best_x = x
    if best_x is None:
        raise ValueError("no feasible integer point (N_R too small)")
    return SolverResult(
        n={key: float(v) for key, v in zip(keys, best_x)},
        cost=best_cost,
        pollution=float(np.dot(o, np.array(best_x, dtype=float))),
        iterations=evaluated,
    )


def greedy_dynamics(
    keys: Sequence[TagKey],
    params: MitosParams,
    max_steps: int = 100_000,
    record_every: int = 0,
    exact: bool = True,
) -> Tuple[Dict[TagKey, int], List[Dict[TagKey, int]], bool]:
    """Run the distributed greedy to a fixed point.

    Starting from one copy per tag, repeatedly sweep the tags and increment
    any tag whose Eq. 8 marginal (exact gradient by default) is
    non-positive -- the Algorithm 1 step applied as an opportunity stream.
    Stops when a full sweep makes no increment (fixed point) or after
    ``max_steps`` increments.

    Returns ``(final_counts, snapshots, converged)``.
    """
    counts: Dict[TagKey, int] = {key: 1 for key in keys}
    snapshots: List[Dict[TagKey, int]] = []
    steps = 0
    while steps < max_steps:
        moved = False
        for key in keys:
            pollution = sum(
                params.o_of(t) * c for (t, _), c in counts.items()
            )
            marginal = marginal_cost(
                counts[key], pollution, key[0], params, exact=exact
            )
            if marginal <= 0 and counts[key] < params.R:
                counts[key] += 1
                steps += 1
                moved = True
                if record_every and steps % record_every == 0:
                    snapshots.append(dict(counts))
                if steps >= max_steps:
                    break
        if not moved:
            return counts, snapshots, True
    return counts, snapshots, False
