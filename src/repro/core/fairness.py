"""Fairness and tag-balancing metrics (Section IV contribution #3, Fig. 8).

The paper measures "fairness degree, or taint-balancing efficiency, based on
the mean square error difference between the number of copies of different
tags" and argues from information theory that balanced tag populations carry
more information (the fair-coin analogy).  We provide:

* :func:`copy_count_mse` -- the paper's Fig. 8 metric (lower is fairer),
* :func:`jain_index` -- the classic [1/k, 1] fairness index,
* :func:`shannon_entropy` / :func:`normalized_entropy` -- the
  information-theoretic view,
* :func:`max_min_ratio` -- the max-min balancing view that alpha -> inf
  optimizes.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def _as_list(copies: Iterable[float]) -> List[float]:
    values = [float(c) for c in copies]
    for v in values:
        if v < 0:
            raise ValueError(f"copy counts must be non-negative, got {v}")
    return values


def copy_count_mse(copies: Iterable[float]) -> float:
    """Mean squared deviation of copy counts from their mean (Fig. 8 metric).

    Zero when every tag has the same number of copies (perfect balance).
    """
    values = _as_list(copies)
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values) / len(values)


def jain_index(copies: Iterable[float]) -> float:
    """Jain's fairness index: 1 for perfect balance, 1/k for one-hot."""
    values = _as_list(copies)
    if not values:
        return 1.0
    total = sum(values)
    if total == 0:
        return 1.0
    square_sum = sum(v * v for v in values)
    return total * total / (len(values) * square_sum)


def shannon_entropy(copies: Iterable[float]) -> float:
    """Shannon entropy (bits) of the copy-count distribution.

    Treats copy counts as an unnormalized distribution over tags; the
    fair-coin analogy of the paper: a balanced tag population maximizes
    the information carried per tagged byte.
    """
    values = [v for v in _as_list(copies) if v > 0]
    total = sum(values)
    if total == 0:
        return 0.0
    return -sum((v / total) * math.log2(v / total) for v in values)


def normalized_entropy(copies: Iterable[float]) -> float:
    """Entropy normalized to [0, 1] by the log of the support size."""
    values = [v for v in _as_list(copies) if v > 0]
    if len(values) <= 1:
        return 1.0
    return shannon_entropy(values) / math.log2(len(values))


def max_min_ratio(copies: Iterable[float]) -> float:
    """max(copies) / min(copies): 1 is perfect balance, inf if any is zero."""
    values = _as_list(copies)
    if not values:
        return 1.0
    low = min(values)
    high = max(values)
    if low == 0:
        return math.inf if high > 0 else 1.0
    return high / low


def balancing_improvement(
    baseline_copies: Sequence[float], improved_copies: Sequence[float]
) -> float:
    """Fig. 8 headline number: baseline MSE / improved MSE (>= 1 is better).

    The paper reports tag balancing improving "up to 2x" as alpha grows.
    """
    base = copy_count_mse(baseline_copies)
    improved = copy_count_mse(improved_copies)
    if improved == 0:
        return math.inf if base > 0 else 1.0
    return base / improved
