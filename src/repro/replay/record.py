"""Recordings: serialized flow-event traces.

PANDA records a system run once and replays it many times with different
analyses attached; the paper replays its one-minute PassMark recording
under many MITOS parameter points.  A :class:`Recording` is our
equivalent: an ordered list of :class:`~repro.dift.flows.FlowEvent`
objects plus free-form metadata, serializable to JSON-lines so recordings
can be stored and reloaded bit-exactly.

The JSONL format is one header line (``{"meta": {...}}``) followed by one
line per event.  Locations and tags survive the round trip exactly
(tuples are restored from JSON arrays recursively).
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.dift.flows import FlowEvent, FlowKind
from repro.dift.tags import Tag


class RecordingError(Exception):
    """Malformed, truncated, or unreadable recording data.

    Messages name the offending line (1-based, counting non-blank lines)
    and what was wrong with it, so a corrupt multi-gigabyte trace is
    debuggable without bisecting it by hand.
    """


#: backwards-compatible alias (pre-hardening name)
RecordError = RecordingError

#: keys an event line may carry; anything else is a schema violation
_EVENT_KEYS = frozenset(
    {"kind", "dest", "tick", "sources", "tag", "context", "meta"}
)
#: keys every event line must carry
_REQUIRED_EVENT_KEYS = frozenset({"kind", "dest"})


def validate_event_payload(payload: object) -> Dict[str, object]:
    """Check an event line's schema before decoding it.

    Raises :class:`RecordingError` naming the missing or unknown keys;
    returns the payload (narrowed to a dict) when it is well-formed.
    """
    if not isinstance(payload, dict):
        raise RecordingError(
            f"event is not a JSON object: {type(payload).__name__}"
        )
    missing = _REQUIRED_EVENT_KEYS - payload.keys()
    if missing:
        raise RecordingError(
            f"event missing required key(s) {sorted(missing)}"
        )
    unknown = payload.keys() - _EVENT_KEYS
    if unknown:
        raise RecordingError(
            f"event has unknown key(s) {sorted(unknown)}"
        )
    return payload


def _encode_structure(value: object) -> object:
    """Tuples -> tagged JSON so decoding can restore them exactly."""
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_structure(v) for v in value]}
    if isinstance(value, list):
        return [_encode_structure(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode_structure(v) for k, v in value.items()}
    return value


def _decode_structure(value: object) -> object:
    if isinstance(value, dict):
        if set(value.keys()) == {"__tuple__"}:
            return tuple(_decode_structure(v) for v in value["__tuple__"])
        return {k: _decode_structure(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_structure(v) for v in value]
    return value


def event_to_dict(event: FlowEvent) -> Dict[str, object]:
    """JSON-serializable form of one event."""
    payload: Dict[str, object] = {
        "kind": event.kind.value,
        "dest": _encode_structure(event.destination),
        "tick": event.tick,
    }
    if event.sources:
        payload["sources"] = [_encode_structure(s) for s in event.sources]
    if event.tag is not None:
        payload["tag"] = [event.tag.type, event.tag.index]
    if event.context:
        payload["context"] = event.context
    if event.meta:
        payload["meta"] = _encode_structure(dict(event.meta))
    return payload


def event_from_dict(
    payload: Dict[str, object],
    interner: Optional[Dict[object, Tag]] = None,
) -> FlowEvent:
    """Inverse of :func:`event_to_dict`; raises :class:`RecordError`.

    ``interner`` (keyed by ``(type, index)``) deduplicates decoded tags so
    every occurrence of one tag across a recording is the *same* object --
    provenance-list membership tests then hit the identity fast path of
    ``list.__contains__`` instead of comparing fields.
    """
    try:
        kind = FlowKind(payload["kind"])
        destination = _decode_structure(payload["dest"])
        sources = tuple(
            _decode_structure(s) for s in payload.get("sources", [])
        )
        tag_payload = payload.get("tag")
        if tag_payload is None:
            tag = None
        else:
            key = (str(tag_payload[0]), int(tag_payload[1]))  # type: ignore[index]
            if interner is None:
                tag = Tag(key[0], key[1])
            else:
                tag = interner.get(key)
                if tag is None:
                    tag = Tag(key[0], key[1])
                    interner[key] = tag
        return FlowEvent(
            kind=kind,
            destination=destination,  # type: ignore[arg-type]
            sources=sources,  # type: ignore[arg-type]
            tick=int(payload.get("tick", 0)),  # type: ignore[arg-type]
            tag=tag,
            context=str(payload.get("context", "")),
            meta=_decode_structure(payload.get("meta", {})),  # type: ignore[arg-type]
        )
    except RecordingError:
        raise
    except Exception as exc:
        raise RecordingError(
            f"malformed event payload: {payload!r}"
        ) from exc


@dataclass
class Recording:
    """An ordered, replayable flow-event trace."""

    events: List[FlowEvent] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def append(self, event: FlowEvent) -> None:
        self.events.append(event)

    def extend(self, events: Iterable[FlowEvent]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FlowEvent]:
        return iter(self.events)

    @property
    def duration_ticks(self) -> int:
        """Last tick + 1, or 0 for an empty recording."""
        if not self.events:
            return 0
        return max(event.tick for event in self.events) + 1

    def kind_counts(self) -> Dict[str, int]:
        """Event counts by flow kind (for recording summaries)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    # -- serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        header = json.dumps({"meta": _encode_structure(self.meta)})
        lines = [header]
        lines.extend(json.dumps(event_to_dict(e)) for e in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Recording":
        lines = [
            (number, line)
            for number, line in enumerate(text.splitlines(), start=1)
            if line.strip()
        ]
        if not lines:
            return cls()
        header_number, header_line = lines[0]
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise RecordingError(
                f"line {header_number}: malformed recording header "
                f"(offset {exc.pos}): {exc.msg}"
            ) from exc
        if not isinstance(header, dict) or "meta" not in header:
            raise RecordingError(
                f"line {header_number}: recording header missing 'meta'"
            )
        recording = cls(meta=_decode_structure(header["meta"]))  # type: ignore[arg-type]
        interner: Dict[object, Tag] = {}
        for number, line in lines[1:]:
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RecordingError(
                    f"line {number}: malformed event line "
                    f"(offset {exc.pos}): {exc.msg} -- recording may be "
                    f"truncated"
                ) from exc
            try:
                recording.append(
                    event_from_dict(
                        validate_event_payload(payload), interner=interner
                    )
                )
            except RecordingError as exc:
                raise RecordingError(f"line {number}: {exc}") from exc
        return recording

    def save(self, path: Union[str, Path]) -> None:
        """Write JSONL, gzip-compressed when the path ends in ``.gz``."""
        target = Path(path)
        if target.suffix == ".gz":
            with gzip.open(target, "wt") as handle:
                handle.write(self.to_jsonl())
        else:
            target.write_text(self.to_jsonl())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Recording":
        """Read JSONL, transparently decompressing ``.gz`` files.

        Raises :class:`RecordingError` (never a bare IO/gzip error) on
        unreadable, undecodable, or truncated-mid-member files.
        """
        source = Path(path)
        try:
            if source.suffix == ".gz":
                with gzip.open(source, "rt") as handle:
                    text = handle.read()
            else:
                text = source.read_text()
        except EOFError as exc:
            raise RecordingError(
                f"recording {source} is truncated mid-gzip-member: {exc}"
            ) from exc
        except gzip.BadGzipFile as exc:
            raise RecordingError(
                f"recording {source} is not valid gzip: {exc}"
            ) from exc
        except UnicodeDecodeError as exc:
            raise RecordingError(
                f"recording {source} is not valid UTF-8 text: {exc}"
            ) from exc
        except OSError as exc:
            raise RecordingError(
                f"cannot read recording {source}: {exc}"
            ) from exc
        return cls.from_jsonl(text)


def record_machine(
    machine,
    meta: Optional[Dict[str, object]] = None,
    max_steps: Optional[int] = None,
) -> Recording:
    """Run a machine to completion, capturing its event stream.

    The machine must have been constructed *without* an ``event_sink`` (its
    trace list is consumed) or with a sink that this function temporarily
    replaces.
    """
    recording = Recording(meta=dict(meta or {}))
    machine._sink = recording.append
    machine.run(max_steps=max_steps)
    return recording
