"""PANDA-like record/replay of flow-event traces."""

from repro.replay.record import Recording, RecordError, record_machine
from repro.replay.replayer import Plugin, Replayer, ReplayResult, TrackerPlugin

__all__ = [
    "Recording",
    "RecordError",
    "record_machine",
    "Replayer",
    "ReplayResult",
    "Plugin",
    "TrackerPlugin",
]
