"""PANDA-like record/replay of flow-event traces."""

from repro.replay.checkpoint import (
    CheckpointError,
    CheckpointPlugin,
    checkpoint_state,
    read_checkpoint,
    restore_checkpoint_state,
    write_checkpoint,
)
from repro.replay.record import (
    Recording,
    RecordingError,
    RecordError,
    record_machine,
)
from repro.replay.replayer import (
    CallbackPlugin,
    Plugin,
    Replayer,
    ReplayResult,
    TrackerPlugin,
)
from repro.replay.supervisor import (
    SUPERVISOR_POLICIES,
    PluginSupervisor,
    SupervisorStats,
)

__all__ = [
    "Recording",
    "RecordingError",
    "RecordError",
    "record_machine",
    "Replayer",
    "ReplayResult",
    "Plugin",
    "TrackerPlugin",
    "CallbackPlugin",
    "PluginSupervisor",
    "SupervisorStats",
    "SUPERVISOR_POLICIES",
    "CheckpointError",
    "CheckpointPlugin",
    "checkpoint_state",
    "restore_checkpoint_state",
    "write_checkpoint",
    "read_checkpoint",
]
