"""Plugin supervision: keep a replay alive through plugin failures.

Without supervision, one exception inside any plugin kills the whole
replay and throws away all accumulated taint state.  A
:class:`PluginSupervisor` sits between the :class:`~repro.replay.replayer.Replayer`
loop and each plugin's ``on_event`` and applies a configurable policy:

* ``fail-fast``   -- re-raise (the unsupervised behaviour, made explicit),
* ``skip-event``  -- drop the offending event for that plugin and move on,
* ``quarantine``  -- permanently stop dispatching to a plugin that failed.

:class:`~repro.faults.TransientFault` is special-cased: it is retried up
to ``max_retries`` times with exponential backoff before the policy
applies.  Every fault, retry, recovery, skip, and quarantine is counted
both in plain :class:`SupervisorStats` and -- when a registry is bound --
through :mod:`repro.obs.metrics` (``supervisor.*`` counters).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.dift.flows import FlowEvent

if TYPE_CHECKING:  # avoid replay <-> obs/faults import cycles at load
    from repro.faults.injector import FaultInjector
    from repro.obs.metrics import MetricsRegistry
    from repro.replay.replayer import Plugin

#: the accepted values of PluginSupervisor.policy
SUPERVISOR_POLICIES = ("fail-fast", "skip-event", "quarantine")


@dataclass
class SupervisorStats:
    """What the supervisor saw and did during one replay."""

    faults: int = 0
    transient_faults: int = 0
    retries: int = 0
    recoveries: int = 0
    skipped_events: int = 0
    quarantined_plugins: int = 0
    faults_by_plugin: Dict[str, int] = field(default_factory=dict)

    def note_plugin(self, name: str) -> None:
        self.faults_by_plugin[name] = self.faults_by_plugin.get(name, 0) + 1

    def as_dict(self) -> Dict[str, int]:
        return {
            "faults": self.faults,
            "transient_faults": self.transient_faults,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "skipped_events": self.skipped_events,
            "quarantined_plugins": self.quarantined_plugins,
        }


class PluginSupervisor:
    """Policy-driven fault barrier around plugin ``on_event`` dispatch."""

    def __init__(
        self,
        policy: str = "skip-event",
        max_retries: int = 2,
        backoff_seconds: float = 0.0,
        backoff_factor: float = 2.0,
        injector: Optional["FaultInjector"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        if policy not in SUPERVISOR_POLICIES:
            raise ValueError(
                f"unknown supervisor policy {policy!r}; "
                f"expected one of {SUPERVISOR_POLICIES}"
            )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {backoff_seconds}"
            )
        self.policy = policy
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_factor = backoff_factor
        self.injector = injector
        self.stats = SupervisorStats()
        self._quarantined: Set[int] = set()
        self._metric = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Route supervisor counters through an obs metrics registry."""
        self._metric = {
            name: metrics.counter(f"supervisor.{name}")
            for name in (
                "faults", "retries", "recoveries",
                "skipped_events", "quarantined_plugins",
            )
        }

    def _count(self, name: str, amount: int = 1) -> None:
        if self._metric is not None:
            self._metric[name].inc(amount)

    def is_quarantined(self, plugin: "Plugin") -> bool:
        return id(plugin) in self._quarantined

    def _attempt(
        self, plugin: "Plugin", event: FlowEvent, index: int, attempt: int
    ) -> None:
        if self.injector is not None:
            self.injector.maybe_plugin_fault(plugin.name, index, attempt)
        plugin.on_event(event)

    def dispatch(
        self, plugin: "Plugin", event: FlowEvent, index: int = 0
    ) -> bool:
        """Run one plugin on one event under the configured policy.

        Returns ``True`` when the plugin processed the event (possibly
        after retries), ``False`` when it was skipped or quarantined.
        Raises only under ``fail-fast`` (or for exceptions that should
        never be swallowed, like ``KeyboardInterrupt``).
        """
        from repro.faults.injector import TransientFault

        if id(plugin) in self._quarantined:
            return False
        try:
            self._attempt(plugin, event, index, 0)
            return True
        except TransientFault as fault:
            self.stats.faults += 1
            self.stats.transient_faults += 1
            self.stats.note_plugin(plugin.name)
            self._count("faults")
            error: Exception = fault
        except Exception as fault:
            self.stats.faults += 1
            self.stats.note_plugin(plugin.name)
            self._count("faults")
            return self._apply_policy(plugin, fault)
        # transient: bounded retry with exponential backoff
        for attempt in range(self.max_retries):
            self.stats.retries += 1
            self._count("retries")
            if self.backoff_seconds > 0:
                time.sleep(
                    self.backoff_seconds * self.backoff_factor**attempt
                )
            try:
                self._attempt(plugin, event, index, attempt + 1)
            except TransientFault as fault:
                error = fault
                continue
            except Exception as fault:
                return self._apply_policy(plugin, fault)
            self.stats.recoveries += 1
            self._count("recoveries")
            return True
        return self._apply_policy(plugin, error)

    def _apply_policy(self, plugin: "Plugin", error: Exception) -> bool:
        if self.policy == "fail-fast":
            raise error
        if self.policy == "quarantine":
            self._quarantined.add(id(plugin))
            self.stats.quarantined_plugins += 1
            self._count("quarantined_plugins")
            return False
        self.stats.skipped_events += 1
        self._count("skipped_events")
        return False

    def reset(self) -> None:
        """Fresh stats and an empty quarantine (new replay)."""
        self.stats = SupervisorStats()
        self._quarantined.clear()
