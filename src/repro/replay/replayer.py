"""The replayer: feeds recorded events through a plugin chain.

Mirrors PANDA's plugin architecture (Fig. 6, steps 1-2): the replayer
iterates a :class:`~repro.replay.record.Recording` and hands every event to
each registered :class:`Plugin` in order.  FAROS/MITOS attach as plugins
(see :class:`TrackerPlugin` and :mod:`repro.faros.pipeline`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.dift.flows import FlowEvent
from repro.dift.tracker import DIFTTracker
from repro.replay.record import Recording

if TYPE_CHECKING:  # avoid a replay <-> obs import cycle at module load
    from repro.obs.tracing import SpanTracer
    from repro.replay.supervisor import PluginSupervisor


class Plugin:
    """Base plugin: override any subset of the hooks."""

    name: str = "plugin"
    #: harness plugins (e.g. the checkpoint writer) set this False so the
    #: supervisor never skips their events -- a skipped event would
    #: desynchronize their view of the stream position
    supervised: bool = True

    def on_begin(self, recording: Recording) -> None:
        """Called once before the first event."""

    def on_event(self, event: FlowEvent) -> None:
        """Called for every event in order."""

    def on_end(self) -> None:
        """Called once after the last event."""


class TrackerPlugin(Plugin):
    """Adapts a :class:`~repro.dift.tracker.DIFTTracker` to the plugin API."""

    name = "dift-tracker"

    def __init__(self, tracker: DIFTTracker, reset_on_begin: bool = True):
        self.tracker = tracker
        self.reset_on_begin = reset_on_begin

    def on_begin(self, recording: Recording) -> None:
        if self.reset_on_begin:
            self.tracker.reset()

    def on_event(self, event: FlowEvent) -> None:
        self.tracker.process(event)


class CallbackPlugin(Plugin):
    """Wraps a bare callable as a plugin (quick instrumentation)."""

    name = "callback"

    def __init__(self, fn: Callable[[FlowEvent], None]):
        self._fn = fn

    def on_event(self, event: FlowEvent) -> None:
        self._fn(event)


@dataclass
class ReplayResult:
    """Outcome of one replay pass."""

    events_processed: int
    duration_seconds: float
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return float("inf") if self.events_processed else 0.0
        return self.events_processed / self.duration_seconds


class Replayer:
    """Replays recordings through an ordered plugin chain.

    An optional :class:`~repro.obs.tracing.SpanTracer` times the whole
    loop (``replay.loop``) and the per-event plugin dispatch
    (``replay.on_event``); with no tracer the loop pays one ``None``
    check per event.

    An optional :class:`~repro.replay.supervisor.PluginSupervisor`
    intercepts plugin failures; without one, the original fail-fast
    fast-path loop runs unchanged.

    ``engine`` selects the execution strategy: ``"scalar"`` is the
    per-event plugin loop below; ``"vector"`` delegates to the columnar
    batch engine (:func:`repro.vector.engine.run_vector_replay`), which
    produces byte-identical results for the configurations it supports
    and raises :class:`~repro.vector.engine.VectorEngineError` for the
    rest (supervised, resumed, sampler/checkpoint-plugin, or
    degraded-mode replays).
    """

    def __init__(
        self,
        plugins: Optional[Sequence[Plugin]] = None,
        tracer: Optional["SpanTracer"] = None,
        supervisor: Optional["PluginSupervisor"] = None,
        engine: str = "scalar",
    ):
        if engine not in ("scalar", "vector"):
            raise ValueError(
                f"engine must be 'scalar' or 'vector', got {engine!r}"
            )
        self.plugins: List[Plugin] = list(plugins or [])
        self.tracer = tracer
        self.supervisor = supervisor
        self.engine = engine

    def add_plugin(self, plugin: Plugin) -> "Replayer":
        self.plugins.append(plugin)
        return self

    def replay(
        self,
        recording: Recording,
        limit: Optional[int] = None,
        start_index: int = 0,
    ) -> ReplayResult:
        """Feed every event (or the first ``limit``) through all plugins.

        ``start_index`` skips that many leading events without dispatching
        them -- the resume path after
        :func:`~repro.replay.checkpoint.restore_checkpoint_state` has put
        the trackers back at that position.  ``limit`` still counts only
        events actually processed.
        """
        if start_index < 0:
            raise ValueError(f"start_index must be >= 0, got {start_index}")
        if self.engine == "vector":
            from repro.vector.engine import run_vector_replay

            return run_vector_replay(
                self, recording, limit=limit, start_index=start_index
            )
        supervisor = self.supervisor
        if supervisor is None and start_index == 0:
            return self._replay_fast(recording, limit)
        tracer = self.tracer
        started = time.perf_counter()
        loop_start = self._begin(recording)
        processed = 0
        for index, event in enumerate(recording):
            if index < start_index:
                continue
            if limit is not None and processed >= limit:
                break
            event_start = time.perf_counter_ns() if tracer is not None else 0
            if supervisor is None:
                for plugin in self.plugins:
                    plugin.on_event(event)
            else:
                for plugin in self.plugins:
                    if plugin.supervised:
                        supervisor.dispatch(plugin, event, index)
                    else:
                        plugin.on_event(event)
            if tracer is not None:
                tracer.end("replay.on_event", event_start)
            processed += 1
        return self._finish(recording, processed, started, loop_start)

    def _replay_fast(
        self, recording: Recording, limit: Optional[int]
    ) -> ReplayResult:
        """The unsupervised from-zero loop: this is the disabled path whose
        overhead the benchmarks gate at <5% of the seed replica.

        The dominant configuration -- one plugin, no tracer, no limit --
        runs a dedicated loop with the plugin's ``on_event`` hoisted to a
        local, so each event costs one call plus the iteration itself.
        """
        tracer = self.tracer
        plugins = self.plugins
        started = time.perf_counter()
        loop_start = self._begin(recording)
        if tracer is None and limit is None and len(plugins) == 1:
            on_event = plugins[0].on_event
            for event in recording:
                on_event(event)
            return self._finish(
                recording, len(recording), started, loop_start
            )
        processed = 0
        for event in recording:
            if limit is not None and processed >= limit:
                break
            event_start = time.perf_counter_ns() if tracer is not None else 0
            for plugin in plugins:
                plugin.on_event(event)
            if tracer is not None:
                tracer.end("replay.on_event", event_start)
            processed += 1
        return self._finish(recording, processed, started, loop_start)

    # -- shared prologue/epilogue (both loops above use these) -----------

    def _begin(self, recording: Recording) -> int:
        """Dispatch ``on_begin`` hooks; returns the loop-span start."""
        loop_start = (
            time.perf_counter_ns() if self.tracer is not None else 0
        )
        for plugin in self.plugins:
            plugin.on_begin(recording)
        return loop_start

    def _finish(
        self,
        recording: Recording,
        processed: int,
        started: float,
        loop_start: int,
    ) -> ReplayResult:
        """Dispatch ``on_end`` hooks and build the result."""
        for plugin in self.plugins:
            plugin.on_end()
        if self.tracer is not None:
            self.tracer.end("replay.loop", loop_start)
        elapsed = time.perf_counter() - started
        return ReplayResult(
            events_processed=processed,
            duration_seconds=elapsed,
            meta=dict(recording.meta),
        )
