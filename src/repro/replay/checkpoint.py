"""Replay checkpoints: atomically-written snapshots of mid-replay state.

A checkpoint extends a :mod:`repro.dift.snapshot` tracker snapshot with
everything else a resumed replay needs to be **byte-identical** to an
uninterrupted run:

* the absolute index of the next event to process,
* the complete :class:`~repro.dift.stats.TrackerStats` (including
  ``by_context``; the tracker snapshot alone only restores ``ticks``),
* the pipeline stage counters,
* the confluence detector's already-alerted locations.

Files are written atomically (temp file + ``os.replace``) so a replay
killed *during* a checkpoint write leaves the previous checkpoint intact,
and gzip-compressed when the path ends in ``.gz``.

:class:`CheckpointPlugin` is the replayer plugin that writes a checkpoint
every ``every`` processed events; ``mitos-repro replay --checkpoint-every
N --resume-from PATH`` drives the whole cycle from the CLI.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.dift.snapshot import (
    SnapshotError,
    _location_from_json,
    _location_to_json,
    restore_tracker,
    snapshot_tracker,
)
from repro.dift.stats import TrackerStats
from repro.dift.tracker import DIFTTracker
from repro.replay.record import Recording
from repro.replay.replayer import Plugin

if TYPE_CHECKING:  # only for type hints; no import cycle at runtime
    from repro.faros.pipeline import FarosPipeline

#: checkpoint format version (bump on incompatible changes)
CHECKPOINT_VERSION = 1


class CheckpointError(Exception):
    """Malformed, incompatible, or unreadable checkpoint data.

    ``path`` names the offending file (when one is involved) and
    ``offset`` the byte/character position where decoding failed (when
    known), so a supervisor can log exactly what is corrupt before
    falling back to the previous checkpoint.
    """

    def __init__(
        self,
        message: str,
        path: Optional[Path] = None,
        offset: Optional[int] = None,
    ):
        super().__init__(message)
        self.path = path
        self.offset = offset


def checkpoint_state(
    tracker: DIFTTracker,
    event_index: int,
    events_total: Optional[int] = None,
    pipeline: Optional["FarosPipeline"] = None,
) -> Dict[str, object]:
    """Capture everything a resumed replay needs as one JSON document."""
    payload: Dict[str, object] = {
        "version": CHECKPOINT_VERSION,
        "kind": "replay-checkpoint",
        "event_index": int(event_index),
        "events_total": events_total,
        "tracker": snapshot_tracker(tracker),
        "stats": tracker.stats.to_payload(),
    }
    if pipeline is not None:
        payload["stage_counts"] = dict(pipeline.stage_counts)
    if tracker.detector is not None:
        payload["detector_flagged"] = [
            _location_to_json(location)
            for location in tracker.detector.flagged_snapshot()
        ]
    return payload


def restore_checkpoint_state(
    tracker: DIFTTracker,
    payload: Dict[str, object],
    pipeline: Optional["FarosPipeline"] = None,
) -> int:
    """Load a checkpoint into a compatible tracker (+ pipeline).

    Returns the index of the next event to replay.  The tracker is fully
    reset first; shadow memory, copy counters, complete statistics, and
    detector alert state all come back exactly as checkpointed.
    """
    if payload.get("kind") != "replay-checkpoint":
        raise CheckpointError(
            f"not a replay checkpoint: kind={payload.get('kind')!r}"
        )
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r}"
        )
    try:
        event_index = int(payload["event_index"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed event_index: {error}") from error
    if event_index < 0:
        raise CheckpointError(f"negative event_index {event_index}")
    try:
        restore_tracker(tracker, payload["tracker"])  # type: ignore[arg-type]
    except SnapshotError as error:
        raise CheckpointError(str(error)) from error
    try:
        tracker.stats = TrackerStats.from_payload(payload["stats"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"malformed stats: {error}") from error
    if pipeline is not None and "stage_counts" in payload:
        counts = payload["stage_counts"]
        if not isinstance(counts, dict):
            raise CheckpointError(
                f"malformed stage_counts: {type(counts).__name__}"
            )
        pipeline.stage_counts.clear()
        pipeline.stage_counts.update(
            {str(k): int(v) for k, v in counts.items()}
        )
    if tracker.detector is not None and "detector_flagged" in payload:
        try:
            tracker.detector.restore_flagged(
                _location_from_json(entry)
                for entry in payload["detector_flagged"]  # type: ignore[union-attr]
            )
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"malformed detector_flagged: {error}"
            ) from error
    return event_index


def previous_checkpoint_path(path: Union[str, Path]) -> Path:
    """Where ``write_checkpoint(keep_previous=True)`` parks the old file."""
    target = Path(path)
    return target.with_name(target.name + ".prev")


def write_checkpoint(
    path: Union[str, Path],
    payload: Dict[str, object],
    keep_previous: bool = False,
) -> Path:
    """Atomically write a checkpoint (gzip when the path ends ``.gz``).

    The document lands in ``<path>.tmp`` first and is moved into place
    with ``os.replace``, so readers never observe a torn checkpoint.
    With ``keep_previous=True`` the old checkpoint (if any) is first
    renamed to ``<path>.prev`` -- the fallback a supervisor restores
    from when the latest file turns out truncated or corrupt.
    """
    target = Path(path)
    text = json.dumps(payload)
    tmp = target.with_name(target.name + ".tmp")
    if target.suffix == ".gz":
        with gzip.open(tmp, "wt") as handle:
            handle.write(text)
    else:
        tmp.write_text(text)
    if keep_previous and target.exists():
        os.replace(target, previous_checkpoint_path(target))
    os.replace(tmp, target)
    return target


def read_checkpoint(path: Union[str, Path]) -> Dict[str, object]:
    """Read and minimally validate a checkpoint file.

    Every failure mode -- unreadable file, truncated gzip stream,
    non-UTF-8 bytes, invalid JSON -- raises :class:`CheckpointError`
    naming the path and (where known) the offset of the damage, never a
    raw ``EOFError``/decoder traceback.  Gzip is detected by magic
    bytes, not suffix, so renamed copies (``*.prev``) read fine.
    """
    source = Path(path)
    try:
        raw = source.read_bytes()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {source}: {error}", path=source
        ) from error
    if raw[:2] == b"\x1f\x8b":
        try:
            data = gzip.decompress(raw)
        except (EOFError, OSError, zlib.error) as error:
            raise CheckpointError(
                f"checkpoint {source} is a truncated or corrupt gzip "
                f"stream ({len(raw)} bytes on disk): {error}",
                path=source,
                offset=len(raw),
            ) from error
    else:
        data = raw
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise CheckpointError(
            f"checkpoint {source} is not UTF-8 at offset {error.start}: "
            f"{error.reason}",
            path=source,
            offset=error.start,
        ) from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"checkpoint {source} is not valid JSON at offset {error.pos} "
            f"(line {error.lineno}): {error.msg}",
            path=source,
            offset=error.pos,
        ) from error
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint {source} is not a JSON object", path=source
        )
    return payload


class CheckpointPlugin(Plugin):
    """Replayer plugin writing a checkpoint every ``every`` events.

    Register it *after* the pipeline plugin so each checkpoint includes
    the effects of the event that triggered it.  ``start_index`` seeds
    the absolute event counter for resumed replays.
    """

    name = "checkpoint"
    # never supervised: a skipped event would desynchronize the absolute
    # event counter from the stream, corrupting every later checkpoint
    supervised = False

    def __init__(
        self,
        tracker: DIFTTracker,
        path: Union[str, Path],
        every: int,
        pipeline: Optional["FarosPipeline"] = None,
        start_index: int = 0,
    ):
        if every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {every}")
        self.tracker = tracker
        self.path = Path(path)
        self.every = every
        self.pipeline = pipeline
        self.checkpoints_written = 0
        self._start_index = start_index
        self._index = start_index
        self._events_total: Optional[int] = None

    def set_position(self, index: int) -> None:
        """Seed the absolute event counter (the resume path)."""
        if index < 0:
            raise ValueError(f"position must be >= 0, got {index}")
        self._start_index = index
        self._index = index

    def on_begin(self, recording: Recording) -> None:
        self._events_total = len(recording)
        self._index = self._start_index

    def on_event(self, event) -> None:  # noqa: ANN001 - Plugin signature
        self._index += 1
        if self._index % self.every == 0:
            self._write()

    def _write(self) -> None:
        write_checkpoint(
            self.path,
            checkpoint_state(
                self.tracker,
                event_index=self._index,
                events_total=self._events_total,
                pipeline=self.pipeline,
            ),
        )
        self.checkpoints_written += 1
