"""The asyncio MITOS decision server.

One process, one event loop, ``--shards N`` independent
:class:`~repro.serve.shard.DecisionShard` units.  The data plane is
newline-delimited JSON over TCP (:mod:`repro.serve.protocol`); a stdlib
HTTP admin surface (``/healthz``, ``/stats``, ``/metrics``) can run on a
second port.

Request lifecycle::

    connection reader --(consistent hash on destination)--> shard queue
    shard worker: drain up to batch_max requests, decide, write responses

* **Backpressure**: shard queues are bounded (``queue_depth``); a
  request that finds its queue full is answered immediately with a
  structured ``overloaded`` error instead of being buffered without
  bound -- the client decides whether to back off or retry.
* **Bounded retry**: shard processing runs under a
  :class:`~repro.replay.supervisor.PluginSupervisor`-style retry loop --
  transient faults are retried up to ``max_retries`` times, anything
  else becomes an ``internal`` error response; the shard and the server
  stay up either way.
* **Graceful drain**: SIGTERM/SIGINT stop the listeners, let every
  queued request finish, write a final checkpoint per shard, then shut
  down.  Requests arriving mid-drain get a ``shutting-down`` error.
* **Checkpoint/restore**: with a checkpoint directory configured each
  shard periodically persists its tracker state via
  :mod:`repro.replay.checkpoint`; ``resume=True`` restores the files on
  boot so a restarted server continues with byte-identical policy state.

Routing uses a seeded-blake2b consistent-hash ring (never the
process-randomized ``hash()``), so a destination maps to the same shard
across restarts and across processes -- a restored checkpoint therefore
sees exactly the requests it would have seen without the restart.
"""

from __future__ import annotations

import asyncio
import bisect
import gc
import hashlib
import itertools
import json
import signal
import socket
import struct
import threading
import time
import urllib.parse
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # control stays lazily imported on the serving path
    from repro.control import AdaptiveController

from repro.experiments.common import experiment_params
from repro.faros.config import FarosConfig
from repro.faults.injector import TransientFault
from repro.obs.bundle import Observability, compose_observers
from repro.obs.logging import get_logger
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    SERVE_LATENCY_BUCKETS_US,
    MetricsRegistry,
)
from repro.obs.prometheus import PROMETHEUS_CONTENT_TYPE, render_registry
from repro.options import ServeOptions
from repro.serve.canary import CanaryShard
from repro.serve.events import DecisionTail, build_snapshot
# parse_request is pure; the module-level alias exists so tests can
# monkeypatch the server's view without touching the protocol module
from repro.serve.protocol import parse_request as parse_request_cached
from repro.serve.protocol import (
    BINARY_MAGIC,
    BINARY_VERSION,
    CTX_NONE,
    FRAME_DECIDE,
    FRAME_HELLO,
    FRAME_JSON,
    FRAME_STR_ADD,
    KIND_NAMES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    S_DECIDE_HEAD,
    S_F64,
    S_LEN,
    S_U16,
    TABLE_CONTEXTS,
    TABLE_DESTS,
    TABLE_TAG_TYPES,
    ApplyRequest,
    CandidateSpec,
    ControlRequest,
    DecideRequest,
    GossipRequest,
    ProtocolError,
    cand_block_struct,
    decode_string_table,
    encode_error_frame,
    encode_hello_ack,
    encode_json_response_frame,
    encode_message,
    error_response,
    format_location,
    ok_response,
    parse_location,
)
from repro.serve.shard import DecisionShard

logger = get_logger("repro.serve")

#: virtual nodes per shard on the consistent-hash ring
RING_REPLICAS = 64

#: floor for the /events snapshot interval (seconds)
MIN_EVENTS_INTERVAL = 0.05

#: bounded server-global ring of control.param_update records (/events)
CONTROL_TAIL_MAXLEN = 128


def _ring_point(label: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over shard indices."""

    def __init__(self, shards: int, replicas: int = RING_REPLICAS):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_ring_point(f"shard-{shard}:{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        position = bisect.bisect(self._points, _ring_point(key))
        if position == len(self._points):
            position = 0
        return self._shards[position]


class _LineReader:
    """Framed line reading with oversized-frame recovery.

    A line longer than ``max_frame`` is discarded up to its newline and
    reported as a :class:`ProtocolError` (``frame-too-large``); the
    connection then keeps working -- one bad frame never tears it down.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        max_frame: int,
        initial: bytes = b"",
    ):
        self._reader = reader
        self._max = max_frame
        self._buf = bytearray(initial)
        self._discarding = False

    async def next_line(self) -> Optional[bytes]:
        while True:
            newline = self._buf.find(b"\n")
            if self._discarding:
                if newline >= 0:
                    del self._buf[: newline + 1]
                    self._discarding = False
                    raise ProtocolError(
                        "frame-too-large",
                        f"frame exceeded {self._max} bytes and was discarded",
                    )
                self._buf.clear()
            elif newline >= 0:
                line = bytes(self._buf[:newline])
                del self._buf[: newline + 1]
                return line
            elif len(self._buf) > self._max:
                self._buf.clear()
                self._discarding = True
                continue
            chunk = await self._reader.read(1 << 16)
            if not chunk:
                return None
            self._buf += chunk


def _request_id_of(line: bytes) -> object:
    """Best-effort id extraction from a frame that failed to parse."""
    try:
        payload = json.loads(line)
    except Exception:
        return None
    if isinstance(payload, dict):
        return payload.get("id")
    return None


class _BinaryConn:
    """Per-connection state for the binary wire format.

    Holds the client-owned string tables (destinations pre-parsed to
    locations with their ring shard precomputed, so the per-request
    routing cost is one list index) and the preallocated output buffer
    response frames are struct-packed into.  ``out`` is shared by the
    reader (errors, hello-ack) and the shard workers (decide responses);
    both run on the one event loop and only ever append whole frames,
    then flush-and-clear, so interleaving is frame-atomic.
    """

    __slots__ = (
        "writer", "out", "dest_locs", "dest_shards", "tag_types",
        "contexts", "preamble_done", "hello_done", "discard", "skip_line",
    )

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.out = bytearray()
        self.dest_locs: List[Tuple[str, object]] = []
        self.dest_shards: List[int] = []
        self.tag_types: List[str] = []
        self.contexts: List[str] = []
        self.preamble_done = False
        self.hello_done = False
        #: bytes of an oversized frame body still to skip
        self.discard = 0
        #: resynchronizing past an interleaved NDJSON line (to its LF)
        self.skip_line = False


class MitosServer:
    """The long-running decision service; one instance per process."""

    def __init__(
        self,
        options: Optional[ServeOptions] = None,
        observability: Optional[Observability] = None,
    ):
        self.options = options if options is not None else ServeOptions()
        self.obs = observability
        params = experiment_params(
            quick=self.options.quick_calibration,
            tau=self.options.tau,
            alpha=self.options.alpha,
        )
        self.params = params
        config = FarosConfig(
            params=params, policy=self.options.policy, label="serve"
        )
        observer = (
            observability.decision_observer()
            if observability is not None
            else None
        )
        # the /events decision feed rides the same ifp_observer hook as
        # the decision-trace recorder; both exist only when obs is on
        self.decision_tail: Optional[DecisionTail] = None
        if observability is not None:
            self.decision_tail = DecisionTail()
            observer = compose_observers(observer, self.decision_tail.observer)
        if self.options.checkpoint_dir is not None:
            Path(self.options.checkpoint_dir).mkdir(
                parents=True, exist_ok=True
            )
        self.shards: List[DecisionShard] = []
        for index in range(self.options.shards):
            shard = DecisionShard(
                index,
                params=params,
                policy_factory=config.build_policy,
                checkpoint_path=self.options.shard_checkpoint_path(index),
                ifp_observer=observer,
            )
            shard.checkpoint_every = self.options.checkpoint_every
            self.shards.append(shard)
        self.restored_shards = 0
        self.gossip_received = 0
        self._ring = HashRing(self.options.shards)
        self._queues: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._admin: Optional[asyncio.base_events.Server] = None
        self._stop = None  # type: Optional[asyncio.Event]
        self._draining = False
        self._abort = False
        #: True once the data plane is serving (checkpoints restored,
        #: workers running, data port bound); readiness, not liveness
        self._ready = False
        #: gc thresholds saved before the opt-in freeze, restored on stop
        self._gc_thresholds: Optional[Tuple[int, int, int]] = None
        self._started_at = time.monotonic()
        self.port: Optional[int] = None
        self.admin_port: Optional[int] = None
        # counters (mirrored into obs metrics when a bundle is attached)
        self.requests_total = 0
        self.responses_total = 0
        self.errors_total = 0
        self.overloaded_total = 0
        self.retries_total = 0
        self.inflight = 0
        self.binary_connections = 0
        self.binary_requests = 0
        #: "binary" restricts the data plane (decide/apply) to negotiated
        #: binary connections; control ops stay available over NDJSON so
        #: gossip and health checks keep working
        self._binary_only = self.options.wire_format == "binary"
        # canary: shadow tracker+policy per shard, mirroring a fraction
        # of decide traffic under a second parameter set
        self.canaries: Optional[List[CanaryShard]] = None
        if self.options.canary_fraction > 0.0:
            canary_params = experiment_params(
                quick=self.options.quick_calibration,
                tau=(
                    self.options.canary_tau
                    if self.options.canary_tau is not None
                    else self.options.tau
                ),
                alpha=(
                    self.options.canary_alpha
                    if self.options.canary_alpha is not None
                    else self.options.alpha
                ),
            )
            canary_config = FarosConfig(
                params=canary_params,
                policy=self.options.canary_policy or self.options.policy,
                label="canary",
            )
            # one shared monotone counter so a single /events flip
            # cursor covers every shard's canary feed
            flip_counter = itertools.count(1)
            self.canaries = [
                CanaryShard(
                    index,
                    params=canary_params,
                    policy_factory=canary_config.build_policy,
                    fraction=self.options.canary_fraction,
                    seq_source=flip_counter.__next__,
                )
                for index in range(self.options.shards)
            ]
        # online parameter adaptation: one controller per shard, stepped
        # from the drain loop *between* batches -- no per-request hooks,
        # so the fast binary path stays eligible with control on.  A
        # swap lands as one reference rebind; the shard notices through
        # its `engine.params is not self.params` identity checks at the
        # top of the next decide entry point.
        self.controllers: Optional[List["AdaptiveController"]] = None
        self.control_tail: Optional[Deque[Dict[str, object]]] = None
        self._control_seq = 0
        if self.options.wants_control:
            from repro.control import AdaptiveController
            from repro.control.controller import bind_policy

            control = self.options.control
            assert control is not None
            self.control_tail = deque(maxlen=CONTROL_TAIL_MAXLEN)
            self.controllers = []
            for shard in self.shards:
                controller = AdaptiveController(params, control)
                bind_policy(controller, shard.tracker)
                controller._on_update = self._control_update_hook(
                    shard.index, controller
                )
                self.controllers.append(controller)
        # binary decide rows skip DecideRequest construction and go
        # straight to shard.decide_rows -- only sound when nothing needs
        # the per-request objects: no decision observer (obs/events), no
        # canary mirror, and the MITOS batch-kernel policy on every shard
        self._fast_binary = (
            observability is None
            and self.canaries is None
            and all(shard._mitos for shard in self.shards)
        )
        if observability is not None:
            metrics = observability.metrics
            self._m_requests = metrics.counter("serve.requests")
            self._m_responses = metrics.counter("serve.responses")
            self._m_errors = metrics.counter("serve.errors")
            self._m_overloaded = metrics.counter("serve.overloaded")
            self._m_retries = metrics.counter("serve.retries")
            self._m_decisions = metrics.counter("serve.decisions")
            self._tracer = observability.tracer
            # hot-path latency histograms: microsecond buckets tuned for
            # in-memory decide latencies (DEFAULT_BUCKETS is second-scale)
            self._h_parse = metrics.histogram(
                "serve.parse_us", SERVE_LATENCY_BUCKETS_US
            )
            # binary framing parses a whole read chunk at a time, so this
            # histogram is per-chunk, not per-request (docs/OBSERVABILITY)
            self._h_parse_binary = metrics.histogram(
                "serve.parse_us.binary", SERVE_LATENCY_BUCKETS_US
            )
            self._h_queue_wait = metrics.histogram(
                "serve.queue_wait_us", SERVE_LATENCY_BUCKETS_US
            )
            self._h_decide = metrics.histogram(
                "serve.decide_us", SERVE_LATENCY_BUCKETS_US
            )
            self._h_write = metrics.histogram(
                "serve.write_us", SERVE_LATENCY_BUCKETS_US
            )
            self._h_batch = metrics.histogram(
                "serve.batch_size", BATCH_SIZE_BUCKETS
            )
            if self.canaries is not None:
                self._m_canary_mirrored = metrics.counter("canary.mirrored")
                self._m_canary_flips = metrics.counter("canary.flips")
            else:
                self._m_canary_mirrored = None
                self._m_canary_flips = None
            self._m_control_updates = (
                metrics.counter("control.param_updates")
                if self.controllers is not None
                else None
            )
        else:
            self._m_requests = None
            self._m_responses = None
            self._m_errors = None
            self._m_overloaded = None
            self._m_retries = None
            self._m_decisions = None
            self._tracer = None
            self._h_parse = None
            self._h_parse_binary = None
            self._h_queue_wait = None
            self._h_decide = None
            self._h_write = None
            self._h_batch = None
            self._m_canary_mirrored = None
            self._m_canary_flips = None
            self._m_control_updates = None

    # -- online parameter adaptation ---------------------------------------

    def _control_update_hook(self, shard_index: int, controller):
        """The per-shard ``control.param_update`` fan-in.

        Runs on the event loop (shard workers are tasks, not threads),
        so appending to the server-global tail needs no locking.  The
        server-global ``seq`` is the /events cursor; the controller's
        own ``seq`` stays visible as ``shard_seq``.
        """

        def on_update(update) -> None:
            self._control_seq += 1
            record = update.as_dict()
            record["shard"] = shard_index
            record["shard_seq"] = update.seq
            record["seq"] = self._control_seq
            assert self.control_tail is not None
            self.control_tail.append(record)
            if self._m_control_updates is not None:
                self._m_control_updates.inc()

        return on_update

    def control_records_since(self, seq: int) -> List[Dict[str, object]]:
        """Param-update records newer than ``seq`` (the /events feed)."""
        if self.control_tail is None:
            return []
        return [
            record
            for record in self.control_tail
            if record["seq"] > seq  # type: ignore[operator]
        ]

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind sockets and start shard workers (non-blocking).

        Order matters for the liveness/readiness split: the admin
        surface binds *first* so ``/livez`` (and a ready=false
        ``/readyz``) answer while checkpoints are still restoring --
        restore runs in an executor thread precisely so a probe can
        observe the resuming state.  The data port binds last; only
        then does the server report ready.
        """
        self._stop = asyncio.Event()
        if self.options.admin_port is not None:
            self._admin = await asyncio.start_server(
                self._handle_admin, self.options.host, self.options.admin_port
            )
            self.admin_port = self._admin.sockets[0].getsockname()[1]
        if self.options.resume:
            loop = asyncio.get_running_loop()
            for shard in self.shards:
                restored = await loop.run_in_executor(None, shard.restore)
                if restored:
                    self.restored_shards += 1
                if shard.restore_fallback is not None:
                    logger.warning(
                        "checkpoint damaged; used fallback",
                        extra={
                            "shard": shard.index,
                            "error": str(shard.restore_fallback),
                        },
                    )
        for shard in self.shards:
            queue: asyncio.Queue = asyncio.Queue(
                maxsize=self.options.queue_depth
            )
            self._queues.append(queue)
            self._workers.append(
                asyncio.create_task(self._shard_worker(shard, queue))
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.options.host, self.options.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready = True
        if self.options.gc_freeze:
            # opt-in allocation hygiene for dedicated serving processes:
            # everything built during warmup (shards, tables, caches) is
            # permanent, so move it out of the collector's view and make
            # gen-0 sweeps rare -- the hot path allocates mostly
            # short-lived tuples that die in the nursery anyway
            self._gc_thresholds = gc.get_threshold()
            gc.collect()
            gc.freeze()
            gc.set_threshold(50000, 25, 25)
        logger.info(
            "serving",
            extra={
                "host": self.options.host,
                "port": self.port,
                "shards": len(self.shards),
                "restored": self.restored_shards,
            },
        )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (no-op where unsupported)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    def request_shutdown(self, abort: bool = False) -> None:
        """Begin shutdown: graceful drain by default, immediate on abort."""
        self._draining = True
        self._abort = self._abort or abort
        if self._stop is not None:
            self._stop.set()

    @property
    def is_ready(self) -> bool:
        """Readiness: serving and not draining (liveness is just 'up')."""
        return self._ready and not self._draining

    async def run(self) -> None:
        """Start, serve until shutdown is requested, drain, and stop."""
        await self.start()
        assert self._stop is not None
        await self._stop.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        self._draining = True
        if self._gc_thresholds is not None:
            # undo the serving-time freeze so embedded uses (tests,
            # ServerThread) leave the process GC exactly as they found it
            gc.unfreeze()
            gc.set_threshold(*self._gc_thresholds)
            self._gc_thresholds = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._admin is not None:
            self._admin.close()
            await self._admin.wait_closed()
        if not self._abort:
            # graceful: let every queued request finish...
            try:
                await asyncio.wait_for(
                    asyncio.gather(*(q.join() for q in self._queues)),
                    timeout=self.options.drain_timeout,
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                logger.warning("drain timed out with requests still queued")
            # ...then persist final shard state for a clean restart
            if self.options.checkpoint_dir is not None:
                for shard in self.shards:
                    shard.write_checkpoint()
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        if self.options.metrics_out is not None and self.obs is not None:
            self.obs.write_metrics(self.options.metrics_out)
        if self.obs is not None:
            self.obs.close()
        logger.info(
            "stopped",
            extra={
                "responses": self.responses_total,
                "errors": self.errors_total,
            },
        )

    # -- data plane --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform quirk
                pass
        try:
            # wire-format sniff: 0xB7 is never a legal NDJSON first byte
            first = await reader.read(1 << 16)
            if first and first[0] == BINARY_MAGIC:
                self.binary_connections += 1
                await self._binary_loop(reader, writer, first)
            elif first:
                await self._ndjson_loop(reader, writer, first)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _ndjson_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        initial: bytes,
    ) -> None:
        frames = _LineReader(reader, MAX_FRAME_BYTES, initial)
        while True:
            try:
                line = await frames.next_line()
            except ProtocolError as err:
                self._send_error(writer, None, err)
                await self._safe_drain(writer)
                continue
            if line is None:
                break
            if not line.strip():
                continue
            followup = self._dispatch(line, writer)
            if followup is not None:
                await followup

    async def _binary_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        initial: bytes,
    ) -> None:
        """Chunked read loop for a negotiated binary connection.

        One ``read()`` per wakeup, then a tight synchronous pass over
        every complete frame in the buffer (:meth:`_parse_binary`), one
        coalesced flush of whatever the pass produced.  No per-frame
        awaits -- the asyncio overhead amortizes over the whole chunk.
        """
        conn = _BinaryConn(writer)
        buf = bytearray(initial)
        read = reader.read
        parse = self._parse_binary
        h_parse = self._h_parse_binary
        safe_drain = self._safe_drain
        while True:
            if buf:
                if h_parse is not None:
                    started = time.perf_counter_ns()
                    parse(conn, buf)
                    h_parse.observe(
                        (time.perf_counter_ns() - started) / 1e3
                    )
                else:
                    parse(conn, buf)
                out = conn.out
                if out:
                    data = bytes(out)
                    del out[:]
                    writer.write(data)
                    await safe_drain(writer)
            chunk = await read(1 << 16)
            if not chunk:
                break
            buf += chunk

    def _parse_binary(self, conn: _BinaryConn, buf: bytearray) -> None:
        """One synchronous pass over every complete frame in ``buf``.

        The cross-connection batch assembler: decide rows are grouped
        into one bundle per shard and enqueued with a single ``put`` per
        shard per chunk, so a shard worker drains rows from many sockets
        into one ``decide_rows`` call.  Malformed input never tears the
        connection: it is answered with a structured ERROR frame and
        parsing resyncs (length skip for oversized frames, newline scan
        for an interleaved NDJSON line, magic scan for a bad preamble).
        """
        pos = 0
        end = len(buf)
        out = conn.out
        unpack_len = S_LEN.unpack_from
        unpack_head = S_DECIDE_HEAD.unpack_from
        unpack_f64 = S_F64.unpack_from
        unpack_u16 = S_U16.unpack_from
        fast = self._fast_binary
        single = len(self._queues) == 1
        m_requests = self._m_requests
        bundles: Dict[int, list] = {}
        legacy: List[object] = []
        while True:
            if conn.discard:
                available = end - pos
                if available <= 0:
                    break
                if available < conn.discard:
                    conn.discard -= available
                    pos = end
                    break
                pos += conn.discard
                conn.discard = 0
            if conn.skip_line:
                newline = buf.find(b"\n", pos)
                if newline < 0:
                    pos = end
                    break
                pos = newline + 1
                conn.skip_line = False
                continue
            if not conn.preamble_done:
                if end - pos < 2:
                    break
                if buf[pos] != BINARY_MAGIC:
                    # a retried preamble went astray; scan to the magic
                    pos += 1
                    continue
                version = buf[pos + 1]
                pos += 2
                if version != BINARY_VERSION:
                    self.errors_total += 1
                    out += encode_error_frame(
                        None,
                        "unsupported-version",
                        f"binary version {version} unsupported; "
                        f"this server speaks {BINARY_VERSION}",
                    )
                    continue
                conn.preamble_done = True
                continue
            if end - pos < 4:
                break
            (length,) = unpack_len(buf, pos)
            if length > MAX_FRAME_BYTES:
                self.errors_total += 1
                if buf[pos] == 0x7B:  # "{" -- an interleaved NDJSON line
                    out += encode_error_frame(
                        None,
                        "bad-frame",
                        "NDJSON line on a binary connection; "
                        "resyncing to its newline",
                    )
                    conn.skip_line = True
                    continue
                out += encode_error_frame(
                    None,
                    "frame-too-large",
                    f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}",
                )
                pos += 4
                conn.discard = length
                continue
            if end - pos - 4 < length:
                break
            body = pos + 4
            pos = body + length
            if length == 0:
                self.errors_total += 1
                out += encode_error_frame(None, "bad-frame", "empty frame")
                continue
            ftype = buf[body]
            if ftype == FRAME_DECIDE and conn.hello_done:
                self.requests_total += 1
                self.binary_requests += 1
                if m_requests is not None:
                    m_requests.inc()
                rid = None
                try:
                    rid, dest_i, kind, tick, ctx_i, free, flags = (
                        unpack_head(buf, body)
                    )
                    offset = body + 25
                    if flags & 1:
                        pollution = unpack_f64(buf, offset)[0]
                        offset += 8
                    else:
                        pollution = None
                    (ncand,) = unpack_u16(buf, offset)
                    offset += 2
                    tag_types = conn.tag_types
                    dest_shards = conn.dest_shards
                    if kind > 1 or dest_i >= len(dest_shards):
                        raise IndexError(
                            f"kind {kind} / dest {dest_i} out of range"
                        )
                    context = (
                        "" if ctx_i == CTX_NONE else conn.contexts[ctx_i]
                    )
                    if ncand:
                        # one combined unpack for the whole candidate
                        # block instead of ncand struct calls (the
                        # cached per-count struct already exists after
                        # the first frame of each width)
                        fields = cand_block_struct(ncand).unpack_from(
                            buf, offset
                        )
                        offset += 10 * ncand
                        it = iter(fields)
                        cands = [
                            (
                                type_i,
                                tag_types[type_i],
                                tag_i,
                                copies if copies >= 0 else None,
                            )
                            for type_i, tag_i, copies in zip(it, it, it)
                        ]
                    else:
                        cands = []
                    if offset != pos:
                        raise IndexError("frame length mismatch")
                except (struct.error, IndexError, OverflowError) as err:
                    self.errors_total += 1
                    out += encode_error_frame(
                        None if type(rid) is not int else rid,
                        "bad-frame",
                        f"malformed decide frame: {err}",
                    )
                    continue
                if self._draining:
                    self.errors_total += 1
                    out += encode_error_frame(
                        rid, "shutting-down", "server is draining"
                    )
                    continue
                if fast:
                    row = (
                        conn, rid, conn.dest_locs[dest_i], kind, tick,
                        context, free, pollution, cands,
                    )
                    shard_index = 0 if single else dest_shards[dest_i]
                    bundle = bundles.get(shard_index)
                    if bundle is None:
                        bundles[shard_index] = [row]
                    else:
                        bundle.append(row)
                else:
                    legacy.append(
                        DecideRequest(
                            id=rid,
                            destination=conn.dest_locs[dest_i],
                            free_slots=free,
                            candidates=tuple(
                                CandidateSpec(c[1], c[2], c[3])
                                for c in cands
                            ),
                            pollution=pollution,
                            kind=KIND_NAMES[kind],
                            tick=tick,
                            context=context,
                        )
                    )
                continue
            if ftype == FRAME_HELLO:
                self._handle_hello(conn, bytes(buf[body:pos]))
                continue
            if not conn.hello_done:
                self.errors_total += 1
                out += encode_error_frame(
                    None, "bad-frame",
                    f"hello required before frame type {ftype:#x}",
                )
                continue
            if ftype == FRAME_STR_ADD:
                self._handle_str_add(conn, bytes(buf[body:pos]))
                continue
            if ftype == FRAME_JSON:
                self._dispatch_envelope(conn, bytes(buf[body + 1:pos]))
                continue
            self.errors_total += 1
            out += encode_error_frame(
                None, "bad-frame", f"unknown frame type {ftype:#x}"
            )
        del buf[:pos]
        if bundles:
            queues = self._queues
            for shard_index, rows in bundles.items():
                try:
                    queues[shard_index].put_nowait(rows)
                    self.inflight += len(rows)
                except asyncio.QueueFull:
                    count = len(rows)
                    self.overloaded_total += count
                    self.errors_total += count
                    message = (
                        f"shard {shard_index} queue is full "
                        f"({self.options.queue_depth} deep); retry later"
                    )
                    for row in rows:
                        out += encode_error_frame(
                            row[1], "overloaded", message
                        )
        for request in legacy:
            self._enqueue_binary(conn, request)

    def _handle_hello(self, conn: _BinaryConn, body: bytes) -> None:
        """Seed the connection's string tables and acknowledge."""
        if conn.hello_done:
            self.errors_total += 1
            conn.out += encode_error_frame(
                None, "bad-frame",
                "duplicate hello; extend tables with STR_ADD",
            )
            return
        try:
            dests, position = decode_string_table(body, 1)
            tag_types, position = decode_string_table(body, position)
            contexts, position = decode_string_table(body, position)
            if position != len(body):
                raise ProtocolError(
                    "bad-frame", "trailing bytes after hello tables"
                )
            locations = [parse_location(dest) for dest in dests]
        except ProtocolError as err:
            self.errors_total += 1
            conn.out += encode_error_frame(None, err.code, err.message)
            return
        if len(self._queues) == 1:
            shards = [0] * len(locations)
        else:
            ring = self._ring
            shards = [
                ring.shard_for(format_location(loc)) for loc in locations
            ]
        conn.dest_locs = locations
        conn.dest_shards = shards
        conn.tag_types = tag_types
        conn.contexts = contexts
        conn.hello_done = True
        conn.out += encode_hello_ack(len(self.shards), self._binary_only)

    def _handle_str_add(self, conn: _BinaryConn, body: bytes) -> None:
        """Append entries to one table; atomic per frame, no ack."""
        try:
            if len(body) < 2:
                raise ProtocolError("bad-frame", "truncated str_add frame")
            table = body[1]
            entries, position = decode_string_table(body, 2)
            if position != len(body):
                raise ProtocolError(
                    "bad-frame", "trailing bytes after str_add entries"
                )
            if table == TABLE_DESTS:
                locations = [parse_location(entry) for entry in entries]
                if len(self._queues) == 1:
                    conn.dest_shards.extend([0] * len(locations))
                else:
                    ring = self._ring
                    conn.dest_shards.extend(
                        ring.shard_for(format_location(loc))
                        for loc in locations
                    )
                conn.dest_locs.extend(locations)
            elif table == TABLE_TAG_TYPES:
                conn.tag_types.extend(entries)
            elif table == TABLE_CONTEXTS:
                conn.contexts.extend(entries)
            else:
                raise ProtocolError(
                    "bad-frame", f"unknown string table {table}"
                )
        except ProtocolError as err:
            self.errors_total += 1
            conn.out += encode_error_frame(None, err.code, err.message)

    def _dispatch_envelope(self, conn: _BinaryConn, raw: bytes) -> None:
        """One JSON envelope request through the NDJSON pipeline.

        Every non-hot op (apply, ping, stats, checkpoint, gossip -- and
        decide, when a client needs fields the packed frame cannot carry)
        rides the binary framer as a JSON object; responses come back as
        JSON_RESP frames with exactly the NDJSON dict shapes.
        """
        self.requests_total += 1
        if self._m_requests is not None:
            self._m_requests.inc()
        try:
            request = parse_request_cached(raw)
        except ProtocolError as err:
            self.errors_total += 1
            if self._m_errors is not None:
                self._m_errors.inc()
            conn.out += encode_json_response_frame(
                error_response(_request_id_of(raw), err.code, err.message)
            )
            return
        if self._draining:
            self.errors_total += 1
            if self._m_errors is not None:
                self._m_errors.inc()
            conn.out += encode_json_response_frame(
                error_response(
                    request.id, "shutting-down", "server is draining"
                )
            )
            return
        if isinstance(request, ControlRequest):
            conn.out += encode_json_response_frame(
                self._control_payload(request)
            )
            self.responses_total += 1
            if self._m_responses is not None:
                self._m_responses.inc()
            return
        if isinstance(request, GossipRequest):
            conn.out += encode_json_response_frame(
                self._gossip_payload(request)
            )
            self.responses_total += 1
            if self._m_responses is not None:
                self._m_responses.inc()
            return
        self._enqueue_binary(conn, request)

    def _enqueue_binary(self, conn: _BinaryConn, request: object) -> None:
        """Queue a decide/apply from a binary connection (envelope reply)."""
        if len(self._queues) == 1:
            shard_index = 0
        else:
            shard_index = self._ring.shard_for(
                format_location(request.destination)
            )
        enqueued = (
            time.perf_counter_ns() if self._h_queue_wait is not None else 0
        )
        try:
            self._queues[shard_index].put_nowait((request, conn, enqueued))
        except asyncio.QueueFull:
            self.overloaded_total += 1
            if self._m_overloaded is not None:
                self._m_overloaded.inc()
            self.errors_total += 1
            if self._m_errors is not None:
                self._m_errors.inc()
            conn.out += encode_json_response_frame(
                error_response(
                    request.id,
                    "overloaded",
                    f"shard {shard_index} queue is full "
                    f"({self.options.queue_depth} deep); retry later",
                )
            )
            return
        self.inflight += 1

    def _dispatch(self, line: bytes, writer: asyncio.StreamWriter):
        """Route one frame; the happy path never creates a coroutine.

        Returns ``None`` when the request was queued (or errored with no
        flush needed beyond the write buffer), or an awaitable the
        connection loop must drive (error drains, control handling).
        """
        self.requests_total += 1
        if self._m_requests is not None:
            self._m_requests.inc()
        if self._h_parse is not None:
            started = time.perf_counter_ns()
            try:
                request = parse_request_cached(line)
            except ProtocolError as err:
                self._send_error(writer, _request_id_of(line), err)
                return self._safe_drain(writer)
            self._h_parse.observe((time.perf_counter_ns() - started) / 1e3)
        else:
            try:
                request = parse_request_cached(line)
            except ProtocolError as err:
                self._send_error(writer, _request_id_of(line), err)
                return self._safe_drain(writer)
        if self._draining:
            self._send_error(
                writer,
                request.id,
                ProtocolError("shutting-down", "server is draining"),
            )
            return self._safe_drain(writer)
        if isinstance(request, ControlRequest):
            return self._handle_control(request, writer)
        if isinstance(request, GossipRequest):
            return self._handle_gossip(request, writer)
        if self._binary_only:
            # wire_format="binary": the data plane requires a negotiated
            # binary connection; control ops above stay NDJSON-reachable
            self._send_error(
                writer,
                request.id,
                ProtocolError(
                    "bad-request",
                    "this server accepts decide/apply only on the binary "
                    "wire format; send the 0xB7 preamble and a hello",
                ),
            )
            return self._safe_drain(writer)
        if len(self._queues) == 1:
            shard_index = 0
        else:
            shard_index = self._ring.shard_for(
                format_location(request.destination)
            )
        queue = self._queues[shard_index]
        enqueued = (
            time.perf_counter_ns() if self._h_queue_wait is not None else 0
        )
        try:
            queue.put_nowait((request, writer, enqueued))
        except asyncio.QueueFull:
            self.overloaded_total += 1
            if self._m_overloaded is not None:
                self._m_overloaded.inc()
            self._send_error(
                writer,
                request.id,
                ProtocolError(
                    "overloaded",
                    f"shard {shard_index} queue is full "
                    f"({self.options.queue_depth} deep); retry later",
                ),
            )
            return self._safe_drain(writer)
        self.inflight += 1
        return None

    def _control_payload(self, request: ControlRequest) -> Dict[str, object]:
        """The response dict for a control op (shared by both wire formats)."""
        if request.op == "ping":
            return ok_response(
                request.id, pong=True, version=PROTOCOL_VERSION
            )
        if request.op == "stats":
            return ok_response(request.id, **self.stats())
        # checkpoint
        if self.options.checkpoint_dir is None:
            return error_response(
                request.id, "bad-request", "no checkpoint_dir configured"
            )
        try:
            written = [
                str(shard.write_checkpoint()) for shard in self.shards
            ]
            return ok_response(request.id, checkpoints=written)
        except OSError as error:  # structured, never tears the
            self.errors_total += 1  # connection down
            return error_response(
                request.id, "internal", f"checkpoint failed: {error}"
            )

    def _gossip_payload(self, request: GossipRequest) -> Dict[str, object]:
        """Apply one peer belief to every local shard.

        Belief updates are last-write-wins scalars, so applying them
        inline on the event loop (instead of through the shard queues)
        cannot race the worker tasks -- nothing here awaits between
        reads and writes of shard state.
        """
        for shard in self.shards:
            shard.receive_gossip(request.peer, request.pollution)
        self.gossip_received += 1
        return ok_response(
            request.id, peer=request.peer, shards=len(self.shards)
        )

    async def _handle_control(
        self, request: ControlRequest, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(encode_message(self._control_payload(request)))
        self.responses_total += 1
        if self._m_responses is not None:
            self._m_responses.inc()
        await self._safe_drain(writer)

    async def _handle_gossip(
        self, request: GossipRequest, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(encode_message(self._gossip_payload(request)))
        self.responses_total += 1
        if self._m_responses is not None:
            self._m_responses.inc()
        await self._safe_drain(writer)

    async def _shard_worker(
        self, shard: DecisionShard, queue: asyncio.Queue
    ) -> None:
        batch_max = self.options.batch_max
        canary = (
            self.canaries[shard.index] if self.canaries is not None else None
        )
        controller = (
            self.controllers[shard.index]
            if self.controllers is not None
            else None
        )
        decide_rows = shard.decide_rows
        safe_drain = self._safe_drain
        # adaptive batch deadline: under open-loop load a short sleep
        # after the first drain lets the connection readers parse and
        # enqueue more frames, so the columnar kernel sees wider batches.
        # The controller is gain-driven: the window doubles toward the
        # cap only while sleeping keeps *finding* extra items, and
        # collapses to zero the first time a sleep buys nothing -- a
        # closed-loop client (requests only arrive after responses) or
        # an idle queue therefore never pays the deadline, and p50 at
        # light load stays at the no-batching floor.
        max_wait = self.options.batch_deadline_us / 1e6
        wait = 0.0
        while True:
            item = await queue.get()
            batch = [item]
            while len(batch) < batch_max:
                try:
                    batch.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            gained = 0
            if wait > 0.0 and len(batch) < batch_max and not self._draining:
                # yield-don't-sleep: asyncio timers have ~1ms granularity
                # on epoll, far coarser than a µs-scale deadline, so the
                # window is spent yielding the loop (letting ready
                # connection readers parse and enqueue) with the actual
                # elapsed time checked against a monotonic deadline
                drained = len(batch)
                deadline = time.perf_counter() + wait
                while len(batch) < batch_max:
                    await asyncio.sleep(0)
                    while len(batch) < batch_max:
                        try:
                            batch.append(queue.get_nowait())
                        except asyncio.QueueEmpty:
                            break
                    if time.perf_counter() >= deadline:
                        break
                gained = len(batch) - drained
            if max_wait > 0.0:
                if gained:
                    wait = min(max_wait, wait * 2.0)
                elif wait == 0.0 and len(batch) > 1:
                    # company without sleeping hints at sustained
                    # arrivals: probe with a small window next wakeup
                    wait = max_wait / 8.0
                else:
                    wait = 0.0
            # a queue item is either one NDJSON-path (request, sink,
            # enqueued) triple or a whole binary row bundle (list); a
            # bundle counts as one item, so cross-connection batches can
            # be much wider than batch_max requests
            rows: Optional[list] = None
            triples: Optional[list] = None
            for item in batch:
                if type(item) is list:
                    rows = item if rows is None else rows + item
                else:
                    if triples is None:
                        triples = [item]
                    else:
                        triples.append(item)
            if self._h_batch is not None:
                self._h_batch.observe(
                    (len(rows) if rows else 0)
                    + (len(triples) if triples else 0)
                )
                dequeued = time.perf_counter_ns()
            if rows is not None:
                # the zero-copy fast path: one kernel pass over every
                # row this wakeup gathered, responses struct-packed into
                # each connection's buffer by the shard itself
                decide_rows(rows)
                count = len(rows)
                self.responses_total += count
                self.inflight -= count
                conns = dict.fromkeys(row[0] for row in rows)
                for conn in conns:
                    out = conn.out
                    if not out:
                        continue
                    data = bytes(out)
                    del out[:]
                    try:
                        conn.writer.write(data)
                    except Exception:  # connection already gone
                        continue
                    await safe_drain(conn.writer)
            if triples is not None:
                # coalesce every response for a connection into one
                # write: a socket send per response is the dominant cost
                # at high request rates (measured ~4x the decision)
                frames: Dict[asyncio.StreamWriter, List[bytes]] = {}
                for request, sink, enqueued in triples:
                    if self._h_queue_wait is not None and enqueued:
                        self._h_queue_wait.observe(
                            (dequeued - enqueued) / 1e3
                        )
                    response = self._process(shard, request)
                    if (
                        canary is not None
                        and isinstance(request, DecideRequest)
                        and response.get("ok")
                    ):
                        flipped = canary.observe(
                            request, response.get("propagated", ())
                        )
                        if flipped is not None:
                            if self._m_canary_mirrored is not None:
                                self._m_canary_mirrored.inc()
                            if flipped and self._m_canary_flips is not None:
                                self._m_canary_flips.inc()
                    if type(sink) is _BinaryConn:
                        frames.setdefault(sink.writer, []).append(
                            encode_json_response_frame(response)
                        )
                    else:
                        frames.setdefault(sink, []).append(
                            encode_message(response)
                        )
                    self.responses_total += 1
                    if self._m_responses is not None:
                        self._m_responses.inc()
                    self.inflight -= 1
                for writer, chunks in frames.items():
                    if self._h_write is not None:
                        started = time.perf_counter_ns()
                        try:
                            writer.write(b"".join(chunks))
                        except Exception:  # connection already gone
                            continue
                        await safe_drain(writer)
                        self._h_write.observe(
                            (time.perf_counter_ns() - started) / 1e3
                        )
                    else:
                        try:
                            writer.write(b"".join(chunks))
                        except Exception:  # connection already gone
                            continue
                        await safe_drain(writer)
            if controller is not None:
                # between drains, never per request: one cheap cadence
                # check; a due step reads the tracker census and may
                # atomically swap this shard's params.  Adding the
                # gossiped peer sum to the base-weighted local value
                # steers by the *believed* fleet pollution, not just
                # this shard's slice.
                stats = shard.tracker.stats
                if controller.due(stats.ifp_address + stats.ifp_control):
                    controller.step_tracker(
                        shard.tracker,
                        extra_pollution=sum(shard.peer_pollution.values()),
                    )
            for _ in batch:
                queue.task_done()

    def _process(self, shard: DecisionShard, request: object) -> Dict[str, object]:
        """One request through the shard under the bounded-retry barrier."""
        tracer = self._tracer
        h_decide = self._h_decide
        started = (
            time.perf_counter_ns()
            if tracer is not None or h_decide is not None
            else 0
        )
        error: Optional[Exception] = None
        for attempt in range(self.options.max_retries + 1):
            if attempt > 0:
                self.retries_total += 1
                if self._m_retries is not None:
                    self._m_retries.inc()
            try:
                if isinstance(request, DecideRequest):
                    response = shard.decide(request)
                    if self._m_decisions is not None:
                        self._m_decisions.inc()
                else:
                    assert isinstance(request, ApplyRequest)
                    response = shard.apply(request)
                if tracer is not None:
                    tracer.end("serve.decide", started)
                if h_decide is not None:
                    h_decide.observe((time.perf_counter_ns() - started) / 1e3)
                return response
            except ProtocolError as err:
                self.errors_total += 1
                if self._m_errors is not None:
                    self._m_errors.inc()
                return error_response(request.id, err.code, err.message)
            except TransientFault as err:  # bounded retry, then give up
                error = err
                continue
            except Exception as err:  # pragma: no cover - defensive barrier
                error = err
                break
        self.errors_total += 1
        if self._m_errors is not None:
            self._m_errors.inc()
        logger.warning(
            "request failed",
            extra={"shard": shard.index, "error": repr(error)},
        )
        return error_response(
            request.id, "internal", f"shard {shard.index} failed: {error!r}"
        )

    def _send_error(
        self,
        writer: asyncio.StreamWriter,
        request_id: object,
        err: ProtocolError,
    ) -> None:
        self.errors_total += 1
        if self._m_errors is not None:
            self._m_errors.inc()
        try:
            writer.write(
                encode_message(error_response(request_id, err.code, err.message))
            )
        except Exception:  # connection already gone
            pass

    @staticmethod
    async def _safe_drain(writer: asyncio.StreamWriter) -> None:
        try:
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    # -- admin surface -----------------------------------------------------

    @staticmethod
    def _parse_admin_request(
        request_line: bytes, header_lines: List[bytes]
    ) -> Tuple[str, Dict[str, str], Dict[str, str]]:
        """``(path, query, headers)`` from one admin HTTP request."""
        parts = request_line.decode("latin-1", "replace").split()
        target = parts[1] if len(parts) >= 2 else "/"
        path, _, raw_query = target.partition("?")
        query = dict(
            urllib.parse.parse_qsl(raw_query, keep_blank_values=True)
        )
        headers: Dict[str, str] = {}
        for raw in header_lines:
            name, sep, value = (
                raw.decode("latin-1", "replace").partition(":")
            )
            if sep:
                headers[name.strip().lower()] = value.strip()
        return path, query, headers

    @staticmethod
    def _wants_prometheus(
        query: Dict[str, str], headers: Dict[str, str]
    ) -> bool:
        fmt = query.get("format", "").lower()
        if fmt in ("prometheus", "text"):
            return True
        if fmt == "json":
            return False
        accept = headers.get("accept", "").lower()
        return "text/plain" in accept or "openmetrics" in accept

    @staticmethod
    def _write_http(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            503: "Service Unavailable",
        }.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(body)

    async def _handle_admin(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            header_lines: List[bytes] = []
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                header_lines.append(header)
            path, query, headers = self._parse_admin_request(
                request_line, header_lines
            )
            if path == "/events":
                await self._stream_events(writer, query)
            elif path == "/metrics" and self._wants_prometheus(
                query, headers
            ):
                body = render_registry(self.export_registry()).encode("utf-8")
                self._write_http(
                    writer, 200, PROMETHEUS_CONTENT_TYPE, body
                )
                await self._safe_drain(writer)
            else:
                status, payload = self._admin_route(path)
                body = json.dumps(payload, indent=2).encode("utf-8")
                self._write_http(writer, status, "application/json", body)
                await self._safe_drain(writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _stream_events(
        self, writer: asyncio.StreamWriter, query: Dict[str, str]
    ) -> None:
        """NDJSON snapshot stream: one self-contained line per interval."""
        try:
            interval = max(
                MIN_EVENTS_INTERVAL, float(query.get("interval", "1.0"))
            )
            count = int(query.get("count", "0"))
        except ValueError:
            body = json.dumps(
                {"ok": False, "error": "bad-query", "query": query}
            ).encode("utf-8")
            self._write_http(writer, 400, "application/json", body)
            await self._safe_drain(writer)
            return
        writer.write(
            b"HTTP/1.0 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        seq = 0
        decision_cursor = 0
        flip_cursor = 0
        control_cursor = 0
        while not writer.is_closing():
            seq += 1
            snapshot = build_snapshot(
                self,
                seq,
                decision_cursor=decision_cursor,
                flip_cursor=flip_cursor,
                control_cursor=control_cursor,
            )
            decision_cursor = snapshot.get("decision_seq", decision_cursor)
            flip_cursor = snapshot.get("flip_seq", flip_cursor)
            control_cursor = snapshot.get("control_seq", control_cursor)
            writer.write(
                json.dumps(snapshot, separators=(",", ":")).encode("utf-8")
                + b"\n"
            )
            # a drain failure means the client went away; it raises
            # ConnectionError which _handle_admin absorbs per-connection
            await writer.drain()
            if count and seq >= count:
                break
            stop = self._stop
            if stop is None:
                await asyncio.sleep(interval)
            else:
                try:
                    await asyncio.wait_for(stop.wait(), timeout=interval)
                    break  # shutting down: end the stream cleanly
                except asyncio.TimeoutError:
                    pass

    def _admin_route(self, path: str) -> Tuple[int, Dict[str, object]]:
        if path == "/healthz":
            # combined view: ``ok`` stays the liveness bit for existing
            # probes; ``ready`` is the readiness split (false while
            # restoring checkpoints or draining)
            return 200, {
                "ok": True,
                "live": True,
                "ready": self.is_ready,
                "version": PROTOCOL_VERSION,
                "draining": self._draining,
                "shards": len(self.shards),
            }
        if path == "/livez":
            return 200, {"ok": True, "live": True}
        if path == "/readyz":
            ready = self.is_ready
            return 200 if ready else 503, {
                "ok": ready,
                "ready": ready,
                "draining": self._draining,
            }
        if path == "/stats":
            return 200, self.stats()
        if path == "/metrics":
            return 200, self.metrics_payload()
        return 404, {"ok": False, "error": "not-found", "path": path}

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "version": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._started_at,
            "draining": self._draining,
            "ready": self.is_ready,
            "requests": self.requests_total,
            "responses": self.responses_total,
            "errors": self.errors_total,
            "overloaded": self.overloaded_total,
            "retries": self.retries_total,
            "inflight": self.inflight,
            "restored_shards": self.restored_shards,
            "gossip_received": self.gossip_received,
            "wire_format": self.options.wire_format,
            "binary_connections": self.binary_connections,
            "binary_requests": self.binary_requests,
            "queue_depths": [q.qsize() for q in self._queues],
            "shards": [shard.stats_payload() for shard in self.shards],
        }
        if self.canaries is not None:
            payload["canary"] = [
                canary.stats_payload() for canary in self.canaries
            ]
        if self.controllers is not None:
            payload["control"] = [
                controller.stats_payload() for controller in self.controllers
            ]
        return payload

    def metrics_payload(self) -> Dict[str, object]:
        """The ``/metrics`` JSON body; always carries the server counters."""
        payload: Dict[str, object] = {"server": self.stats()}
        if self.obs is not None:
            self.refresh_gauges()
            payload.update(self.obs.export())
        else:
            payload["metrics"] = self.export_registry().as_dict()
        return payload

    def refresh_gauges(self) -> None:
        """Update scrape-time gauges in the obs registry (no hot-path cost).

        Queue depths, in-flight, uptime and per-shard pollution are
        sampled when someone looks (``/metrics``, ``/events``), not on
        every request.
        """
        if self.obs is None:
            return
        self._set_state_gauges(self.obs.metrics)

    def export_registry(self) -> MetricsRegistry:
        """The registry behind the Prometheus exposition.

        With observability attached this is the live registry (gauges
        refreshed); without it an ephemeral registry is synthesized from
        the always-on server counters, so ``/metrics`` exposition is
        never empty.
        """
        if self.obs is not None:
            self.refresh_gauges()
            return self.obs.metrics
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(self.requests_total)
        registry.counter("serve.responses").inc(self.responses_total)
        registry.counter("serve.errors").inc(self.errors_total)
        registry.counter("serve.overloaded").inc(self.overloaded_total)
        registry.counter("serve.retries").inc(self.retries_total)
        registry.counter("serve.decisions").inc(
            sum(shard.decisions_served for shard in self.shards)
        )
        if self.canaries is not None:
            registry.counter("canary.mirrored").inc(
                sum(canary.mirrored for canary in self.canaries)
            )
            registry.counter("canary.flips").inc(
                sum(canary.flips for canary in self.canaries)
            )
        self._set_state_gauges(registry)
        return registry

    def _set_state_gauges(self, registry: MetricsRegistry) -> None:
        registry.gauge("serve.uptime_seconds").set(
            time.monotonic() - self._started_at
        )
        registry.gauge("serve.draining").set(1.0 if self._draining else 0.0)
        registry.gauge("serve.inflight").set(float(self.inflight))
        for index, queue in enumerate(self._queues):
            registry.gauge(f"serve.queue_depth.{index}").set(
                float(queue.qsize())
            )
        for shard in self.shards:
            registry.gauge(f"serve.pollution.{shard.index}").set(
                shard.tracker.pollution()
            )
            registry.gauge(f"serve.live_tags.{shard.index}").set(
                float(shard.tracker.counter.live_tags())
            )


class ServerThread:
    """A server running on its own event loop in a daemon thread.

    The in-process harness behind ``mitos-repro bench-serve``, the load
    generator tests, and anything else that wants a live server without
    spawning a process.  ``stop()`` drains gracefully; ``abort()`` kills
    the server mid-load (no drain, no final checkpoint) -- the
    checkpoint/restore equivalence tests use that to simulate a crash.
    """

    def __init__(
        self,
        options: Optional[ServeOptions] = None,
        observability: Optional[Observability] = None,
        profile: Optional[object] = None,
    ):
        self.server = MitosServer(options, observability)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="mitos-serve", daemon=True
        )
        self._error: Optional[BaseException] = None
        #: a cProfile.Profile to run the server loop under (bench-serve
        #: --profile); enabled/disabled inside the server thread so the
        #: dump covers exactly the serving work
        self._profile = profile

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            finally:
                self._ready.set()
            assert self.server._stop is not None
            await self.server._stop.wait()
            await self.server._shutdown()

        profile = self._profile
        try:
            if profile is not None:
                profile.enable()
            try:
                asyncio.run(main())
            finally:
                if profile is not None:
                    profile.disable()
        except BaseException as error:  # surfaced by start()/stop()
            self._error = error
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError(
                f"server failed to start: {self._error!r}"
            ) from self._error
        if self.server.port is None:
            raise RuntimeError("server did not bind within 30s")
        return self

    @property
    def host(self) -> str:
        return self.server.options.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def admin_port(self) -> Optional[int]:
        return self.server.admin_port

    def _signal_stop(self, abort: bool) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_shutdown, abort)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain: finish queued requests, final checkpoints."""
        self._signal_stop(abort=False)
        self._thread.join(timeout=timeout)

    def abort(self, timeout: float = 30.0) -> None:
        """Kill mid-load: no drain, no final checkpoint."""
        self._signal_stop(abort=True)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
