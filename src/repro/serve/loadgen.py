"""Closed-loop load generator with offline-equivalence checking.

The serving stack's correctness story is end-to-end: a served decision
must be the decision the offline scalar replay would have made.  This
module makes that checkable (and benchmarkable) in three steps:

1. :func:`collect_offline_decisions` replays a
   :class:`~repro.replay.record.Recording` through a plain scalar
   :class:`~repro.dift.tracker.DIFTTracker` with an ``ifp_observer``
   that captures, for every indirect-flow decision, exactly the inputs
   the policy saw (candidates in order with copies, free slots,
   pre-propagation pollution) and the full ranked outcome it produced;
2. each capture becomes one *explicit-mode* decide request -- copies
   and pollution travel with the request, so the server's answer is a
   pure function of the request and the parity holds for **any** shard
   count, not just one;
3. :func:`run_load` replays those requests against a live server,
   closed-loop with a bounded pipeline window, and compares every
   response field-for-field (floats included -- ``json`` round-trips
   IEEE doubles exactly) against the offline outcome.

``stateful_stream`` builds the other flavour: the full event stream as
``apply`` + stateful ``decide`` requests, which reproduces the offline
run only at ``shards=1`` (copy counts and pollution are global offline
but per-shard online) -- the checkpoint/restore equivalence tests use
it to drive a server that gets killed mid-load.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.params import MitosParams
from repro.dift.tracker import DIFTTracker
from repro.faros.config import FarosConfig
from repro.obs.metrics import SERVE_LATENCY_BUCKETS_US
from repro.replay.record import Recording
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    CTX_NONE,
    FRAME_HELLO_ACK,
    KIND_CODES,
    ProtocolError,
    S_LEN,
    decode_response_frame,
    encode_decide_frame,
    encode_hello,
    encode_json_frame,
    encode_preamble,
    format_location,
)

_INDIRECT_KINDS = frozenset({"address_dep", "control_dep"})


def split_chunk_lines(
    buffer: bytearray,
    t_recv: float,
    append: Callable[[Tuple[float, bytes]], None],
) -> int:
    """Split complete NDJSON lines out of ``buffer``; return how many.

    ``t_recv`` must be taken once per received chunk, immediately after
    ``recv`` returns and **before** this split loop runs -- every frame
    completed by one chunk shares that chunk's arrival time, and a frame
    split across chunks is stamped with the arrival of the chunk that
    completed it.  Incomplete tail bytes stay in ``buffer`` for the next
    chunk.
    """
    start = 0
    count = 0
    newline = buffer.find(b"\n")
    while newline >= 0:
        append((t_recv, bytes(buffer[start:newline])))
        count += 1
        start = newline + 1
        newline = buffer.find(b"\n", start)
    if start:
        del buffer[:start]
    return count


def split_chunk_frames(
    buffer: bytearray,
    t_recv: float,
    append: Callable[[Tuple[float, bytes]], None],
) -> int:
    """Binary twin of :func:`split_chunk_lines`: length-prefix hopping.

    Walks u32-LE length prefixes instead of scanning for newlines; a
    split prefix or body carries over in ``buffer`` until the chunk
    that completes it arrives (and stamps it).
    """
    pos = 0
    count = 0
    end = len(buffer)
    unpack_len = S_LEN.unpack_from
    while end - pos >= 4:
        (length,) = unpack_len(buffer, pos)
        body = pos + 4
        if end - body < length:
            break
        pos = body + length
        append((t_recv, bytes(buffer[body:pos])))
        count += 1
    if pos:
        del buffer[:pos]
    return count


@dataclass
class OfflineDecision:
    """One offline IFP decision: the request that reproduces it + the
    exact response the server must give."""

    #: wire payload (no id) in explicit mode: copies+pollution included
    request: Dict[str, object]
    #: the fields a correct response must carry verbatim
    expected: Dict[str, object]


def _decision_rows(details) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for decision in details.decisions:
        candidate = decision.candidate
        tag = candidate.key
        rows.append(
            {
                "tag": f"{tag.type}:{tag.index}",
                "type": candidate.tag_type,
                "copies": candidate.copies,
                "marginal": decision.marginal,
                "under": decision.under_marginal,
                "over": decision.over_marginal,
                "propagate": decision.propagate,
            }
        )
    return rows


def collect_offline_decisions(
    recording: Recording,
    params: MitosParams,
    policy: str = "mitos",
    limit: Optional[int] = None,
) -> List[OfflineDecision]:
    """Scalar-replay ``recording`` and capture every IFP decision.

    The capture hook rides the tracker's ``ifp_observer``, which fires
    with precisely the inputs ``select_with_details`` received --
    candidate order, copy counts at decision time, destination free
    slots, pre-propagation pollution -- plus the ranked
    :class:`~repro.core.decision.MultiDecision` it returned.
    """
    captured: List[OfflineDecision] = []

    def observer(event, candidates, details, selected, pollution) -> None:
        kind = event.kind.value
        if kind not in _INDIRECT_KINDS or details is None:
            return
        request: Dict[str, object] = {
            "op": "decide",
            "dest": format_location(event.destination),
            "kind": kind,
            "tick": event.tick,
            "free_slots": details.free_slots,
            "pollution": pollution,
            "candidates": [
                {
                    "type": c.tag_type,
                    "index": c.key.index,
                    "copies": c.copies,
                }
                for c in candidates
            ],
        }
        if event.context:
            request["context"] = event.context
        expected = {
            "propagated": [f"{t.type}:{t.index}" for t in selected],
            "decisions": _decision_rows(details),
        }
        captured.append(OfflineDecision(request=request, expected=expected))

    config = FarosConfig(params=params, policy=policy, label="loadgen")
    tracker = DIFTTracker(
        params=params, policy=config.build_policy(), ifp_observer=observer
    )
    events = recording.events if limit is None else recording.events[:limit]
    for event in events:
        tracker.process(event)
    return captured


def stateful_stream(
    recording: Recording, limit: Optional[int] = None
) -> List[Dict[str, object]]:
    """The recording as a stateful-mode request stream.

    Direct flows (insert/clear/copy/compute) become ``apply`` requests;
    indirect flows become ``apply`` requests too -- the shard's tracker
    runs its own candidate derivation and decision, exactly like the
    offline replay.  Only meaningful at ``shards=1``, where the single
    shard sees the same global state the offline tracker does.
    """
    requests: List[Dict[str, object]] = []
    events = recording.events if limit is None else recording.events[:limit]
    for event in events:
        payload: Dict[str, object] = {
            "op": "apply",
            "kind": event.kind.value,
            "dest": format_location(event.destination),
            "tick": event.tick,
        }
        if event.sources:
            payload["sources"] = [format_location(s) for s in event.sources]
        if event.tag is not None:
            payload["tag"] = [event.tag.type, event.tag.index]
        if event.context:
            payload["context"] = event.context
        requests.append(payload)
    return requests


@dataclass
class Mismatch:
    """One served decision that differed from the offline replay."""

    index: int
    field_name: str
    expected: object
    actual: object


@dataclass
class LoadResult:
    """Outcome of one closed-loop run against a live server."""

    requests: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    #: wall-clock microseconds per request, submit to response-read
    latencies_us: List[float] = field(default_factory=list)
    mismatches: List[Mismatch] = field(default_factory=list)
    #: per-candidate oracle agreement: served propagate == offline
    #: propagate (the live twin of the sim's oracle-agreement metric)
    agreement_hits: int = 0
    agreement_total: int = 0

    @property
    def matched(self) -> bool:
        return not self.mismatches and not self.errors

    @property
    def agreement(self) -> float:
        if self.agreement_total <= 0:
            return 1.0
        return self.agreement_hits / self.agreement_total

    @property
    def decisions_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile latency in microseconds (0 when empty)."""
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        position = min(
            len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[position]

    def latency_histogram(
        self, buckets: Sequence[float] = SERVE_LATENCY_BUCKETS_US
    ) -> Dict[str, List[object]]:
        """Latency distribution over the serve bucket boundaries.

        Same boundaries as the server's ``serve.*_us`` metrics, so the
        client-side and server-side views line up.  ``le_us[i]`` is the
        inclusive upper bound of ``counts[i]``; the final ``"inf"``
        bucket holds the overflow.
        """
        counts = [0] * (len(buckets) + 1)
        for value in self.latencies_us:
            counts[bisect_left(buckets, value)] += 1
        return {"le_us": [*buckets, "inf"], "counts": counts}

    def summary(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mismatches": len(self.mismatches),
            "matched": self.matched,
            "elapsed_seconds": self.elapsed_seconds,
            "decisions_per_second": self.decisions_per_second,
            "latency_us": {
                "p50": self.latency_percentile(50),
                "p95": self.latency_percentile(95),
                "p99": self.latency_percentile(99),
            },
            "latency_histogram_us": self.latency_histogram(),
            "agreement": self.agreement,
            "agreement_candidates": self.agreement_total,
        }


def _compare(
    index: int,
    expected: Dict[str, object],
    response: Dict[str, object],
    mismatches: List[Mismatch],
    max_mismatches: int,
) -> None:
    for key, want in expected.items():
        if len(mismatches) >= max_mismatches:
            return
        got = response.get(key)
        if got != want:
            mismatches.append(Mismatch(index, key, want, got))


def observe_agreement(
    expected: Dict[str, object], response: Dict[str, object]
) -> Tuple[int, int]:
    """Per-candidate ``(hits, total)`` of served vs oracle propagate bits.

    The live counterpart of the cluster sim's oracle-agreement metric:
    for every candidate the offline replay ranked, does the served
    decision propagate exactly when the oracle would?
    """
    hits = total = 0
    got_rows = response.get("decisions") or []
    by_tag = {
        row.get("tag"): row for row in got_rows if isinstance(row, dict)
    }
    for row in expected.get("decisions") or []:
        got = by_tag.get(row.get("tag"), {})
        total += 1
        if bool(row.get("propagate")) == bool(got.get("propagate")):
            hits += 1
    return hits, total


def _encode_binary_worker(
    decisions: Sequence[OfflineDecision],
    indices: Sequence[int],
    encoded: List[bytes],
) -> Tuple[bytes, List[str]]:
    """Pre-encode one worker's slice as binary frames (off the clock).

    String tables are per-connection, so each worker owns one set: all
    three tables are built up front and seeded through the hello frame
    -- no mid-stream ``STR_ADD`` traffic in the timed window.  Returns
    the preamble+hello bytes and the worker's tag-type table (needed to
    decode its responses); frames land in ``encoded`` by decision index.
    A request the packed format cannot express falls back to a JSON
    envelope frame, same as :class:`ServeClient`.
    """
    tables: Tuple[List[str], List[str], List[str]] = ([], [], [])
    ids: Tuple[Dict[str, int], Dict[str, int], Dict[str, int]] = ({}, {}, {})

    def intern(table: int, name: str) -> int:
        index = ids[table].get(name)
        if index is None:
            index = len(tables[table])
            tables[table].append(name)
            ids[table][name] = index
        return index

    for index in indices:
        request = decisions[index].request
        try:
            candidates = []
            for spec in request["candidates"]:  # type: ignore[index]
                copies = spec.get("copies")
                candidates.append(
                    (
                        intern(1, spec["type"]),
                        spec["index"],
                        -1 if copies is None else copies,
                    )
                )
            context = request.get("context", "")
            encoded[index] = encode_decide_frame(
                index,
                intern(0, request["dest"]),  # type: ignore[arg-type]
                KIND_CODES[request["kind"]],  # type: ignore[index]
                request.get("tick", 0),  # type: ignore[arg-type]
                CTX_NONE if context == "" else intern(2, context),
                request["free_slots"],  # type: ignore[arg-type]
                request.get("pollution"),  # type: ignore[arg-type]
                candidates,
            )
        except (ProtocolError, KeyError, TypeError):
            encoded[index] = encode_json_frame(dict(request, id=index))
    hello = encode_preamble() + encode_hello(*tables)
    return hello, tables[1]


def run_load(
    host: str,
    port: int,
    decisions: Sequence[OfflineDecision],
    connections: int = 1,
    window: int = 32,
    max_mismatches: int = 10,
    wire_format: str = "ndjson",
    start_gate: Optional[Callable[[], object]] = None,
) -> LoadResult:
    """Replay captured decisions against a live server, closed-loop.

    Each connection keeps up to ``window`` requests outstanding
    (pipelined on one socket, responses matched by id), which is what
    keeps multiple shards busy from a single client process.  Every
    response is compared field-for-field against its offline outcome
    -- on either wire format: ``wire_format="binary"`` pre-encodes
    struct-packed decide frames against hello-seeded string tables and
    decodes responses through :func:`decode_response_frame`, so the
    parity comparison is bit-for-bit the same dict comparison NDJSON
    gets.

    The timed window contains nothing but I/O: frames are pre-encoded
    with the decision index as id before the clock starts, and the
    receive loop timestamps each received chunk exactly once --
    immediately after ``recv`` returns, before the frame-split loop --
    so every frame completed by a chunk shares that chunk's arrival
    time.  Decoding, id matching, latency math and the parity
    comparison all happen after the clock stops -- on a small machine
    the client shares cores with the server, so any in-loop client work
    would directly depress the measured serving throughput.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if wire_format not in ("ndjson", "binary"):
        raise ValueError(
            f"wire_format must be 'ndjson' or 'binary', got {wire_format!r}"
        )
    binary = wire_format == "binary"
    slices = [
        list(range(start, len(decisions), connections))
        for start in range(connections)
    ]
    if binary:
        # indices are globally unique, so one flat frame list serves all
        # workers even though each worker packs against its own tables
        encoded: List[bytes] = [b""] * len(decisions)
        hellos: List[bytes] = []
        worker_tag_types: List[List[str]] = []
        for indices in slices:
            hello, tag_types = _encode_binary_worker(
                decisions, indices, encoded
            )
            hellos.append(hello)
            worker_tag_types.append(tag_types)
        split = split_chunk_frames
    else:
        encoded = [
            ServeClient.encode_with_id(decision.request, index)
            for index, decision in enumerate(decisions)
        ]
        hellos = []
        worker_tag_types = []
        split = split_chunk_lines
    results: List[LoadResult] = [LoadResult() for _ in slices]
    errors: List[BaseException] = []

    #: per worker: burst send times by index, and (t_recv, raw frame)
    sent_per_worker: List[Dict[int, float]] = [{} for _ in slices]
    received_per_worker: List[List[Tuple[float, bytes]]] = [
        [] for _ in slices
    ]

    def worker(
        worker_index: int,
        indices: List[int],
        sent_at: Dict[int, float],
        received: List[Tuple[float, bytes]],
    ) -> None:
        timer = time.perf_counter
        try:
            sock = socket.create_connection((host, port), timeout=30.0)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                recv = sock.recv
                append = received.append
                buffer = bytearray()
                if binary:
                    # handshake before the pipelined loop: the ack is
                    # the only unsolicited frame, so one split suffices
                    sock.sendall(hellos[worker_index])
                    ack: List[Tuple[float, bytes]] = []
                    while not ack:
                        chunk = recv(1 << 16)
                        if not chunk:
                            raise ConnectionError(
                                "server closed during hello"
                            )
                        buffer += chunk
                        split_chunk_frames(buffer, 0.0, ack.append)
                    if ack[0][1][0] != FRAME_HELLO_ACK:
                        raise ConnectionError(
                            f"expected hello ack, got frame "
                            f"{ack[0][1][0]:#x}"
                        )
                position = 0
                outstanding = 0
                total = len(indices)
                while position < total or outstanding:
                    if position < total and outstanding < window:
                        # one coalesced send per window refill -- a
                        # syscall per request would dominate the measure
                        burst: List[bytes] = []
                        now = timer()
                        while position < total and outstanding < window:
                            index = indices[position]
                            position += 1
                            outstanding += 1
                            sent_at[index] = now
                            burst.append(encoded[index])
                        sock.sendall(b"".join(burst))
                    # every response frame closes exactly one
                    # outstanding request (the server answers each
                    # request once), so the window advances without
                    # decoding anything here
                    completed = 0
                    while not completed:
                        chunk = recv(1 << 16)
                        t_recv = timer()
                        if not chunk:
                            raise ConnectionError(
                                "server closed the connection"
                            )
                        buffer += chunk
                        completed = split(buffer, t_recv, append)
                    outstanding -= completed
            finally:
                sock.close()
        except BaseException as error:  # surfaced after join
            errors.append(error)

    if start_gate is not None:
        # multi-process aggregation: every worker process finishes its
        # off-the-clock encoding, then meets the barrier, so the timed
        # windows overlap and sum-of-requests / max-elapsed is honest
        start_gate()
    started = time.perf_counter()
    if connections == 1:
        worker(0, slices[0], sent_per_worker[0], received_per_worker[0])
    else:
        threads = [
            threading.Thread(target=worker, args=(i, *args))
            for i, args in enumerate(
                zip(slices, sent_per_worker, received_per_worker)
            )
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    # off-the-clock accounting: decode, match ids, compare against the
    # offline outcomes
    for worker_index, (result, sent_at, received) in enumerate(
        zip(results, sent_per_worker, received_per_worker)
    ):
        for t_recv, raw in received:
            if binary:
                response = decode_response_frame(
                    raw, worker_tag_types[worker_index]
                )
            else:
                response = json.loads(raw)
            index = response.get("id")
            t_send = sent_at.pop(index, None)
            if t_send is None:
                result.errors += 1
                continue
            result.latencies_us.append((t_recv - t_send) * 1e6)
            result.requests += 1
            if not response.get("ok", False):
                result.errors += 1
                continue
            expected = decisions[index].expected
            _compare(
                index,
                expected,
                response,
                result.mismatches,
                max_mismatches,
            )
            hits, total = observe_agreement(expected, response)
            result.agreement_hits += hits
            result.agreement_total += total
    merged = LoadResult(elapsed_seconds=elapsed)
    for result in results:
        merged.requests += result.requests
        merged.errors += result.errors
        merged.latencies_us.extend(result.latencies_us)
        merged.mismatches.extend(result.mismatches)
        merged.agreement_hits += result.agreement_hits
        merged.agreement_total += result.agreement_total
    merged.mismatches.sort(key=lambda m: m.index)
    del merged.mismatches[max_mismatches:]
    return merged


def _load_worker(
    worker_index: int,
    host: str,
    port: int,
    decisions: Sequence[OfflineDecision],
    wire_format: str,
    window: int,
    open_loop: bool,
    max_mismatches: int,
    barrier,
    out_queue,
) -> None:
    """One worker process: pre-encode, meet the barrier, drive, report.

    Open-loop mode widens the window to the whole slice, so every frame
    is submitted without waiting on any response -- arrivals no longer
    gate on completions, which is what exposes server capacity a
    closed-loop window understates.
    """
    try:
        if open_loop:
            window = max(window, len(decisions))
        result = run_load(
            host,
            port,
            decisions,
            connections=1,
            window=window,
            max_mismatches=max_mismatches,
            wire_format=wire_format,
            start_gate=barrier.wait,
        )
        out_queue.put((worker_index, result, None))
    except BaseException as error:  # noqa: BLE001 - surfaced in parent
        try:
            barrier.abort()
        except Exception:  # pragma: no cover - barrier already broken
            pass
        out_queue.put((worker_index, None, repr(error)))


def run_load_processes(
    targets: Sequence[Tuple[str, int, Sequence[OfflineDecision]]],
    *,
    wire_format: str = "binary",
    window: int = 256,
    open_loop: bool = False,
    max_mismatches: int = 10,
) -> Tuple[LoadResult, List[Dict[str, object]]]:
    """Drive each ``(host, port, decisions)`` target from its own process.

    The multi-core face of :func:`run_load`: worker *processes* (no
    shared GIL with each other or with an in-process server) each run
    the single-connection pipeline over their slice.  All workers finish
    pre-encoding and then meet a barrier before any clock starts, so the
    timed windows overlap; the merged result's elapsed time is the
    slowest worker's window and aggregate decisions/s is
    ``sum(requests) / max(elapsed)`` -- the honest aggregate for
    concurrently active workers.  Returns the merged
    :class:`LoadResult` (latencies, mismatches, and oracle agreement
    pooled across workers) plus each worker's own summary, so per-worker
    parity is still visible after the merge.
    """
    if not targets:
        raise ValueError("run_load_processes needs at least one target")
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(len(targets))
    out_queue = ctx.Queue()
    workers = [
        ctx.Process(
            target=_load_worker,
            args=(
                index, host, port, decisions, wire_format, window,
                open_loop, max_mismatches, barrier, out_queue,
            ),
            name=f"loadgen-{index}",
            daemon=True,
        )
        for index, (host, port, decisions) in enumerate(targets)
    ]
    for worker in workers:
        worker.start()
    reports: List[Tuple[int, Optional[LoadResult], Optional[str]]] = []
    for _ in workers:
        reports.append(out_queue.get())
    for worker in workers:
        worker.join()
    failures = [
        f"worker {index}: {error}"
        for index, _, error in reports
        if error is not None
    ]
    if failures:
        raise RuntimeError(
            "load worker process(es) failed: " + "; ".join(failures)
        )
    reports.sort(key=lambda item: item[0])
    results: List[LoadResult] = [report[1] for report in reports]
    merged = LoadResult(
        elapsed_seconds=max(r.elapsed_seconds for r in results)
    )
    per_worker: List[Dict[str, object]] = []
    for index, result in enumerate(results):
        merged.requests += result.requests
        merged.errors += result.errors
        merged.latencies_us.extend(result.latencies_us)
        merged.mismatches.extend(result.mismatches)
        merged.agreement_hits += result.agreement_hits
        merged.agreement_total += result.agreement_total
        per_worker.append(dict(result.summary(), worker=index))
    merged.mismatches.sort(key=lambda m: m.index)
    del merged.mismatches[max_mismatches:]
    return merged, per_worker


def append_bench_trend(
    path: Union[str, Path], record: Dict[str, object]
) -> Path:
    """Append one compact record to the cross-PR perf trendline.

    ``results/bench_trend.jsonl`` accumulates one line per
    ``bench-serve`` / ``bench-cluster`` run, so the throughput
    trajectory is tracked in the repo itself rather than only in CI
    artifacts.  Records are append-only and self-describing (each
    carries its benchmark name and an ISO timestamp).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return target


def write_bench_report(
    path: Union[str, Path],
    result: LoadResult,
    *,
    shards: int,
    connections: int,
    window: int,
    recording_events: int,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the ``BENCH_serve.json`` document CI uploads."""
    report: Dict[str, object] = {
        "benchmark": "serve",
        "shards": shards,
        "connections": connections,
        "window": window,
        "recording_events": recording_events,
        **result.summary(),
    }
    if extra:
        report.update(extra)
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return target
