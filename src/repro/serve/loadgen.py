"""Closed-loop load generator with offline-equivalence checking.

The serving stack's correctness story is end-to-end: a served decision
must be the decision the offline scalar replay would have made.  This
module makes that checkable (and benchmarkable) in three steps:

1. :func:`collect_offline_decisions` replays a
   :class:`~repro.replay.record.Recording` through a plain scalar
   :class:`~repro.dift.tracker.DIFTTracker` with an ``ifp_observer``
   that captures, for every indirect-flow decision, exactly the inputs
   the policy saw (candidates in order with copies, free slots,
   pre-propagation pollution) and the full ranked outcome it produced;
2. each capture becomes one *explicit-mode* decide request -- copies
   and pollution travel with the request, so the server's answer is a
   pure function of the request and the parity holds for **any** shard
   count, not just one;
3. :func:`run_load` replays those requests against a live server,
   closed-loop with a bounded pipeline window, and compares every
   response field-for-field (floats included -- ``json`` round-trips
   IEEE doubles exactly) against the offline outcome.

``stateful_stream`` builds the other flavour: the full event stream as
``apply`` + stateful ``decide`` requests, which reproduces the offline
run only at ``shards=1`` (copy counts and pollution are global offline
but per-shard online) -- the checkpoint/restore equivalence tests use
it to drive a server that gets killed mid-load.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.params import MitosParams
from repro.dift.tracker import DIFTTracker
from repro.faros.config import FarosConfig
from repro.replay.record import Recording
from repro.serve.client import ServeClient
from repro.serve.protocol import format_location

_INDIRECT_KINDS = frozenset({"address_dep", "control_dep"})


@dataclass
class OfflineDecision:
    """One offline IFP decision: the request that reproduces it + the
    exact response the server must give."""

    #: wire payload (no id) in explicit mode: copies+pollution included
    request: Dict[str, object]
    #: the fields a correct response must carry verbatim
    expected: Dict[str, object]


def _decision_rows(details) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for decision in details.decisions:
        candidate = decision.candidate
        tag = candidate.key
        rows.append(
            {
                "tag": f"{tag.type}:{tag.index}",
                "type": candidate.tag_type,
                "copies": candidate.copies,
                "marginal": decision.marginal,
                "under": decision.under_marginal,
                "over": decision.over_marginal,
                "propagate": decision.propagate,
            }
        )
    return rows


def collect_offline_decisions(
    recording: Recording,
    params: MitosParams,
    policy: str = "mitos",
    limit: Optional[int] = None,
) -> List[OfflineDecision]:
    """Scalar-replay ``recording`` and capture every IFP decision.

    The capture hook rides the tracker's ``ifp_observer``, which fires
    with precisely the inputs ``select_with_details`` received --
    candidate order, copy counts at decision time, destination free
    slots, pre-propagation pollution -- plus the ranked
    :class:`~repro.core.decision.MultiDecision` it returned.
    """
    captured: List[OfflineDecision] = []

    def observer(event, candidates, details, selected, pollution) -> None:
        kind = event.kind.value
        if kind not in _INDIRECT_KINDS or details is None:
            return
        request: Dict[str, object] = {
            "op": "decide",
            "dest": format_location(event.destination),
            "kind": kind,
            "tick": event.tick,
            "free_slots": details.free_slots,
            "pollution": pollution,
            "candidates": [
                {
                    "type": c.tag_type,
                    "index": c.key.index,
                    "copies": c.copies,
                }
                for c in candidates
            ],
        }
        if event.context:
            request["context"] = event.context
        expected = {
            "propagated": [f"{t.type}:{t.index}" for t in selected],
            "decisions": _decision_rows(details),
        }
        captured.append(OfflineDecision(request=request, expected=expected))

    config = FarosConfig(params=params, policy=policy, label="loadgen")
    tracker = DIFTTracker(
        params=params, policy=config.build_policy(), ifp_observer=observer
    )
    events = recording.events if limit is None else recording.events[:limit]
    for event in events:
        tracker.process(event)
    return captured


def stateful_stream(
    recording: Recording, limit: Optional[int] = None
) -> List[Dict[str, object]]:
    """The recording as a stateful-mode request stream.

    Direct flows (insert/clear/copy/compute) become ``apply`` requests;
    indirect flows become ``apply`` requests too -- the shard's tracker
    runs its own candidate derivation and decision, exactly like the
    offline replay.  Only meaningful at ``shards=1``, where the single
    shard sees the same global state the offline tracker does.
    """
    requests: List[Dict[str, object]] = []
    events = recording.events if limit is None else recording.events[:limit]
    for event in events:
        payload: Dict[str, object] = {
            "op": "apply",
            "kind": event.kind.value,
            "dest": format_location(event.destination),
            "tick": event.tick,
        }
        if event.sources:
            payload["sources"] = [format_location(s) for s in event.sources]
        if event.tag is not None:
            payload["tag"] = [event.tag.type, event.tag.index]
        if event.context:
            payload["context"] = event.context
        requests.append(payload)
    return requests


@dataclass
class Mismatch:
    """One served decision that differed from the offline replay."""

    index: int
    field_name: str
    expected: object
    actual: object


@dataclass
class LoadResult:
    """Outcome of one closed-loop run against a live server."""

    requests: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    #: wall-clock microseconds per request, submit to response-read
    latencies_us: List[float] = field(default_factory=list)
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def matched(self) -> bool:
        return not self.mismatches and not self.errors

    @property
    def decisions_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile latency in microseconds (0 when empty)."""
        if not self.latencies_us:
            return 0.0
        ordered = sorted(self.latencies_us)
        position = min(
            len(ordered) - 1, max(0, round(q / 100.0 * (len(ordered) - 1)))
        )
        return ordered[position]

    def summary(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mismatches": len(self.mismatches),
            "matched": self.matched,
            "elapsed_seconds": self.elapsed_seconds,
            "decisions_per_second": self.decisions_per_second,
            "latency_us": {
                "p50": self.latency_percentile(50),
                "p95": self.latency_percentile(95),
                "p99": self.latency_percentile(99),
            },
        }


def _compare(
    index: int,
    expected: Dict[str, object],
    response: Dict[str, object],
    mismatches: List[Mismatch],
    max_mismatches: int,
) -> None:
    for key, want in expected.items():
        if len(mismatches) >= max_mismatches:
            return
        got = response.get(key)
        if got != want:
            mismatches.append(Mismatch(index, key, want, got))


def run_load(
    host: str,
    port: int,
    decisions: Sequence[OfflineDecision],
    connections: int = 1,
    window: int = 32,
    max_mismatches: int = 10,
) -> LoadResult:
    """Replay captured decisions against a live server, closed-loop.

    Each connection keeps up to ``window`` requests outstanding
    (pipelined on one socket, responses matched by id), which is what
    keeps multiple shards busy from a single client process.  Every
    response is compared field-for-field against its offline outcome.

    The timed window contains nothing but I/O: frames are pre-encoded
    with the decision index as id before the clock starts, and the
    receive loop only timestamps raw response lines.  Decoding, id
    matching, latency math and the parity comparison all happen after
    the clock stops -- on a small machine the client shares cores with
    the server, so any in-loop client work would directly depress the
    measured serving throughput.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    encoded = [
        ServeClient.encode_with_id(decision.request, index)
        for index, decision in enumerate(decisions)
    ]
    slices = [
        list(range(start, len(decisions), connections))
        for start in range(connections)
    ]
    results: List[LoadResult] = [LoadResult() for _ in slices]
    errors: List[BaseException] = []

    #: per worker: burst send times by index, and (t_recv, raw line)
    sent_per_worker: List[Dict[int, float]] = [{} for _ in slices]
    received_per_worker: List[List[Tuple[float, bytes]]] = [
        [] for _ in slices
    ]

    def worker(
        indices: List[int],
        sent_at: Dict[int, float],
        received: List[Tuple[float, bytes]],
    ) -> None:
        timer = time.perf_counter
        try:
            with ServeClient(host, port) as client:
                sock = client._sock
                recv = sock.recv
                append = received.append
                buffer = bytearray()
                position = 0
                outstanding = 0
                total = len(indices)
                while position < total or outstanding:
                    if position < total and outstanding < window:
                        # one coalesced send per window refill -- a
                        # syscall per request would dominate the measure
                        burst: List[bytes] = []
                        now = timer()
                        while position < total and outstanding < window:
                            index = indices[position]
                            position += 1
                            outstanding += 1
                            sent_at[index] = now
                            burst.append(encoded[index])
                        sock.sendall(b"".join(burst))
                    newline = buffer.find(b"\n")
                    while newline < 0:
                        chunk = recv(1 << 16)
                        if not chunk:
                            raise ConnectionError(
                                "server closed the connection"
                            )
                        buffer += chunk
                        newline = buffer.find(b"\n")
                    # every response line closes exactly one outstanding
                    # request (the server answers each request once), so
                    # the window advances without decoding anything here
                    t_recv = timer()
                    start = 0
                    while newline >= 0:
                        append((t_recv, bytes(buffer[start:newline])))
                        outstanding -= 1
                        start = newline + 1
                        newline = buffer.find(b"\n", start)
                    del buffer[:start]
        except BaseException as error:  # surfaced after join
            errors.append(error)

    started = time.perf_counter()
    if connections == 1:
        worker(slices[0], sent_per_worker[0], received_per_worker[0])
    else:
        threads = [
            threading.Thread(target=worker, args=args)
            for args in zip(slices, sent_per_worker, received_per_worker)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    # off-the-clock accounting: decode, match ids, compare against the
    # offline outcomes
    for result, sent_at, received in zip(
        results, sent_per_worker, received_per_worker
    ):
        for t_recv, line in received:
            response = json.loads(line)
            index = response.get("id")
            t_send = sent_at.pop(index, None)
            if t_send is None:
                result.errors += 1
                continue
            result.latencies_us.append((t_recv - t_send) * 1e6)
            result.requests += 1
            if not response.get("ok", False):
                result.errors += 1
                continue
            _compare(
                index,
                decisions[index].expected,
                response,
                result.mismatches,
                max_mismatches,
            )
    merged = LoadResult(elapsed_seconds=elapsed)
    for result in results:
        merged.requests += result.requests
        merged.errors += result.errors
        merged.latencies_us.extend(result.latencies_us)
        merged.mismatches.extend(result.mismatches)
    merged.mismatches.sort(key=lambda m: m.index)
    del merged.mismatches[max_mismatches:]
    return merged


def write_bench_report(
    path: Union[str, Path],
    result: LoadResult,
    *,
    shards: int,
    connections: int,
    window: int,
    recording_events: int,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the ``BENCH_serve.json`` document CI uploads."""
    report: Dict[str, object] = {
        "benchmark": "serve",
        "shards": shards,
        "connections": connections,
        "window": window,
        "recording_events": recording_events,
        **result.summary(),
    }
    if extra:
        report.update(extra)
    target = Path(path)
    target.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return target
